"""Benches for the campaign service: HTTP overhead and time-to-first-result.

Two questions matter for running campaigns behind the HTTP API instead of
in-process:

1. **Overhead** — what does the service add end to end (submit over HTTP,
   stream events to the terminal state, fetch the report) on top of calling
   :func:`run_campaign` directly?  The workload is scaled so the campaign
   itself dominates; the transport must amortise to noise.
2. **Latency** — how long from submitting a campaign until the first
   observation arrives on the event stream?  This bounds how "live" a
   dashboard watching the stream can be.

The overhead ratio is printed always and enforced (< 10% over in-process)
only under ``REPRO_ASSERT_SPEEDUP=1``, because hosted runners are too noisy
for a hard gate.  Both measurements land in ``BENCH_results.json``.
"""

import os
import time

import pytest

from repro.campaign import run_campaign
from repro.experiments.data import clear_observation_cache
from repro.service import (
    CampaignClient,
    CampaignServer,
    CampaignSubmission,
    JobManager,
)

from benchmarks.conftest import print_once

#: Enough sequential runs that the campaign dwarfs the HTTP round-trips
#: (~1s in-process) while the bench stays comfortably fast.
OVERHEAD_PAYLOAD = {
    "profile": "tiny",
    "stages": "SAT",
    "config": {"n_sequential_runs": 600},
}

#: The stock tiny campaign: small enough that submission latency, not
#: solver time, is what the first-observation clock measures.
LATENCY_PAYLOAD = {"profile": "tiny", "stages": "SAT"}

ROUNDS = 3


@pytest.fixture
def service():
    """A running serial-backend service and its client, no cache store.

    The store stays off so every submission recomputes — the bench compares
    transports, and a cache hit on round two would make the HTTP side look
    faster than the work it claims to do.
    """
    manager = JobManager(backend="serial", max_queue=ROUNDS + 2)
    server = CampaignServer(manager)
    server.start()
    try:
        yield CampaignClient(server.url)
    finally:
        server.stop()


def _http_round_trip(client: CampaignClient, payload: dict) -> float:
    """Submit, follow the stream to the terminal state, fetch the report."""
    clear_observation_cache()
    start = time.perf_counter()
    job_id = client.submit(payload)
    for _event in client.stream_events(job_id):
        pass  # the stream closes on the terminal state — no polling
    report = client.report(job_id)
    elapsed = time.perf_counter() - start
    assert report.stage("SAT").n_issued > 0
    return elapsed


def _in_process(payload: dict) -> float:
    clear_observation_cache()
    submission = CampaignSubmission.from_dict(payload)
    start = time.perf_counter()
    run_campaign(submission.build_stages(), controller="off")
    return time.perf_counter() - start


@pytest.mark.benchmark(group="service-overhead")
def test_http_overhead_vs_in_process(benchmark, bench_results, service, request):
    """The service must be a thin transport: < 10% over run_campaign.

    Best-of-``ROUNDS`` on both sides cancels scheduler noise; the enforced
    bound applies only under ``REPRO_ASSERT_SPEEDUP=1``.
    """
    enforce = os.environ.get("REPRO_ASSERT_SPEEDUP") == "1"
    in_process_seconds = min(_in_process(OVERHEAD_PAYLOAD) for _ in range(ROUNDS))

    def via_http():
        return _http_round_trip(service, OVERHEAD_PAYLOAD)

    benchmark.pedantic(via_http, rounds=ROUNDS, iterations=1, warmup_rounds=0)
    http_seconds = benchmark.stats.stats.min
    overhead = http_seconds / in_process_seconds - 1.0
    bench_results.record(
        "service-overhead[http-vs-in-process]",
        "http_overhead_fraction",
        overhead,
        n_sequential_runs=OVERHEAD_PAYLOAD["config"]["n_sequential_runs"],
        in_process_seconds=in_process_seconds,
        http_seconds=http_seconds,
        rounds=ROUNDS,
    )
    print_once(
        request,
        f"service overhead: in-process {in_process_seconds:.3f}s, "
        f"HTTP {http_seconds:.3f}s -> +{overhead:.1%} "
        f"({'enforced < 10%' if enforce else 'informational'})",
    )
    if enforce:
        assert overhead < 0.10, (
            f"HTTP campaign costs {overhead:.1%} over in-process "
            f"({http_seconds:.3f}s vs {in_process_seconds:.3f}s)"
        )


@pytest.mark.benchmark(group="service-latency")
def test_submission_to_first_observation(benchmark, bench_results, service, request):
    """Wall clock from POST /v1/campaigns to the first streamed observation."""

    def first_observation():
        clear_observation_cache()
        start = time.perf_counter()
        job_id = service.submit(LATENCY_PAYLOAD)
        for event in service.stream_events(job_id):
            if event["kind"] == "observation":
                latency = time.perf_counter() - start
                break
        else:  # pragma: no cover - would mean the stream carried no data
            raise AssertionError("stream ended without an observation")
        # Drain to the terminal state so the next round starts clean.
        for _event in service.stream_events(job_id, since=event["seq"] + 1):
            pass
        return latency

    benchmark.pedantic(first_observation, rounds=ROUNDS + 2, iterations=1, warmup_rounds=1)
    latency_seconds = benchmark.stats.stats.min
    bench_results.record(
        "service-latency[first-observation]",
        "submit_to_first_observation_seconds",
        latency_seconds,
        rounds=ROUNDS + 2,
    )
    print_once(
        request,
        f"service latency: submit -> first observation in {latency_seconds * 1e3:.1f}ms (best of {ROUNDS + 2})",
    )
    assert latency_seconds < 5.0  # sanity: the stream is live, not batch-at-end
