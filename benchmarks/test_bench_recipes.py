"""Benches for the workload-recipe subsystem.

The recipe pipeline exists to stress the stack with synthetic campaigns,
so the bench measures the pipeline itself end to end: profile a real
quick-profile SAT campaign into a recipe, expand it at ``--scale 4`` and
run the generated campaign, recording generation cost, campaign
wall-clock and observation throughput into ``BENCH_results.json``.  The
scale-4 run is the same shape as the docs-check smoke and the
``tests/recipes`` slow lane, so the recorded numbers track exactly what
CI exercises.
"""

import time

import pytest

from repro.campaign import run_campaign
from repro.experiments.config import ExperimentConfig
from repro.recipes import generate_stages, profile_report

#: Replicas per recipe stage for the stress campaign (the ISSUE's
#: acceptance scale; also the slow-lane process-backend test's scale).
SCALE = 4


@pytest.fixture(scope="module")
def sat_recipe():
    """A recipe profiled from a real quick-profile uniform-SAT campaign.

    A tight flip budget keeps the profiling campaign cheap *and* gives the
    recipe a censoring-heavy stage, the regime synthetic stress workloads
    are meant to reproduce.
    """
    import dataclasses

    from repro.campaign.stages import select_stages
    from repro.experiments.stages import campaign_stages

    config = dataclasses.replace(
        ExperimentConfig.quick(), sat_family="uniform", max_iterations=2_000
    )
    stages = select_stages(campaign_stages(config, ("sat",)), "SAT")
    report = run_campaign(stages)
    return profile_report(report, name="bench-sat-quick")


@pytest.mark.benchmark(group="recipes")
def test_generate_scale4_campaign_throughput(benchmark, bench_results, sat_recipe):
    """Wall-clock and observations/s of a ``--scale 4`` generated campaign."""
    gen_start = time.perf_counter()
    stages = generate_stages(sat_recipe, scale=SCALE, base_seed=7)
    generate_seconds = time.perf_counter() - gen_start
    total_quota = sum(s.quota for s in stages)

    # Fresh uniform draws at 4.2 are not guaranteed satisfiable within the
    # tight budget; a fully-censored replica is still 80 issued
    # observations, which is what the throughput number prices.
    def run_generated():
        return run_campaign(stages, enforce_required=False)

    report = benchmark.pedantic(run_generated, rounds=1, iterations=1, warmup_rounds=0)
    campaign_seconds = benchmark.stats.stats.mean
    n_obs = sum(len(stage.stream) for stage in report.stages)
    assert n_obs >= total_quota  # every replica must deliver its quota

    throughput = n_obs / campaign_seconds if campaign_seconds > 0 else float("inf")
    bench_results.record(
        "recipes[generate-scale4]",
        "campaign_wall_clock_seconds",
        campaign_seconds,
        scale=SCALE,
        n_stages=len(stages),
        total_quota=total_quota,
        n_observations=n_obs,
        generate_seconds=generate_seconds,
    )
    bench_results.record(
        "recipes[generate-scale4]",
        "observations_per_second",
        throughput,
        scale=SCALE,
        n_observations=n_obs,
    )
    print(
        f"\nrecipes: scale-{SCALE} generation {generate_seconds * 1e3:.1f}ms, "
        f"campaign {campaign_seconds:.2f}s for {n_obs} observations "
        f"({throughput:.0f} obs/s)"
    )
