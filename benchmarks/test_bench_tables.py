"""Benches for Tables 1–5.

The sequential campaign is collected once by the session fixture; each bench
times the table-building stage and prints the regenerated table once.  The
Table 5 bench additionally checks the paper's headline claim: the predicted
speed-ups track the measured ones (we assert a generous factor-of-two band
rather than the paper's 10–30% because the quick profile uses scaled-down
instances and far fewer runs).
"""

import pytest

from benchmarks.conftest import print_once
from repro.experiments.config import BENCHMARK_KEYS
from repro.experiments.tables import (
    table1_sequential_times,
    table2_sequential_iterations,
    table3_time_speedups,
    table4_iteration_speedups,
    table5_prediction_comparison,
)


@pytest.mark.benchmark(group="tables")
def test_table1_sequential_times(benchmark, request, quick_config, quick_observations):
    table = benchmark(table1_sequential_times, quick_config, quick_observations)
    print_once(request, table.format())
    for key in BENCHMARK_KEYS:
        summary = table.summaries[key]
        assert summary.minimum <= summary.median <= summary.maximum


@pytest.mark.benchmark(group="tables")
def test_table2_sequential_iterations(benchmark, request, quick_config, quick_observations):
    table = benchmark(table2_sequential_iterations, quick_config, quick_observations)
    print_once(request, table.format())
    # Las Vegas signature: large dispersion between min and max (Section 5.4).
    assert any(table.summaries[key].dispersion() > 10.0 for key in BENCHMARK_KEYS)


@pytest.mark.benchmark(group="tables")
def test_table3_time_speedups(benchmark, request, quick_config, quick_observations):
    table = benchmark(table3_time_speedups, quick_config, quick_observations)
    print_once(request, table.format())
    for key in BENCHMARK_KEYS:
        assert table.speedup(key, quick_config.cores[-1]) > 1.0


@pytest.mark.benchmark(group="tables")
def test_table4_iteration_speedups(benchmark, request, quick_config, quick_observations):
    table = benchmark(table4_iteration_speedups, quick_config, quick_observations)
    print_once(request, table.format())
    for key in BENCHMARK_KEYS:
        speedups = [table.speedup(key, c) for c in quick_config.cores]
        assert speedups[-1] >= speedups[0] > 1.0


@pytest.mark.benchmark(group="tables")
def test_table5_prediction_comparison(benchmark, request, quick_config, quick_observations):
    table = benchmark(table5_prediction_comparison, quick_config, quick_observations)
    print_once(request, table.format())
    # Paper families are used and the prediction tracks the measurement.
    assert table.predictions["MS"].family == "shifted_lognormal"
    assert table.predictions["AI"].family == "shifted_exponential"
    for key in BENCHMARK_KEYS:
        for cores in quick_config.cores:
            measured = table.experimental[key].speedup(cores)
            predicted = table.predictions[key].speedup(cores)
            assert 0.3 < predicted / measured < 3.0, (key, cores, measured, predicted)
