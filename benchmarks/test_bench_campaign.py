"""Benches for the campaign orchestrator and its controllers.

Two questions, both recorded into ``BENCH_results.json``:

* What does routing a classic campaign through the orchestrator *cost*?
  The ``off``/``static`` controllers run the exact same solver work as the
  pre-orchestrator collectors, so any extra wall-clock is pure control
  overhead — measured per run on a cheap synthetic stage where solver time
  cannot hide it.
* Does the adaptive controller *pay* on the workload it was built for?  A
  censoring-heavy SAT stage (uniform 3-SAT at the threshold ratio, low
  WalkSAT noise so runs stagnate, tight flip budget) is collected to the
  same solved-observation quota under the static plan and under adaptive
  control; the static arm's wall-clock is normalised to the quota
  (``static_seconds * quota / static_solved``) so both arms price the same
  deliverable.  The >= 1.0x gate is enforced with ``REPRO_ASSERT_SPEEDUP=1``
  (hosted runners keep it advisory, like the other speedup gates).
"""

import os
import time

import numpy as np
import pytest

from repro.campaign import StageSpec, run_campaign
from repro.sat.generators import clause_count_for_ratio, random_ksat
from repro.solvers.base import LasVegasAlgorithm, RunResult
from repro.solvers.walksat import WalkSAT, WalkSATConfig


class CheapSolver(LasVegasAlgorithm):
    """Near-zero solver time: every second is controller/engine overhead."""

    name = "cheap"

    def __init__(self, budget: int):
        self.budget = int(budget)

    def _run(self, rng: np.random.Generator) -> RunResult:
        return RunResult(solved=True, iterations=int(rng.integers(1, 50)), runtime_seconds=0.0)


def _cheap_stage(quota: int) -> StageSpec:
    return StageSpec(
        key="S",
        label="cheap",
        kind="bench",
        make_solver=lambda budget: CheapSolver(budget),
        quota=quota,
        base_seed=31,
        budget=1000,
        emit_keys=("S",),
        supports_cutoff=True,
    )


#: The censoring-heavy workload: the tiny profile's uniform 3-SAT draw at
#: the threshold ratio (satisfiable but hard at the default base seed; the
#: n=100 draw at this seed is unsatisfiable, so n=50 it is), solved with
#: low-noise WalkSAT so a large fraction of runs stagnates — the regime
#: where killing hopeless runs and reseeding actually buys wall-clock.
SAT_N = 50
SAT_RATIO = 4.2
SAT_NOISE = 0.1
SAT_BUDGET = 20_000
SAT_QUOTA = 12


def _heavy_tail_stage() -> StageSpec:
    rng = np.random.default_rng((20130813, 0x5AA))  # the tiny-profile draw
    formula = random_ksat(SAT_N, clause_count_for_ratio(SAT_N, SAT_RATIO), 3, rng=rng)

    def make_solver(budget: int) -> WalkSAT:
        return WalkSAT(formula, WalkSATConfig(max_flips=budget, noise=SAT_NOISE))

    return StageSpec(
        key="SAT",
        label=f"uniform 3-SAT {SAT_N}@{SAT_RATIO:g} [noise={SAT_NOISE:g}]",
        kind="bench",
        make_solver=make_solver,
        quota=SAT_QUOTA,
        base_seed=20130816,
        budget=SAT_BUDGET,
        emit_keys=("SAT",),
        supports_cutoff=True,
    )


def _stream_flips(stage_report) -> int:
    return sum(min(r.iterations, r.budget) for r in stage_report.stream)


@pytest.mark.benchmark(group="campaign-overhead")
def test_controller_overhead_per_run(benchmark, bench_results):
    """Orchestrator + controller cost per run, solver time excluded.

    ``off`` is the baseline (the plain engine path), ``static`` adds the
    decision plumbing for identical runs, ``adaptive`` adds per-round
    refits.  Recorded per controller so the trend is comparable as the
    controllers grow.
    """
    quota = 400
    seconds: dict[str, float] = {}
    issued: dict[str, int] = {}
    for controller in ("off", "static", "adaptive"):
        start = time.perf_counter()
        report = run_campaign([_cheap_stage(quota)], controller=controller)
        seconds[controller] = time.perf_counter() - start
        issued[controller] = report.stage("S").n_issued

    def run_static():
        return run_campaign([_cheap_stage(quota)], controller="static")

    benchmark.pedantic(run_static, rounds=1, iterations=1, warmup_rounds=0)
    for controller in ("static", "adaptive"):
        overhead = (seconds[controller] - seconds["off"]) / issued[controller]
        bench_results.record(
            f"campaign-overhead[{controller}]",
            "controller_overhead_seconds_per_run",
            max(overhead, 0.0),
            quota=quota,
            issued=issued[controller],
            off_seconds=seconds["off"],
            controller_seconds=seconds[controller],
        )
    print(
        "\ncampaign-overhead: "
        + " ".join(
            f"{name}={seconds[name]:.3f}s/{issued[name]}runs"
            for name in ("off", "static", "adaptive")
        )
    )


@pytest.mark.benchmark(group="campaign-adaptive")
def test_adaptive_beats_static_on_censoring_heavy_sat(benchmark, bench_results):
    """The acceptance workload: adaptive vs static to the same solved quota.

    Static issues the classic full-budget batch and burns the whole budget
    on every stagnated run; adaptive probes, drops the cutoff, kills the
    tail and reseeds.  Both wall-clocks are normalised to ``SAT_QUOTA``
    solved observations.
    """
    stage = _heavy_tail_stage()

    start = time.perf_counter()
    static = run_campaign([stage], controller="static", enforce_required=False)
    static_seconds = time.perf_counter() - start
    static_stage = static.stage("SAT")
    assert static_stage.n_solved > 0, "workload must be solvable for the comparison"
    static_normalized = static_seconds * SAT_QUOTA / static_stage.n_solved

    def run_adaptive():
        return run_campaign([stage], controller="adaptive")

    adaptive = benchmark.pedantic(run_adaptive, rounds=1, iterations=1, warmup_rounds=0)
    adaptive_seconds = benchmark.stats.stats.mean
    adaptive_stage = adaptive.stage("SAT")
    assert adaptive_stage.n_solved >= SAT_QUOTA  # adaptive must reach the quota

    speedup = static_normalized / adaptive_seconds if adaptive_seconds > 0 else float("inf")
    static_fps = _stream_flips(static_stage) / static_stage.n_solved
    adaptive_fps = _stream_flips(adaptive_stage) / adaptive_stage.n_solved
    bench_results.record(
        "campaign-adaptive[censoring-heavy-sat]",
        "wall_clock_speedup_vs_static",
        speedup,
        quota=SAT_QUOTA,
        budget=SAT_BUDGET,
        noise=SAT_NOISE,
        static_seconds=static_seconds,
        static_solved=static_stage.n_solved,
        static_normalized_seconds=static_normalized,
        adaptive_seconds=adaptive_seconds,
        adaptive_issued=adaptive_stage.n_issued,
        adaptive_killed=adaptive_stage.n_killed,
    )
    bench_results.record(
        "campaign-adaptive[censoring-heavy-sat]",
        "flips_per_solved_ratio_static_over_adaptive",
        static_fps / adaptive_fps,
        static_flips_per_solved=static_fps,
        adaptive_flips_per_solved=adaptive_fps,
    )
    print(
        f"\ncampaign-adaptive: static {static_normalized:.2f}s (normalized) vs "
        f"adaptive {adaptive_seconds:.2f}s -> {speedup:.2f}x; "
        f"flips/solved {static_fps:.0f} vs {adaptive_fps:.0f}"
    )
    if os.environ.get("REPRO_ASSERT_SPEEDUP") == "1":
        assert speedup >= 1.0, (
            f"adaptive control should not lose to the static plan on the "
            f"censoring-heavy stage, got {speedup:.2f}x"
        )
        assert adaptive_fps <= static_fps, (
            f"adaptive should spend fewer flips per solved observation, got "
            f"{adaptive_fps:.0f} vs {static_fps:.0f}"
        )
