"""Benches for the incremental-evaluation subsystem: solver iterations/second.

Because the incremental and batch paths are bit-identical (same trajectory,
same iteration count for a given seed), the wall-clock ratio of the two
collections IS the iterations/second ratio.  The ISSUE-2 acceptance target
is >= 3x iterations/second on N-Queens n=64, enforced on demand via
``REPRO_ASSERT_SPEEDUP=1`` (mirroring the PR-1 engine gate: hosted runners
are too noisy to gate unconditionally); the per-problem ratios are printed
either way so PRs can track the trend.

Expected shape of the numbers: the kernels win by growing margins with
instance size (the batch path is O(n^2)-O(n^3) per iteration, the kernels
O(n)); at very small sizes the batch path's two-numpy-call cost function can
still win on call overhead (notably ALL-INTERVAL below n ~ 50).
"""

import os
import time

import pytest

from repro.csp.problems import (
    AllIntervalProblem,
    CostasArrayProblem,
    LangfordProblem,
    MagicSquareProblem,
    NQueensProblem,
)
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig

from benchmarks.conftest import print_once

#: (instance id, factory, per-run iteration budget, number of seeded runs).
INSTANCES = [
    ("n-queens-64", lambda: NQueensProblem(64), 2_000, 10),
    ("costas-12", lambda: CostasArrayProblem(12), 2_000, 4),
    ("all-interval-48", lambda: AllIntervalProblem(48), 2_000, 4),
    ("all-interval-192", lambda: AllIntervalProblem(192), 800, 2),
    ("magic-square-10", lambda: MagicSquareProblem(10), 2_000, 4),
    ("langford-32", lambda: LangfordProblem(32), 2_000, 4),
]


def _iterations_per_second(problem, mode: str, budget: int, n_runs: int):
    config = AdaptiveSearchConfig(max_iterations=budget, evaluation=mode)
    solver = AdaptiveSearch(problem, config)
    total_iterations = 0
    start = time.perf_counter()
    for seed in range(n_runs):
        total_iterations += solver.run(seed).iterations
    elapsed = time.perf_counter() - start
    return total_iterations, total_iterations / elapsed


@pytest.mark.benchmark(group="delta-throughput")
@pytest.mark.parametrize("instance", INSTANCES, ids=[spec[0] for spec in INSTANCES])
def test_incremental_vs_batch_throughput(benchmark, instance, request, bench_results):
    label, factory, budget, n_runs = instance
    problem = factory()
    batch_iterations, batch_ips = _iterations_per_second(problem, "batch", budget, n_runs)

    def incremental():
        return _iterations_per_second(problem, "incremental", budget, n_runs)

    incremental_iterations, incremental_ips = benchmark.pedantic(
        incremental, rounds=1, iterations=1, warmup_rounds=0
    )
    # Bit-identical trajectories: same total work on both paths.
    assert incremental_iterations == batch_iterations
    bench_results.record(
        f"delta-throughput[{label}]",
        "incremental_vs_batch_speedup",
        incremental_ips / batch_ips,
        instance=label,
        incremental_iterations_per_second=incremental_ips,
        batch_iterations_per_second=batch_ips,
    )
    print_once(
        request,
        f"delta-throughput[{label}]: incremental {incremental_ips:,.0f} it/s "
        f"vs batch {batch_ips:,.0f} it/s -> {incremental_ips / batch_ips:.2f}x",
    )


@pytest.mark.benchmark(group="delta-speedup")
def test_nqueens64_incremental_speedup_gate(benchmark, bench_results):
    """ISSUE-2 acceptance: >= 3x iterations/second on N-Queens n=64.

    Asserted only under ``REPRO_ASSERT_SPEEDUP=1`` (timing gates are
    meaningless on noisy shared runners); the ratio is printed always.
    """
    problem = NQueensProblem(64)
    budget, n_runs = 2_000, 20
    batch_iterations, batch_ips = _iterations_per_second(problem, "batch", budget, n_runs)

    def incremental():
        return _iterations_per_second(problem, "incremental", budget, n_runs)

    incremental_iterations, incremental_ips = benchmark.pedantic(
        incremental, rounds=1, iterations=1, warmup_rounds=0
    )
    assert incremental_iterations == batch_iterations
    ratio = incremental_ips / batch_ips
    bench_results.record(
        "delta-speedup[n-queens-64]",
        "incremental_vs_batch_speedup",
        ratio,
        n=64,
        iterations_per_second=incremental_ips,
    )
    print(f"\nn-queens-64 incremental-vs-batch: {ratio:.2f}x ({incremental_ips:,.0f} it/s)")
    if os.environ.get("REPRO_ASSERT_SPEEDUP") == "1":
        assert ratio >= 3.0, (
            f"incremental path should be >= 3x the batch path on N-Queens n=64, "
            f"got {ratio:.2f}x"
        )
