"""Benches for the execution engine: batch-collection throughput per backend.

The ISSUE-1 acceptance target is a >= 2x wall-clock speedup of the process
backend over the serial backend on a 200-run Adaptive Search batch on a
multi-core host; this bench records the per-backend collection time so
future PRs can track the ratio.  On a single-core host the process backend
cannot win (spawn overhead with no parallelism), so the bench scales the
batch down and only *reports* the ratio — equivalence of the collected data
is asserted unconditionally, the speedup itself is asserted only when
enough cores are present.
"""

import os

import numpy as np
import pytest

from repro.csp.problems import CostasArrayProblem
from repro.engine.core import collect_batch
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig

from benchmarks.conftest import print_once

#: Paper-shaped campaign on multi-core hosts; scaled down where spawn
#: overhead would dominate a core-starved run anyway.
N_RUNS = 200 if (os.cpu_count() or 1) > 1 else 40


def _solver() -> AdaptiveSearch:
    return AdaptiveSearch(CostasArrayProblem(7), AdaptiveSearchConfig(max_iterations=50_000))


@pytest.fixture(scope="module")
def serial_batch():
    return collect_batch(_solver(), N_RUNS, base_seed=13, backend="serial")


@pytest.mark.benchmark(group="engine-collect")
@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_collect_batch_throughput(benchmark, backend, serial_batch, request):
    workers = None if backend == "serial" else (os.cpu_count() or 1)
    rounds = 1 if backend == "process" else 2

    def collect():
        return collect_batch(_solver(), N_RUNS, base_seed=13, backend=backend, workers=workers)

    batch = benchmark.pedantic(collect, rounds=rounds, iterations=1, warmup_rounds=0)
    # The determinism invariant holds no matter which backend collected.
    np.testing.assert_array_equal(batch.iterations, serial_batch.iterations)
    print_once(
        request,
        f"engine-collect[{backend}]: {N_RUNS} runs of {_solver().describe()}",
    )


@pytest.mark.benchmark(group="engine-speedup")
def test_process_backend_speedup_over_serial(benchmark, bench_results):
    """Measure the process-vs-serial speedup; assert it only on demand.

    The quick-profile workload here solves in well under a second serially,
    so spawn-pool startup (each worker re-importing numpy) dominates and the
    ratio is meaningless as a gate — asserting on it would fail every
    small-machine run.  Set ``REPRO_ASSERT_SPEEDUP=1`` on a beefy multi-core
    host to run the acceptance-sized batch (200 runs, harder instance) and
    enforce the >= 2x target; the ratio is printed either way so PRs can
    track the trend.
    """
    import time

    cpus = os.cpu_count() or 1
    enforce = os.environ.get("REPRO_ASSERT_SPEEDUP") == "1"
    if enforce:
        solver = AdaptiveSearch(CostasArrayProblem(10), AdaptiveSearchConfig(max_iterations=200_000))
        n_runs = 200
    else:
        solver = _solver()
        n_runs = N_RUNS

    start = time.perf_counter()
    collect_batch(solver, n_runs, base_seed=29, backend="serial")
    serial_seconds = time.perf_counter() - start

    def process_collect():
        return collect_batch(solver, n_runs, base_seed=29, backend="process", workers=cpus)

    benchmark.pedantic(process_collect, rounds=1, iterations=1, warmup_rounds=0)
    process_seconds = benchmark.stats.stats.mean
    ratio = serial_seconds / process_seconds if process_seconds > 0 else float("inf")
    bench_results.record(
        "engine-speedup[process-vs-serial]",
        "wall_clock_speedup",
        ratio,
        n_runs=n_runs,
        workers=cpus,
        enforced=enforce,
    )
    print(f"\nprocess-vs-serial speedup on {cpus} cpu(s): {ratio:.2f}x")
    if enforce:
        assert ratio >= 2.0, (
            f"process backend should be >= 2x faster than serial on {cpus} cores, "
            f"got {ratio:.2f}x"
        )
