"""Benches for Figures 8–13: per-benchmark fits and predicted speed-up curves."""

import pytest

from benchmarks.conftest import print_once
from repro.experiments.figures_fits import (
    figure8_all_interval_fit,
    figure9_all_interval_prediction,
    figure10_magic_square_fit,
    figure11_magic_square_prediction,
    figure12_costas_fit,
    figure13_costas_prediction,
)


@pytest.mark.benchmark(group="figures-fits")
def test_figure8_all_interval_histogram_fit(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure8_all_interval_fit, quick_config, quick_observations)
    print_once(request, figure.format())
    assert figure.fit.family == "shifted_exponential"
    assert figure.histogram.total_mass() == pytest.approx(1.0, abs=1e-6)


@pytest.mark.benchmark(group="figures-fits")
def test_figure9_all_interval_predicted_speedup(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure9_all_interval_prediction, quick_config, quick_observations)
    print_once(request, figure.format())
    # Shifted exponential: sub-linear with a finite limit, as in the paper.
    top_cores = figure.curve.cores[-1]
    assert figure.curve.speedups[-1] < top_cores
    assert figure.limit < float("inf")


@pytest.mark.benchmark(group="figures-fits")
def test_figure10_magic_square_histogram_fit(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure10_magic_square_fit, quick_config, quick_observations)
    print_once(request, figure.format())
    assert figure.fit.family == "shifted_lognormal"


@pytest.mark.benchmark(group="figures-fits")
def test_figure11_magic_square_predicted_speedup(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure11_magic_square_prediction, quick_config, quick_observations)
    print_once(request, figure.format())
    speedups = list(figure.curve.speedups)
    # Lognormal: fast growth at the origin then clear saturation.
    early_slope = (speedups[2] - speedups[0]) / (figure.curve.cores[2] - figure.curve.cores[0])
    late_slope = (speedups[-1] - speedups[-2]) / (
        figure.curve.cores[-1] - figure.curve.cores[-2]
    )
    assert late_slope < early_slope


@pytest.mark.benchmark(group="figures-fits")
def test_figure12_costas_histogram_fit(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure12_costas_fit, quick_config, quick_observations)
    print_once(request, figure.format())
    assert figure.fit.family == "shifted_exponential"
    # Costas rule: the fitted shift is negligible w.r.t. the mean.
    assert figure.fit.distribution.params()["x0"] <= 0.05 * figure.fit.distribution.mean()


@pytest.mark.benchmark(group="figures-fits")
def test_figure13_costas_predicted_speedup(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure13_costas_prediction, quick_config, quick_observations)
    print_once(request, figure.format())
    curve = dict(zip(figure.curve.cores, figure.curve.speedups))
    top = max(curve)
    if figure.fit.distribution.params()["x0"] == 0.0:
        # Paper regime (Costas 21): negligible shift -> exactly linear prediction.
        assert curve[top] == pytest.approx(float(top), rel=1e-6)
    else:
        # Scaled-down instances have a non-negligible observed minimum, so the
        # prediction is near-linear at small core counts and saturates toward
        # its own (data-limited) ceiling mean/min instead of staying linear.
        assert figure.fit.distribution.speedup(16) > 0.6 * 16
        assert curve[top] > 0.75 * figure.limit
