"""Ablation benches for the design choices called out in DESIGN.md §6.

1. Shift-estimation rule (min vs quantile vs bias-corrected vs zero).
2. Distribution-family choice on the same data.
3. Number of sequential observations needed for a stable prediction.
4. Parametric vs nonparametric (empirical) predictor.
5. Las Vegas algorithm choice (Adaptive Search vs random-restart baseline).

Each bench times the ablated analysis and prints a compact comparison table;
assertions pin down the qualitative conclusions (e.g. the Costas-style
zero-shift rule is what produces near-linear predictions).
"""

import numpy as np
import pytest

from benchmarks.conftest import print_once
from repro.core.fitting import fit_distribution
from repro.core.prediction import predict_speedup_curve, predict_speedup_empirical
from repro.core.fitting.shift import SHIFT_RULES
from repro.experiments.report import format_table
from repro.multiwalk.runner import run_sequential_batch
from repro.multiwalk.simulate import simulate_multiwalk_speedups
from repro.solvers.random_restart import RandomRestartSearch

CORES = (16, 64, 256)


@pytest.mark.benchmark(group="ablations")
def test_ablation_shift_rule(benchmark, request, quick_observations):
    """How the shift rule changes the predicted curve for the AI benchmark."""
    values = quick_observations["AI"].values("iterations")

    def run():
        out = {}
        for rule in ("min", "quantile", "bias_corrected", "zero", "zero_if_negligible"):
            result = predict_speedup_curve(
                values, CORES, family="shifted_exponential", shift_rule=rule
            )
            out[rule] = result
        return out

    results = benchmark(run)
    rows = [
        [rule, res.distribution.params()["x0"], res.limit] + [res.speedup(c) for c in CORES]
        for rule, res in results.items()
    ]
    print_once(
        request,
        format_table(
            ["shift rule", "x0", "limit"] + [f"k={c}" for c in CORES],
            rows,
            title="Ablation: shift-estimation rule (AI benchmark)",
            float_format="{:.2f}",
        ),
    )
    # Zero shift forces exactly linear predicted scaling; the min rule gives a
    # finite limit — the dichotomy Section 7 of the paper discusses.
    assert results["zero"].speedup(256) == pytest.approx(256.0, rel=1e-6)
    assert np.isfinite(results["min"].limit)
    assert results["min"].speedup(256) <= results["zero"].speedup(256)
    assert set(results) <= set(SHIFT_RULES)


@pytest.mark.benchmark(group="ablations")
def test_ablation_family_choice(benchmark, request, quick_observations):
    """KS p-values and predictions of every candidate family on the MS data."""
    values = quick_observations["MS"].values("iterations")
    families = ("shifted_exponential", "shifted_lognormal", "shifted_gamma",
                "shifted_weibull", "truncated_gaussian")

    def run():
        return {family: fit_distribution(values, family, shift_rule="min") for family in families}

    fits = benchmark(run)
    rows = [
        [family, fit.statistic, fit.p_value, fit.aic, fit.distribution.speedup(64)]
        for family, fit in fits.items()
    ]
    print_once(
        request,
        format_table(
            ["family", "KS D", "p-value", "AIC", "predicted G_64"],
            rows,
            title="Ablation: distribution family (MS benchmark)",
            float_format="{:.3g}",
        ),
    )
    # The gaussian is a clearly worse description of the skewed MS data than
    # the lognormal the paper selects.
    assert fits["shifted_lognormal"].p_value >= fits["truncated_gaussian"].p_value


@pytest.mark.benchmark(group="ablations")
def test_ablation_sample_size(benchmark, request, quick_observations):
    """Stability of the 64-core prediction as the number of observations grows."""
    values = quick_observations["Costas"].values("iterations")
    reference = simulate_multiwalk_speedups(
        values, [64], n_parallel_runs=2000, rng=np.random.default_rng(0)
    ).speedup(64)
    sizes = [10, 20, 40, len(values)]

    def run():
        out = {}
        for size in sizes:
            subset = values[:size]
            out[size] = predict_speedup_empirical(subset, [64]).speedup(64)
        return out

    predictions = benchmark(run)
    rows = [[size, predictions[size], reference] for size in sizes]
    print_once(
        request,
        format_table(
            ["observations", "predicted G_64", "simulated G_64 (all runs)"],
            rows,
            title="Ablation: number of sequential observations (Costas benchmark)",
            float_format="{:.1f}",
        ),
    )
    # The full-sample prediction is the closest (or tied) to the reference.
    errors = {size: abs(pred - reference) for size, pred in predictions.items()}
    assert errors[len(values)] <= min(errors[10], errors[20]) + 0.25 * reference


@pytest.mark.benchmark(group="ablations")
def test_ablation_parametric_vs_empirical(benchmark, request, quick_observations):
    """Parametric fit vs nonparametric empirical predictor on every benchmark."""

    def run():
        out = {}
        for key, batch in quick_observations.items():
            values = batch.values("iterations")
            parametric = predict_speedup_curve(values, CORES)
            empirical = predict_speedup_empirical(values, CORES)
            out[key] = (parametric, empirical)
        return out

    results = benchmark(run)
    rows = []
    for key, (parametric, empirical) in results.items():
        rows.append([key, parametric.family] + [parametric.speedup(c) for c in CORES])
        rows.append([key, "empirical"] + [empirical.speedup(c) for c in CORES])
    print_once(
        request,
        format_table(
            ["benchmark", "predictor"] + [f"k={c}" for c in CORES],
            rows,
            title="Ablation: parametric vs nonparametric predictor",
            float_format="{:.1f}",
        ),
    )
    for key, (parametric, empirical) in results.items():
        # Both predictors agree on the ordering of core counts and stay within
        # a factor of ~3 of each other at 16 cores.
        assert 0.33 < parametric.speedup(16) / empirical.speedup(16) < 3.0, key


@pytest.mark.benchmark(group="ablations")
def test_ablation_algorithm_choice(benchmark, request, quick_config):
    """The model applies to a different Las Vegas algorithm (random restart)."""
    problem = quick_config.benchmarks()["Costas"].problem_factory()
    solver = RandomRestartSearch(problem)

    def run():
        batch = run_sequential_batch(solver, 30, base_seed=17)
        values = batch.values("iterations")
        prediction = predict_speedup_empirical(values, CORES)
        simulated = simulate_multiwalk_speedups(
            batch, CORES, n_parallel_runs=300, rng=np.random.default_rng(2)
        )
        return batch, prediction, simulated

    batch, prediction, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[c, prediction.speedup(c), simulated.speedup(c)] for c in CORES]
    print_once(
        request,
        format_table(
            ["cores", "predicted", "simulated"],
            rows,
            title=f"Ablation: random-restart baseline on {batch.label}",
            float_format="{:.1f}",
        ),
    )
    assert batch.success_rate() > 0.9
    for c in CORES:
        assert 0.3 < prediction.speedup(c) / simulated.speedup(c) < 3.0
