"""Benchmark harness regenerating every table and figure of the paper.

Run with::

    pytest benchmarks/ --benchmark-only

Each module covers one group of paper artefacts (see DESIGN.md §3 for the
experiment-to-bench index); the ablation benches cover the design choices
listed in DESIGN.md §6.
"""
