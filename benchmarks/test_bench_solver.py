"""Benches for the substrate itself: single Adaptive Search runs per benchmark.

These are conventional performance benchmarks (how long one sequential run
takes on each scaled-down instance) rather than paper artefacts; they guard
against performance regressions in the solver hot path, which dominates the
cost of every solver-backed experiment.
"""

import pytest

from repro.csp.problems import AllIntervalProblem, CostasArrayProblem, MagicSquareProblem
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.walksat import WalkSAT, WalkSATConfig
from repro.sat import random_planted_ksat

import numpy as np


@pytest.mark.benchmark(group="solver")
@pytest.mark.parametrize(
    "problem_factory, label",
    [
        (lambda: MagicSquareProblem(4), "magic-square-4"),
        (lambda: AllIntervalProblem(12), "all-interval-12"),
        (lambda: CostasArrayProblem(10), "costas-10"),
    ],
    ids=["magic-square-4", "all-interval-12", "costas-10"],
)
def test_adaptive_search_single_run(benchmark, problem_factory, label):
    problem = problem_factory()
    solver = AdaptiveSearch(problem, AdaptiveSearchConfig(max_iterations=200_000))
    seeds = iter(range(10_000))

    def run_once():
        return solver.run(next(seeds))

    result = benchmark.pedantic(run_once, rounds=5, iterations=1, warmup_rounds=1)
    assert result.solved
    assert problem.is_solution(result.solution)


@pytest.mark.benchmark(group="solver")
def test_walksat_single_run(benchmark):
    formula, _ = random_planted_ksat(60, 240, rng=np.random.default_rng(0))
    solver = WalkSAT(formula, WalkSATConfig(max_flips=200_000))
    seeds = iter(range(10_000))

    def run_once():
        return solver.run(next(seeds))

    result = benchmark.pedantic(run_once, rounds=5, iterations=1, warmup_rounds=1)
    assert result.solved


@pytest.mark.benchmark(group="solver")
def test_swap_cost_evaluation_hot_path(benchmark):
    """The inner-loop primitive: evaluating all swaps of the culprit variable."""
    problem = MagicSquareProblem(6)
    rng = np.random.default_rng(1)
    perm = problem.random_configuration(rng)

    def evaluate():
        return problem.swap_costs(perm, 7)

    costs = benchmark(evaluate)
    assert costs.shape == (problem.size,)
