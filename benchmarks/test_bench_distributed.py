"""Benches for the distributed backend: protocol overhead and worker scaling.

Two questions matter for the multi-host story:

1. **Overhead** — what does the coordinator/worker protocol cost per run on
   localhost, compared with handing the same batch to the serial backend?
   (The answer bounds the unit size below which distribution cannot pay.)
2. **Scaling** — does adding workers shrink wall clock?  On one machine the
   workers are processes, so this measures exactly what a multi-host fleet
   would see minus network latency.

Equivalence of the collected data is asserted unconditionally; the scaling
ratio is printed always and enforced (2 workers >= 1.4x over 1 worker on the
distribution-friendly workload) only under ``REPRO_ASSERT_SPEEDUP=1``,
because hosted runners are too noisy for a hard gate.
"""

import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.csp.problems import CostasArrayProblem
from repro.engine.core import collect_batch
from repro.engine.distributed import DistributedBackend
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig

from benchmarks.conftest import print_once

N_RUNS = 48


def _solver() -> AdaptiveSearch:
    return AdaptiveSearch(CostasArrayProblem(8), AdaptiveSearchConfig(max_iterations=100_000))


def _spawn_workers(n: int, address: str) -> list:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return [
        subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "worker",
                "--connect",
                address,
                "--connect-timeout",
                "60",
                "--poll-interval",
                "0.01",
            ],
            env=env,
        )
        for _ in range(n)
    ]


def _collect_distributed(n_workers: int, base_seed: int):
    backend = DistributedBackend(
        coordinator="127.0.0.1:0", unit_size=4, batch_timeout=300.0
    )
    address = backend.start()
    workers = _spawn_workers(n_workers, address)
    try:
        start = time.perf_counter()
        batch = collect_batch(_solver(), N_RUNS, base_seed=base_seed, backend=backend)
        elapsed = time.perf_counter() - start
    finally:
        backend.shutdown()
        for proc in workers:
            proc.wait(timeout=60)
    return batch, elapsed


@pytest.mark.benchmark(group="distributed-overhead")
def test_distributed_overhead_vs_serial(benchmark, request):
    """One worker on localhost: everything beyond serial time is protocol cost."""
    serial = collect_batch(_solver(), N_RUNS, base_seed=31, backend="serial")

    def collect():
        batch, _elapsed = _collect_distributed(1, base_seed=31)
        return batch

    batch = benchmark.pedantic(collect, rounds=1, iterations=1, warmup_rounds=0)
    np.testing.assert_array_equal(batch.iterations, serial.iterations)
    np.testing.assert_array_equal(batch.seeds, serial.seeds)
    print_once(
        request,
        f"distributed[1 worker]: {N_RUNS} runs of {_solver().describe()} "
        "(serial-equivalent data, socket transport)",
    )


@pytest.mark.benchmark(group="distributed-scaling")
def test_two_workers_scale_over_one(benchmark, bench_results):
    """Measure 2-worker vs 1-worker wall clock; enforce only on demand.

    Worker processes re-import numpy on startup, so on a small/busy machine
    the spawn cost can mask the scaling; ``REPRO_ASSERT_SPEEDUP=1`` enforces
    the >= 1.4x target on hosts where two real cores are available.
    """
    enforce = os.environ.get("REPRO_ASSERT_SPEEDUP") == "1"
    _, one_worker_seconds = _collect_distributed(1, base_seed=37)

    def collect_two():
        batch, _ = _collect_distributed(2, base_seed=37)
        return batch

    benchmark.pedantic(collect_two, rounds=1, iterations=1, warmup_rounds=0)
    two_worker_seconds = benchmark.stats.stats.mean
    ratio = one_worker_seconds / two_worker_seconds if two_worker_seconds > 0 else float("inf")
    bench_results.record(
        "distributed-scaling[2v1]",
        "wall_clock_speedup",
        ratio,
        n_runs=N_RUNS,
        unit_size=4,
        enforced=enforce,
    )
    print(f"\n2-worker vs 1-worker distributed speedup: {ratio:.2f}x")
    if enforce:
        assert ratio >= 1.4, (
            f"two workers should beat one by >= 1.4x on a multi-core host, got {ratio:.2f}x"
        )
