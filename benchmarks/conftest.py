"""Shared fixtures for the benchmark harness.

The solver campaign (the expensive part) is collected once per benchmark
session with the ``quick`` profile and shared by every table/figure bench;
each bench then times only the analysis stage it reproduces and prints the
regenerated rows/series once so the output can be compared with the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import collect_benchmark_observations


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The laptop-scale reproduction profile used by every bench."""
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def quick_observations(quick_config):
    """One sequential Adaptive Search campaign shared across all benches."""
    return collect_benchmark_observations(quick_config)


def print_once(request, text: str) -> None:
    """Print a regenerated table/figure once (not once per benchmark round)."""
    key = f"_printed_{request.node.nodeid}"
    if not getattr(request.config, key, False):
        setattr(request.config, key, True)
        print(f"\n{text}\n")
