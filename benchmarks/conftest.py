"""Shared fixtures for the benchmark harness.

The solver campaign (the expensive part) is collected once per benchmark
session with the ``quick`` profile and shared by every table/figure bench;
each bench then times only the analysis stage it reproduces and prints the
regenerated rows/series once so the output can be compared with the paper.

Every measured speedup/throughput additionally lands in
``BENCH_results.json`` at the repository root via the session-scoped
:func:`bench_results` recorder — one record per measurement with the bench
id, metric name, value, the parameters that shaped it and the git revision
— so CI can archive the numbers as an artifact and PRs can diff the trend
instead of eyeballing captured stdout.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import collect_benchmark_observations

#: Where the recorder writes; the repository root (pytest rootdir).
BENCH_RESULTS_NAME = "BENCH_results.json"


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


class BenchResultRecorder:
    """Append-on-record sink for measured speedups and throughputs.

    The file is rewritten after every :meth:`record` call so a crashed or
    interrupted session still leaves the measurements taken so far — CI
    uploads whatever exists.  One pytest session owns the file: it starts
    fresh rather than accreting across local re-runs.
    """

    def __init__(self, path: Path) -> None:
        self.path = path
        self.git_sha = _git_sha()
        self.records: list[dict] = []

    def record(self, bench: str, metric: str, value: float, **params) -> None:
        """Append one measurement (``params`` document the bench shape)."""
        self.records.append(
            {
                "bench": bench,
                "metric": metric,
                "value": float(value),
                "params": params,
                "git_sha": self.git_sha,
            }
        )
        self.path.write_text(json.dumps(self.records, indent=2) + "\n")


@pytest.fixture(scope="session")
def bench_results(request) -> BenchResultRecorder:
    """Session-wide recorder behind ``BENCH_results.json``."""
    return BenchResultRecorder(Path(request.config.rootpath) / BENCH_RESULTS_NAME)


@pytest.fixture(scope="session")
def quick_config() -> ExperimentConfig:
    """The laptop-scale reproduction profile used by every bench."""
    return ExperimentConfig.quick()


@pytest.fixture(scope="session")
def quick_observations(quick_config):
    """One sequential Adaptive Search campaign shared across all benches."""
    return collect_benchmark_observations(quick_config)


def print_once(request, text: str) -> None:
    """Print a regenerated table/figure once (not once per benchmark round)."""
    key = f"_printed_{request.node.nodeid}"
    if not getattr(request.config, key, False):
        setattr(request.config, key, True)
        print(f"\n{text}\n")
