"""Benches for the lockstep kernel: aggregate flips/second vs the scalar path.

Because the kernel is bit-identical per seed to the scalar incremental
solver (same flip sequences, pinned by ``tests/sat/test_vectorized.py``),
the wall-clock ratio of running the same seed block both ways IS the
aggregate flips/second ratio.  The PR-6 acceptance target is >= 3x
aggregate flips/second at K=64 walks on uniform 3-SAT with n=250 variables
at clause ratio 4.2, enforced on demand via ``REPRO_ASSERT_SPEEDUP=1``
(mirroring every other speedup gate here: hosted runners are too noisy to
gate unconditionally); the ratios and the K-sweep are printed always and
recorded to ``BENCH_results.json``.

Expected shape of the numbers: per step the kernel answers every active
walk's break-count/selection math in a handful of numpy calls whose cost
grows sublinearly in K, while the scalar loop pays full Python dispatch
per walk per flip — so throughput climbs steeply to K ~ 16 and keeps
creeping up until the (K, m) count matrix falls out of cache (measured on
this container: ~0.5x at K=1 — the batched math costs more than it saves
with nothing to amortise over — ~2.8x at K=16, ~4.5x at K=64).
"""

import os
import time

import numpy as np
import pytest

from repro.sat import random_ksat
from repro.sat.vectorized import run_lockstep
from repro.solvers.walksat import WalkSAT, WalkSATConfig

from benchmarks.conftest import print_once

#: Clause-to-variable ratio (just under the 3-SAT phase transition).
RATIO = 4.2

#: The gate shape: K walks, n variables, per-walk flip budget.
GATE_WALKS = 64
GATE_VARIABLES = 250
BUDGET = 2_000


def _make_instance(n_variables: int):
    n_clauses = int(round(RATIO * n_variables))
    return random_ksat(
        n_variables, n_clauses, k=3, rng=np.random.default_rng(n_variables)
    )


def _scalar_flips_per_second(formula, seeds):
    solver = WalkSAT(formula, WalkSATConfig(max_flips=BUDGET, evaluation="incremental"))
    start = time.perf_counter()
    total_flips = sum(solver.run(int(seed)).iterations for seed in seeds)
    elapsed = time.perf_counter() - start
    return total_flips, total_flips / elapsed


def _lockstep_flips_per_second(formula, seeds):
    config = WalkSATConfig(max_flips=BUDGET, evaluation="incremental")
    start = time.perf_counter()
    results = run_lockstep(formula, config, list(seeds))
    elapsed = time.perf_counter() - start
    total_flips = sum(result.iterations for result in results)
    return total_flips, total_flips / elapsed


@pytest.mark.benchmark(group="lockstep-speedup")
def test_3sat250_lockstep_speedup_gate(benchmark, bench_results):
    """PR-6 acceptance: >= 3x aggregate flips/second at K=64 on uniform
    3-SAT n=250 @ 4.2 over the scalar incremental path.

    Asserted only under ``REPRO_ASSERT_SPEEDUP=1``; the ratio is printed
    and recorded always so PRs can track the trend.
    """
    formula = _make_instance(GATE_VARIABLES)
    seeds = list(range(GATE_WALKS))
    scalar_flips, scalar_fps = _scalar_flips_per_second(formula, seeds)

    def lockstep():
        return _lockstep_flips_per_second(formula, seeds)

    lockstep_flips, lockstep_fps = benchmark.pedantic(
        lockstep, rounds=1, iterations=1, warmup_rounds=0
    )
    # Bit-identical walks: same total flips on both paths.
    assert lockstep_flips == scalar_flips
    ratio = lockstep_fps / scalar_fps
    bench_results.record(
        "lockstep-speedup[3sat-250]",
        "lockstep_vs_scalar_speedup",
        ratio,
        n_walks=GATE_WALKS,
        n_variables=GATE_VARIABLES,
        clause_ratio=RATIO,
        budget=BUDGET,
        lockstep_flips_per_second=lockstep_fps,
        scalar_flips_per_second=scalar_fps,
    )
    print(
        f"\n3sat-250[K={GATE_WALKS}] lockstep-vs-scalar: {ratio:.2f}x "
        f"({lockstep_fps:,.0f} vs {scalar_fps:,.0f} flips/s)"
    )
    if os.environ.get("REPRO_ASSERT_SPEEDUP") == "1":
        assert ratio >= 3.0, (
            f"lockstep kernel should be >= 3x the scalar incremental path at "
            f"K={GATE_WALKS} on uniform 3-SAT n={GATE_VARIABLES} @ {RATIO}, "
            f"got {ratio:.2f}x"
        )


@pytest.mark.benchmark(group="lockstep-sweep")
@pytest.mark.parametrize("n_walks", [1, 4, 16, 64])
def test_lockstep_width_sweep(benchmark, n_walks, request, bench_results):
    """Throughput as a function of the batch width K (same instance as the
    gate, seed blocks nested so wider runs strictly add walks)."""
    formula = _make_instance(GATE_VARIABLES)
    seeds = list(range(n_walks))

    def lockstep():
        return _lockstep_flips_per_second(formula, seeds)

    _flips, fps = benchmark.pedantic(lockstep, rounds=1, iterations=1, warmup_rounds=0)
    bench_results.record(
        f"lockstep-sweep[K={n_walks}]",
        "flips_per_second",
        fps,
        n_walks=n_walks,
        n_variables=GATE_VARIABLES,
        clause_ratio=RATIO,
        budget=BUDGET,
    )
    print_once(request, f"lockstep-sweep[K={n_walks}]: {fps:,.0f} flips/s")
