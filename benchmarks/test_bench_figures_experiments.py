"""Benches for Figures 6, 7 and 14: measured (simulated multi-walk) speed-up curves."""

import pytest

from benchmarks.conftest import print_once
from repro.experiments.figures_experiments import (
    figure6_csplib_speedups,
    figure7_costas_speedups,
    figure14_costas_extended,
)


@pytest.mark.benchmark(group="figures-experiments")
def test_figure6_csplib_speedup_curves(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure6_csplib_speedups, quick_config, quick_observations)
    print_once(request, figure.format())
    top = quick_config.cores[-1]
    ms_label = quick_observations["MS"].label
    ai_label = quick_observations["AI"].label
    # Both CSPLib benchmarks parallelise but stay below the ideal line at 256
    # cores (the paper's qualitative message for Figure 6).
    for label in (ms_label, ai_label):
        assert 1.0 < figure.speedup(label, top) < figure.speedup("Ideal", top)


@pytest.mark.benchmark(group="figures-experiments")
def test_figure7_costas_speedup_curve(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure7_costas_speedups, quick_config, quick_observations)
    print_once(request, figure.format())
    label = quick_observations["Costas"].label
    # Costas scales markedly better than the CSPLib problems at modest core
    # counts (Figure 7 vs Figure 6): near-ideal at 16-32 cores.
    assert figure.speedup(label, 16) > 0.6 * 16


@pytest.mark.benchmark(group="figures-experiments")
def test_figure14_costas_extended_core_counts(benchmark, request, quick_config, quick_observations):
    figure = benchmark(figure14_costas_extended, quick_config, quick_observations)
    print_once(request, figure.format())
    assert max(figure.cores) == max(quick_config.extended_cores)
    measured_name = next(name for name in figure.series if "measured" in name)
    predicted_name = next(name for name in figure.series if "predicted" in name)
    # Both series keep increasing (or saturate) but never decrease.
    for name in (measured_name, predicted_name):
        values = figure.series[name]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
