"""Benches for the incremental WalkSAT engine: flips/second per path × policy.

Because the incremental clause state and the batch oracle are bit-identical
(same flip sequence for a given seed and policy), the wall-clock ratio of
the two collections IS the flips/second ratio.  The ISSUE-3 acceptance
target — extended by ISSUE-5 to *every* registered flip policy — is >= 5x
flips/second on planted 3-SAT with n=250 variables at clause ratio 4.2,
enforced on demand via ``REPRO_ASSERT_SPEEDUP=1`` (mirroring the engine
and delta-kernel gates: hosted runners are too noisy to gate
unconditionally); the per-instance/per-policy ratios are printed either
way so PRs can track the trend.

Expected shape of the numbers: the batch path pays O(k·m·w) full literal-
matrix rebuilds per flip, the incremental path O(occurrences of the
flipped variable); the ratio therefore grows with the clause count
(measured on this container: ~9x at n=100, ~17x at n=250, ~30x at n=500
for the SKC policy; the Novelty family queries make counts too — two
batch re-evaluations per candidate — so its ratios come out higher
still).
"""

import os
import time

import numpy as np
import pytest

from repro.sat import random_planted_ksat
from repro.solvers.policies import POLICIES
from repro.solvers.walksat import WalkSAT, WalkSATConfig

from benchmarks.conftest import print_once

#: Clause-to-variable ratio of every bench instance (just under the 3-SAT
#: phase transition at ~4.27, the heavy-tailed region the paper targets).
RATIO = 4.2

#: (instance id, n_variables, per-run flip budget, number of seeded runs).
INSTANCES = [
    ("3sat-100", 100, 3_000, 4),
    ("3sat-250", 250, 2_000, 3),
    ("3sat-500", 500, 1_000, 2),
]


def _make_instance(n_variables: int):
    n_clauses = int(round(RATIO * n_variables))
    formula, _planted = random_planted_ksat(
        n_variables, n_clauses, rng=np.random.default_rng(n_variables)
    )
    return formula


def _flips_per_second(formula, mode: str, budget: int, n_runs: int, policy: str = "walksat"):
    config = WalkSATConfig(max_flips=budget, evaluation=mode, policy=policy)
    solver = WalkSAT(formula, config)
    total_flips = 0
    start = time.perf_counter()
    for seed in range(n_runs):
        total_flips += solver.run(seed).iterations
    elapsed = time.perf_counter() - start
    return total_flips, total_flips / elapsed


@pytest.mark.benchmark(group="walksat-throughput")
@pytest.mark.parametrize("instance", INSTANCES, ids=[spec[0] for spec in INSTANCES])
def test_incremental_vs_batch_throughput(benchmark, instance, request, bench_results):
    label, n_variables, budget, n_runs = instance
    formula = _make_instance(n_variables)
    batch_flips, batch_fps = _flips_per_second(formula, "batch", budget, n_runs)

    def incremental():
        return _flips_per_second(formula, "incremental", budget, n_runs)

    incremental_flips, incremental_fps = benchmark.pedantic(
        incremental, rounds=1, iterations=1, warmup_rounds=0
    )
    # Bit-identical flip sequences: same total work on both paths.
    assert incremental_flips == batch_flips
    bench_results.record(
        f"walksat-throughput[{label}]",
        "incremental_vs_batch_speedup",
        incremental_fps / batch_fps,
        instance=label,
        incremental_flips_per_second=incremental_fps,
        batch_flips_per_second=batch_fps,
    )
    print_once(
        request,
        f"walksat-throughput[{label}]: incremental {incremental_fps:,.0f} flips/s "
        f"vs batch {batch_fps:,.0f} flips/s -> {incremental_fps / batch_fps:.2f}x",
    )


@pytest.mark.benchmark(group="walksat-speedup")
@pytest.mark.parametrize("policy", POLICIES)
def test_3sat250_incremental_speedup_gate(benchmark, policy, bench_results):
    """ISSUE-3/ISSUE-5 acceptance: >= 5x flips/second on planted 3-SAT
    n=250 @ 4.2 for every registered flip policy.

    Asserted only under ``REPRO_ASSERT_SPEEDUP=1`` (timing gates are
    meaningless on noisy shared runners); the ratios are printed always
    and land in the CI benchmark artifact with the rest of the timings.
    """
    formula = _make_instance(250)
    budget, n_runs = 2_000, 3
    batch_flips, batch_fps = _flips_per_second(formula, "batch", budget, n_runs, policy)

    def incremental():
        return _flips_per_second(formula, "incremental", budget, n_runs, policy)

    incremental_flips, incremental_fps = benchmark.pedantic(
        incremental, rounds=1, iterations=1, warmup_rounds=0
    )
    assert incremental_flips == batch_flips
    ratio = incremental_fps / batch_fps
    bench_results.record(
        "walksat-speedup[3sat-250]",
        "incremental_vs_batch_speedup",
        ratio,
        policy=policy,
        n_variables=250,
        clause_ratio=RATIO,
        flips_per_second=incremental_fps,
    )
    print(
        f"\n3sat-250[{policy}] incremental-vs-batch: {ratio:.2f}x "
        f"({incremental_fps:,.0f} flips/s)"
    )
    if os.environ.get("REPRO_ASSERT_SPEEDUP") == "1":
        assert ratio >= 5.0, (
            f"incremental clause state should be >= 5x the batch path on "
            f"planted 3-SAT n=250 @ {RATIO} under policy {policy!r}, got {ratio:.2f}x"
        )
