"""Benches for Figures 1–5: the analytical model (no solver involved).

Each bench times the computation that regenerates the figure's data (min
distributions over a grid, or a full speed-up curve) and prints the series
once for comparison with the paper.
"""

import pytest

from benchmarks.conftest import print_once
from repro.experiments.figures_model import (
    figure1_gaussian_min,
    figure2_exponential_min,
    figure3_exponential_speedup,
    figure4_lognormal_min,
    figure5_lognormal_speedup,
)


@pytest.mark.benchmark(group="figures-model")
def test_figure1_gaussian_min_distribution(benchmark, request):
    figure = benchmark(figure1_gaussian_min)
    print_once(request, figure.format())
    assert figure.peak_location(1000) <= figure.peak_location(1)


@pytest.mark.benchmark(group="figures-model")
def test_figure2_exponential_min_distribution(benchmark, request):
    figure = benchmark(figure2_exponential_min)
    print_once(request, figure.format())
    assert set(figure.densities) == {1, 2, 4, 8}


@pytest.mark.benchmark(group="figures-model")
def test_figure3_exponential_speedup_curve(benchmark, request):
    figure = benchmark(figure3_exponential_speedup)
    print_once(request, figure.format())
    # Paper: limit 11 for x0=100, lambda=1/1000.
    assert figure.limit == pytest.approx(11.0)


@pytest.mark.benchmark(group="figures-model")
def test_figure4_lognormal_min_distribution(benchmark, request):
    figure = benchmark(figure4_lognormal_min)
    print_once(request, figure.format())
    assert figure.peak_location(8) <= figure.peak_location(1)


@pytest.mark.benchmark(group="figures-model")
def test_figure5_lognormal_speedup_curve(benchmark, request):
    figure = benchmark(figure5_lognormal_speedup)
    print_once(request, figure.format())
    # Paper Figure 5: the curve reaches roughly 25 at 256 cores.
    assert 20.0 < figure.curve.speedups[-1] < 32.0
