"""Benches for the extension features (paper's future-work directions).

* Instance-size extrapolation (Section 8's proposed method) on ALL-INTERVAL.
* Restart-vs-multi-walk analysis over the fitted benchmark distributions.
* Quorum (k-th finisher) prediction on the Costas benchmark.
* Censoring-aware fitting on an artificially budget-capped campaign.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_once
from repro.core.censoring import censored_exponential_fit
from repro.core.fitting import fit_distribution
from repro.core.quorum import QuorumSpeedupModel
from repro.core.restarts import restart_vs_multiwalk
from repro.csp.problems import AllIntervalProblem
from repro.experiments.report import format_table
from repro.scaling import InstanceScalingStudy


@pytest.mark.benchmark(group="extensions")
def test_extension_instance_scaling_extrapolation(benchmark, request):
    """Learn the ALL-INTERVAL scaling law on sizes 8-10 and predict size 12."""

    def run():
        study = InstanceScalingStudy(
            problem_factory=AllIntervalProblem,
            family="shifted_exponential",
            shift_rule="min",
            n_runs=30,
            max_iterations=100_000,
            base_seed=101,
        )
        study.run([8, 9, 10])
        comparison = study.validate(12, cores=[4, 16, 64], n_runs=30)
        return study, comparison

    study, comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [c, comparison["extrapolated"][c], comparison["direct_fit"][c], comparison["simulated"][c]]
        for c in (4, 16, 64)
    ]
    print_once(
        request,
        format_table(
            ["cores", "extrapolated", "direct fit", "simulated"],
            rows,
            title="Extension: predict ALL-INTERVAL 12 from sizes 8-10",
            float_format="{:.1f}",
        ),
    )
    assert study.family_is_stable()
    for c in (4, 16):
        assert 0.25 < comparison["extrapolated"][c] / comparison["simulated"][c] < 4.0


@pytest.mark.benchmark(group="extensions")
def test_extension_restart_vs_multiwalk(benchmark, request, quick_config, quick_observations):
    """Restart / multi-walk / combined gains for each fitted benchmark distribution."""

    def run():
        out = {}
        for key, batch in quick_observations.items():
            values = batch.values("iterations")
            fit = fit_distribution(
                values,
                quick_config.paper_family(key),
                shift_rule=quick_config.paper_shift_rule(key),
            )
            out[key] = restart_vs_multiwalk(fit.distribution, n_cores=64)
        return out

    analyses = benchmark(run)
    rows = [
        [key, a.optimal_cutoff, a.restart_gain, a.multiwalk_gain, a.combined_gain, a.best_strategy()]
        for key, a in analyses.items()
    ]
    print_once(
        request,
        format_table(
            ["benchmark", "cutoff*", "restart gain", "multiwalk gain (64)", "combined", "best"],
            rows,
            title="Extension: restart vs multi-walk (64 cores)",
            float_format="{:.2f}",
        ),
    )
    for key, analysis in analyses.items():
        assert analysis.multiwalk_gain > 1.0
        assert analysis.combined_gain >= max(analysis.restart_gain, 1.0) - 1e-9


@pytest.mark.benchmark(group="extensions")
def test_extension_quorum_prediction(benchmark, request, quick_config, quick_observations):
    """Waiting for k distinct Costas solutions instead of the first one."""
    values = quick_observations["Costas"].values("iterations")
    fit = fit_distribution(values, "shifted_exponential",
                           shift_rule=quick_config.paper_shift_rule("Costas"))
    cores = [16, 64, 256]

    def run():
        return {k: QuorumSpeedupModel(fit.distribution, quorum=k).curve(cores) for k in (1, 2, 4, 8)}

    curves = benchmark(run)
    rows = [[k] + [curve.as_dict()[c] for c in cores] for k, curve in curves.items()]
    print_once(
        request,
        format_table(
            ["quorum k"] + [f"k_cores={c}" for c in cores],
            rows,
            title="Extension: quorum (k-th finisher) speed-ups, Costas benchmark",
            float_format="{:.1f}",
        ),
    )
    # The first-finisher quorum matches the paper model exactly; larger quorums
    # pay an overhead at fixed core count.
    for c in cores:
        assert curves[1].as_dict()[c] == pytest.approx(
            fit.distribution.mean() / fit.distribution.expected_minimum(c), rel=1e-9
        )
        assert curves[8].as_dict()[c] <= curves[1].as_dict()[c] * 8


@pytest.mark.benchmark(group="extensions")
def test_extension_censored_campaign_fit(benchmark, request, quick_observations):
    """Budget-capping the AI campaign and correcting the bias with the censored MLE."""
    values = quick_observations["AI"].values("iterations")
    budget = float(np.quantile(values, 0.6))
    censored_flags = values > budget
    capped = np.where(censored_flags, budget, values)

    def run():
        naive = fit_distribution(capped[~censored_flags], "shifted_exponential", shift_rule="min")
        corrected = censored_exponential_fit(capped, censored_flags)
        return naive, corrected

    naive, corrected = benchmark(run)
    full_mean = float(values.mean())
    rows = [
        ["naive (drop censored)", naive.distribution.mean(), naive.distribution.speedup(64)],
        ["censoring-aware MLE", corrected.mean(), corrected.speedup(64)],
        ["uncensored ground truth", full_mean, float("nan")],
    ]
    print_once(
        request,
        format_table(
            ["estimator", "estimated mean", "predicted G_64"],
            rows,
            title=f"Extension: censored fitting (AI campaign capped at {budget:.0f} iterations)",
            float_format="{:.1f}",
        ),
    )
    assert abs(corrected.mean() - full_mean) < abs(naive.distribution.mean() - full_mean)
