"""Numerical order-statistic machinery against closed forms and Monte Carlo."""


import pytest

from repro.core.distributions import (
    GammaRuntime,
    LogNormalRuntime,
    ShiftedExponential,
    TruncatedGaussian,
    UniformRuntime,
)
from repro.core.order_stats import (
    expected_minimum,
    expected_minimum_quantile_form,
    expected_minimum_survival_form,
    order_statistic_moment,
    raw_moment,
)


class TestExpectedMinimum:
    def test_exponential_closed_form(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        for n in (1, 2, 16, 256, 4096):
            exact = 100.0 + 1000.0 / n
            assert expected_minimum_survival_form(dist, n) == pytest.approx(exact, rel=1e-7)
            assert expected_minimum_quantile_form(dist, n) == pytest.approx(exact, rel=1e-6)

    def test_uniform_closed_form(self):
        dist = UniformRuntime(low=0.0, high=12.0)
        for n in (1, 3, 11, 99):
            assert expected_minimum(dist, n) == pytest.approx(12.0 / (n + 1), rel=1e-7)

    def test_methods_agree_on_lognormal(self):
        dist = LogNormalRuntime(mu=5.0, sigma=1.3, x0=500.0)
        for n in (2, 32, 256):
            survival = expected_minimum(dist, n, method="survival")
            quantile = expected_minimum(dist, n, method="quantile")
            assert survival == pytest.approx(quantile, rel=1e-4)

    def test_monte_carlo_agreement_gamma(self, rng):
        dist = GammaRuntime(shape=2.0, scale=50.0, x0=20.0)
        n = 12
        draws = dist.sample(rng, (30000, n)).min(axis=1)
        assert expected_minimum(dist, n) == pytest.approx(draws.mean(), rel=0.02)

    def test_monte_carlo_agreement_gaussian(self, rng):
        dist = TruncatedGaussian(mu=25.0, sigma=10.0, lower=0.0)
        n = 10
        draws = dist.sample(rng, (30000, n)).min(axis=1)
        assert expected_minimum(dist, n) == pytest.approx(draws.mean(), rel=0.02)

    def test_rejects_bad_arguments(self):
        dist = ShiftedExponential(x0=0.0, lam=1.0)
        with pytest.raises(ValueError):
            expected_minimum(dist, 0)
        with pytest.raises(ValueError):
            expected_minimum(dist, 4, method="nonsense")

    def test_large_core_count_approaches_support_bound(self):
        dist = LogNormalRuntime(mu=4.0, sigma=1.0, x0=250.0)
        value = expected_minimum(dist, 100_000)
        assert value == pytest.approx(250.0, rel=0.02)
        assert value >= 250.0


class TestOrderStatisticMoment:
    def test_k_equal_one_is_expected_minimum(self):
        dist = ShiftedExponential(x0=10.0, lam=0.1)
        for n in (2, 8):
            assert order_statistic_moment(dist, n=n, k=1) == pytest.approx(
                dist.expected_minimum(n), rel=1e-6
            )

    def test_k_equal_n_is_expected_maximum_exponential(self):
        """E[max of n Exp(lambda)] = H_n / lambda (harmonic number)."""
        lam = 0.02
        dist = ShiftedExponential(x0=0.0, lam=lam)
        n = 5
        harmonic = sum(1.0 / i for i in range(1, n + 1))
        assert order_statistic_moment(dist, n=n, k=n) == pytest.approx(harmonic / lam, rel=1e-6)

    def test_uniform_order_statistics_are_beta_means(self):
        """E[X_(k:n)] = k/(n+1) for Uniform(0, 1)-like distributions."""
        dist = UniformRuntime(low=0.0, high=1.0)
        n = 7
        for k in (1, 3, 7):
            assert order_statistic_moment(dist, n=n, k=k) == pytest.approx(k / (n + 1), rel=1e-6)

    def test_second_moment_uniform(self):
        """E[X_(1:n)^2] for Uniform(0,1) equals 2/((n+1)(n+2))."""
        dist = UniformRuntime(low=0.0, high=1.0)
        n = 4
        expected = 2.0 / ((n + 1) * (n + 2))
        assert order_statistic_moment(dist, n=n, k=1, moment=2) == pytest.approx(expected, rel=1e-6)

    def test_rejects_bad_indices(self):
        dist = UniformRuntime(low=0.0, high=1.0)
        with pytest.raises(ValueError):
            order_statistic_moment(dist, n=0, k=1)
        with pytest.raises(ValueError):
            order_statistic_moment(dist, n=3, k=4)
        with pytest.raises(ValueError):
            order_statistic_moment(dist, n=3, k=1, moment=0)


class TestRawMoment:
    def test_first_moment_is_mean(self):
        dist = GammaRuntime(shape=3.0, scale=5.0, x0=2.0)
        assert raw_moment(dist, 1) == pytest.approx(dist.mean(), rel=1e-7)

    def test_second_moment_gives_variance(self):
        dist = ShiftedExponential(x0=0.0, lam=0.5)
        second = raw_moment(dist, 2)
        assert second - dist.mean() ** 2 == pytest.approx(dist.variance(), rel=1e-6)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            raw_moment(ShiftedExponential(x0=0.0, lam=1.0), 0)
