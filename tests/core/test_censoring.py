"""Censored-run fitting, Kaplan–Meier survival and incomplete-algorithm model."""


import numpy as np
import pytest

from repro.core.censoring import (
    IncompleteRunModel,
    censored_exponential_fit,
    censored_mean,
    kaplan_meier,
)
from repro.core.distributions import ShiftedExponential
from repro.multiwalk.observations import RuntimeObservations


def censor(data: np.ndarray, budget: float) -> tuple[np.ndarray, np.ndarray]:
    flags = data > budget
    return np.where(flags, budget, data), flags


class TestCensoredExponentialFit:
    def test_no_censoring_matches_plain_mle(self, rng):
        data = ShiftedExponential(x0=0.0, lam=0.01).sample(rng, 400)
        fit = censored_exponential_fit(data, np.zeros(data.size, dtype=bool), x0=0.0)
        assert fit.lam == pytest.approx(data.size / data.sum(), rel=1e-12)

    def test_censoring_corrects_optimistic_bias(self, rng):
        """Dropping censored runs underestimates the mean; the MLE does not."""
        true = ShiftedExponential(x0=0.0, lam=1e-3)
        data = true.sample(rng, 2000)
        budget = float(np.quantile(data, 0.7))
        values, flags = censor(data, budget)
        naive_mean = values[~flags].mean()
        corrected = censored_mean(values, flags)
        assert naive_mean < 0.75 * true.mean()
        assert corrected == pytest.approx(true.mean(), rel=0.1)

    def test_rate_recovery_under_heavy_censoring(self, rng):
        true = ShiftedExponential(x0=100.0, lam=5e-3)
        data = true.sample(rng, 3000)
        values, flags = censor(data, float(np.quantile(data, 0.5)))
        fit = censored_exponential_fit(values, flags)
        assert fit.lam == pytest.approx(true.lam, rel=0.15)

    def test_all_censored_rejected(self):
        with pytest.raises(ValueError):
            censored_exponential_fit([10.0, 10.0], [True, True])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            censored_exponential_fit([1.0], [False, True])
        with pytest.raises(ValueError):
            censored_exponential_fit([], [])
        with pytest.raises(ValueError):
            censored_exponential_fit([-1.0], [False])


class TestKaplanMeier:
    def test_no_censoring_matches_empirical_cdf(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        km = kaplan_meier(data, np.zeros(4, dtype=bool))
        np.testing.assert_allclose(km.survival_at(np.array([1.0, 2.5, 4.0])), [0.75, 0.5, 0.0])
        assert km.cdf_at(2.0) == pytest.approx(0.5)
        assert km.n_events == 4
        assert km.n_censored == 0

    def test_textbook_censored_example(self):
        # Events at 1 and 3; censored at 2 and 4.
        values = np.array([1.0, 2.0, 3.0, 4.0])
        flags = np.array([False, True, False, True])
        km = kaplan_meier(values, flags)
        # S(1) = 3/4; S(3) = 3/4 * (1 - 1/2) = 3/8.
        assert km.survival_at(1.0) == pytest.approx(0.75)
        assert km.survival_at(3.5) == pytest.approx(0.375)

    def test_survival_before_first_event_is_one(self):
        km = kaplan_meier([5.0, 6.0], [False, False])
        assert km.survival_at(1.0) == 1.0

    def test_restricted_mean_close_to_true_mean_without_censoring(self, rng):
        data = rng.exponential(100.0, 3000)
        km = kaplan_meier(data, np.zeros(data.size, dtype=bool))
        assert km.restricted_mean() == pytest.approx(data.mean(), rel=0.02)

    def test_all_censored_rejected(self):
        with pytest.raises(ValueError):
            kaplan_meier([1.0, 2.0], [True, True])


class TestIncompleteRunModel:
    def test_multiwalk_success_probability(self):
        model = IncompleteRunModel(success_probability=0.2, mean_success_cost=100.0, budget=500.0)
        assert model.multiwalk_success_probability(1) == pytest.approx(0.2)
        assert model.multiwalk_success_probability(4) == pytest.approx(1 - 0.8**4)

    def test_cores_for_success_probability(self):
        model = IncompleteRunModel(success_probability=0.1, mean_success_cost=1.0, budget=10.0)
        n = model.cores_for_success_probability(0.99)
        assert model.multiwalk_success_probability(n) >= 0.99
        assert model.multiwalk_success_probability(n - 1) < 0.99

    def test_certain_success_needs_one_core(self):
        model = IncompleteRunModel(success_probability=1.0, mean_success_cost=5.0, budget=10.0)
        assert model.cores_for_success_probability(0.999) == 1
        assert model.multiwalk_success_probability(3) == pytest.approx(1.0)

    def test_effective_speedup_grows_with_cores(self):
        model = IncompleteRunModel(success_probability=0.05, mean_success_cost=50.0, budget=200.0)
        speedups = [model.effective_speedup(n) for n in (1, 4, 16, 64)]
        assert speedups[0] == pytest.approx(1.0)
        assert all(b >= a for a, b in zip(speedups, speedups[1:]))

    def test_expected_sequential_cost(self):
        model = IncompleteRunModel(success_probability=0.5, mean_success_cost=10.0, budget=100.0)
        assert model.expected_sequential_cost_with_restarts() == pytest.approx(10.0 + 100.0)

    def test_from_observations(self):
        batch = RuntimeObservations(
            label="x",
            iterations=np.array([10.0, 20.0, 50.0, 50.0]),
            runtimes=np.zeros(4),
            solved=np.array([True, True, False, False]),
            seeds=np.full(4, -1, dtype=np.int64),
        )
        model = IncompleteRunModel.from_observations(batch, budget=50.0)
        assert model.success_probability == pytest.approx(0.5)
        assert model.mean_success_cost == pytest.approx(15.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IncompleteRunModel(success_probability=0.0, mean_success_cost=1.0, budget=1.0)
        with pytest.raises(ValueError):
            IncompleteRunModel(success_probability=0.5, mean_success_cost=1.0, budget=0.0)
        model = IncompleteRunModel(success_probability=0.5, mean_success_cost=1.0, budget=1.0)
        with pytest.raises(ValueError):
            model.multiwalk_success_probability(0)
        with pytest.raises(ValueError):
            model.cores_for_success_probability(1.0)
