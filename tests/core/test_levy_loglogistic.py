"""Lévy and log-logistic families (the paper's rejected candidate and a fat-tail middle ground)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.distributions import LevyRuntime, LogLogisticRuntime, ShiftedExponential
from repro.core.fitting import fit_distribution
from repro.core.fitting.estimators import estimate_parameters


class TestLevy:
    def test_matches_scipy_levy(self):
        ours = LevyRuntime(scale=3.0, x0=10.0)
        reference = stats.levy(loc=10.0, scale=3.0)
        grid = np.linspace(10.5, 200.0, 50)
        np.testing.assert_allclose(ours.pdf(grid), reference.pdf(grid), rtol=1e-9)
        np.testing.assert_allclose(ours.cdf(grid), reference.cdf(grid), rtol=1e-9)
        assert ours.median() == pytest.approx(reference.median(), rel=1e-9)

    def test_mean_is_infinite(self):
        dist = LevyRuntime(scale=1.0)
        assert math.isinf(dist.mean())
        assert math.isinf(dist.variance())

    def test_quantile_round_trip(self):
        dist = LevyRuntime(scale=2.0, x0=5.0)
        for q in (0.1, 0.5, 0.9):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-10)

    def test_sampling_construction(self, rng):
        dist = LevyRuntime(scale=4.0, x0=0.0)
        draws = dist.sample(rng, 30000)
        assert draws.min() >= 0.0
        # Medians are robust even though the mean is infinite.
        assert np.median(draws) == pytest.approx(dist.median(), rel=0.05)

    def test_minimum_of_two_is_finite(self, rng):
        """Parallelism tames the infinite mean: E[min of 2 Levy draws] < inf."""
        dist = LevyRuntime(scale=1.0, x0=0.0)
        assert math.isinf(dist.expected_minimum(1))
        e2 = dist.expected_minimum(4)
        assert math.isfinite(e2)
        draws = dist.sample(rng, (40000, 4)).min(axis=1)
        assert e2 == pytest.approx(np.mean(draws), rel=0.1)

    def test_speedup_semantics(self):
        dist = LevyRuntime(scale=1.0)
        assert dist.speedup(1) == 1.0
        assert math.isinf(dist.speedup(8))

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LevyRuntime(scale=0.0)
        with pytest.raises(ValueError):
            LevyRuntime(scale=1.0, x0=-1.0)

    def test_estimator_recovers_scale(self, rng):
        true = LevyRuntime(scale=5.0, x0=0.0)
        data = true.sample(rng, 4000)
        fitted = estimate_parameters(data, "levy", x0=0.0)
        assert isinstance(fitted, LevyRuntime)
        assert fitted.scale == pytest.approx(5.0, rel=0.1)

    def test_levy_rejected_for_exponential_data(self, rng):
        """Reproduces the paper's negative result: Lévy does not fit AS-style runtimes."""
        data = ShiftedExponential(x0=0.0, lam=1e-3).sample(rng, 600)
        fit = fit_distribution(data, "levy", shift_rule="zero")
        assert not fit.accepted()


class TestLogLogistic:
    def test_matches_scipy_fisk(self):
        ours = LogLogisticRuntime(alpha=20.0, beta=3.0, x0=5.0)
        reference = stats.fisk(c=3.0, scale=20.0, loc=5.0)
        grid = np.linspace(5.5, 300.0, 60)
        np.testing.assert_allclose(ours.pdf(grid), reference.pdf(grid), rtol=1e-9)
        np.testing.assert_allclose(ours.cdf(grid), reference.cdf(grid), rtol=1e-9)
        assert ours.mean() == pytest.approx(reference.mean(), rel=1e-9)

    def test_median_is_shift_plus_alpha(self):
        dist = LogLogisticRuntime(alpha=7.0, beta=2.0, x0=3.0)
        assert dist.median() == pytest.approx(10.0)
        assert dist.cdf(10.0) == pytest.approx(0.5)

    def test_mean_infinite_for_small_beta(self):
        assert math.isinf(LogLogisticRuntime(alpha=1.0, beta=0.9).mean())
        assert math.isinf(LogLogisticRuntime(alpha=1.0, beta=1.5).variance())

    def test_quantile_round_trip_and_sampling(self, rng):
        dist = LogLogisticRuntime(alpha=50.0, beta=4.0, x0=10.0)
        for q in (0.05, 0.5, 0.95):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-10)
        draws = dist.sample(rng, 30000)
        assert draws.min() > 10.0
        assert np.median(draws) == pytest.approx(dist.median(), rel=0.03)

    def test_expected_minimum_decreases(self):
        dist = LogLogisticRuntime(alpha=100.0, beta=2.5, x0=0.0)
        values = [dist.expected_minimum(n) for n in (1, 4, 16, 64)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_estimator_recovers_parameters(self, rng):
        true = LogLogisticRuntime(alpha=30.0, beta=3.0, x0=0.0)
        data = true.sample(rng, 5000)
        fitted = estimate_parameters(data, "log_logistic", x0=0.0)
        assert isinstance(fitted, LogLogisticRuntime)
        assert fitted.alpha == pytest.approx(30.0, rel=0.1)
        assert fitted.beta == pytest.approx(3.0, rel=0.15)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogLogisticRuntime(alpha=0.0, beta=1.0)
        with pytest.raises(ValueError):
            LogLogisticRuntime(alpha=1.0, beta=0.0)
        with pytest.raises(ValueError):
            LogLogisticRuntime(alpha=1.0, beta=1.0, x0=-1.0)

    def test_good_fit_accepted_by_ks(self, rng):
        data = LogLogisticRuntime(alpha=200.0, beta=2.0, x0=0.0).sample(rng, 500)
        fit = fit_distribution(data, "log_logistic", shift_rule="zero")
        assert fit.accepted()
