"""Shift (x0) estimation rules."""

import numpy as np
import pytest

from repro.core.fitting.shift import (
    SHIFT_RULES,
    estimate_shift,
    shift_bias_corrected,
    shift_min,
    shift_quantile,
    shift_zero_if_negligible,
)


class TestShiftMin:
    def test_returns_minimum(self):
        assert shift_min([5.0, 2.0, 9.0]) == 2.0

    def test_rejects_empty_and_invalid(self):
        with pytest.raises(ValueError):
            shift_min([])
        with pytest.raises(ValueError):
            shift_min([1.0, -1.0])
        with pytest.raises(ValueError):
            shift_min([1.0, np.inf])


class TestZeroIfNegligible:
    def test_paper_costas_rule_snaps_to_zero(self):
        """Costas 21: minimum 3.2e5 vs mean 1.8e8 -> shift treated as 0."""
        data = np.concatenate([[3.2e5], np.full(99, 1.8e8)])
        assert shift_zero_if_negligible(data) == 0.0

    def test_keeps_minimum_when_not_negligible(self):
        """AI 700-style data: minimum is a sizeable fraction of the mean."""
        data = np.array([1217.0, 50_000.0, 110_000.0, 200_000.0])
        assert shift_zero_if_negligible(data) == 1217.0

    def test_threshold_is_configurable(self):
        data = np.array([5.0, 100.0, 100.0, 100.0])
        assert shift_zero_if_negligible(data, threshold=0.01) == 5.0
        assert shift_zero_if_negligible(data, threshold=0.10) == 0.0


class TestQuantileShift:
    def test_quantile_above_minimum(self):
        data = np.linspace(10.0, 1000.0, 200)
        assert shift_quantile(data, 0.05) >= data.min()
        assert shift_quantile(data, 0.0) == data.min()

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            shift_quantile([1.0, 2.0], q=1.0)


class TestBiasCorrected:
    def test_matches_first_order_correction_formula(self):
        data = np.array([10.0, 20.0, 30.0, 60.0])
        m, minimum, mean = 4, 10.0, 30.0
        expected = (m * minimum - mean) / (m - 1)
        assert shift_bias_corrected(data) == pytest.approx(expected)

    def test_reduces_positive_bias_of_minimum_on_average(self, rng):
        """Averaged over many samples, the corrected estimator is less biased than the min."""
        true_shift = 500.0
        raw_bias, corrected_bias = [], []
        for _ in range(200):
            data = true_shift + rng.exponential(1000.0, size=50)
            raw_bias.append(data.min() - true_shift)
            corrected_bias.append(shift_bias_corrected(data) - true_shift)
        assert abs(np.mean(corrected_bias)) < abs(np.mean(raw_bias))
        assert all(c < r for c, r in zip(corrected_bias, raw_bias))

    def test_single_observation_returns_it(self):
        assert shift_bias_corrected([42.0]) == 42.0

    def test_never_negative(self):
        data = np.array([1.0, 1000.0, 2000.0])
        assert shift_bias_corrected(data) >= 0.0


class TestEstimateShiftDispatch:
    def test_all_registered_rules_run(self):
        data = np.array([10.0, 20.0, 30.0, 40.0])
        for rule in SHIFT_RULES:
            value = estimate_shift(data, rule)
            assert 0.0 <= value <= data.max()
        # Rules other than the quantile one never exceed the observed minimum.
        for rule in ("min", "zero_if_negligible", "bias_corrected", "zero"):
            assert estimate_shift(data, rule) <= data.min()

    def test_zero_rule(self):
        assert estimate_shift([5.0, 6.0], "zero") == 0.0

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            estimate_shift([1.0, 2.0], "does-not-exist")
