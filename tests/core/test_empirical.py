"""Empirical (nonparametric) runtime distribution."""

import math

import numpy as np
import pytest

from repro.core.distributions import EmpiricalDistribution


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([])

    def test_rejects_negative_or_non_finite(self):
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0, -2.0])
        with pytest.raises(ValueError):
            EmpiricalDistribution([1.0, math.nan])

    def test_observations_are_sorted_copy(self):
        data = [5.0, 1.0, 3.0]
        dist = EmpiricalDistribution(data)
        np.testing.assert_array_equal(dist.observations, [1.0, 3.0, 5.0])
        assert dist.n_observations == 3


class TestStatistics:
    def test_mean_median_variance(self):
        data = np.array([1.0, 2.0, 3.0, 4.0])
        dist = EmpiricalDistribution(data)
        assert dist.mean() == pytest.approx(2.5)
        assert dist.median() == pytest.approx(2.5)
        assert dist.variance() == pytest.approx(np.var(data))

    def test_cdf_is_step_function(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0])
        assert dist.cdf(0.5) == 0.0
        assert dist.cdf(1.0) == 0.25
        assert dist.cdf(2.5) == 0.5
        assert dist.cdf(4.0) == 1.0

    def test_quantile_matches_numpy(self):
        data = np.array([3.0, 7.0, 1.0, 9.0, 5.0])
        dist = EmpiricalDistribution(data)
        assert dist.quantile(0.5) == pytest.approx(np.quantile(data, 0.5))

    def test_sample_draws_from_observations(self, rng):
        data = np.array([2.0, 4.0, 8.0])
        dist = EmpiricalDistribution(data)
        draws = dist.sample(rng, 100)
        assert set(np.unique(draws)).issubset(set(data))

    def test_pdf_histogram_integrates_to_one(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(10.0, 500)
        dist = EmpiricalDistribution(data)
        grid = np.linspace(data.min(), data.max(), 4000)
        mass = np.trapezoid(dist.pdf(grid), grid)
        assert mass == pytest.approx(1.0, rel=0.05)

    def test_pdf_bins_are_computed_once_and_cached(self):
        """pdf() must not re-bin the sample on every call: the edges and
        densities are memoised on first use and reused afterwards (and not
        built at all until pdf() is actually called)."""
        rng = np.random.default_rng(4)
        data = rng.exponential(5.0, 300)
        dist = EmpiricalDistribution(data)
        assert dist._pdf_edges is None  # construction stays histogram-free
        first = np.asarray(dist.pdf(np.linspace(0, 30, 50)))
        edges_after_first = dist._pdf_edges
        assert edges_after_first is not None
        second = np.asarray(dist.pdf(np.linspace(0, 30, 50)))
        np.testing.assert_array_equal(first, second)
        assert dist._pdf_edges is edges_after_first  # same cached array, no rebuild
        np.testing.assert_array_equal(dist._pdf_edges, dist._histogram_edges())

    def test_pdf_zero_outside_support_and_scalar_input(self):
        dist = EmpiricalDistribution([1.0, 2.0, 3.0])
        assert dist.pdf(-1.0) == 0.0
        assert dist.pdf(100.0) == 0.0
        assert isinstance(dist.pdf(2.0), float)


class TestExpectedMinimum:
    def test_n_equal_one_is_sample_mean(self):
        data = np.array([1.0, 5.0, 9.0])
        dist = EmpiricalDistribution(data)
        assert dist.expected_minimum(1) == pytest.approx(data.mean())

    def test_exact_formula_two_points(self):
        # Two observations a < b: P[min of n draws = b] = (1/2)^n.
        dist = EmpiricalDistribution([10.0, 20.0])
        for n in (1, 2, 5):
            expected = 20.0 * 0.5**n + 10.0 * (1 - 0.5**n)
            assert dist.expected_minimum(n) == pytest.approx(expected)

    def test_matches_monte_carlo(self, rng):
        data = rng.lognormal(3.0, 1.0, size=200)
        dist = EmpiricalDistribution(data)
        n = 8
        draws = rng.choice(data, size=(20000, n), replace=True).min(axis=1)
        assert dist.expected_minimum(n) == pytest.approx(draws.mean(), rel=0.03)

    def test_converges_to_sample_minimum(self):
        data = np.array([3.0, 10.0, 40.0, 100.0])
        dist = EmpiricalDistribution(data)
        assert dist.expected_minimum(10_000) == pytest.approx(3.0, rel=1e-3)

    def test_speedup_limit(self):
        dist = EmpiricalDistribution([2.0, 4.0, 6.0])
        assert dist.speedup_limit() == pytest.approx(4.0 / 2.0)
        assert math.isinf(EmpiricalDistribution([0.0, 5.0]).speedup_limit())

    def test_rejects_bad_core_count(self):
        dist = EmpiricalDistribution([1.0, 2.0])
        with pytest.raises(ValueError):
            dist.expected_minimum(0)
