"""MinDistribution: the multi-walk runtime distribution Z(n)."""

import numpy as np
import pytest

from repro.core.distributions import LogNormalRuntime, ShiftedExponential, UniformRuntime
from repro.core.minimum import MinDistribution


class TestConstruction:
    def test_rejects_non_integer_cores(self):
        base = ShiftedExponential(x0=0.0, lam=1.0)
        with pytest.raises(TypeError):
            MinDistribution(base, 2.5)

    def test_rejects_non_positive_cores(self):
        base = ShiftedExponential(x0=0.0, lam=1.0)
        with pytest.raises(ValueError):
            MinDistribution(base, 0)

    def test_params_include_base_and_cores(self):
        base = ShiftedExponential(x0=3.0, lam=2.0)
        dist = MinDistribution(base, 4)
        params = dist.params()
        assert params["n_cores"] == 4.0
        assert params["base_x0"] == 3.0


class TestFormulas:
    def test_cdf_formula(self):
        """F_Z(t) = 1 - (1 - F_Y(t))^n (Section 3.1)."""
        base = LogNormalRuntime(mu=2.0, sigma=0.5, x0=0.0)
        n = 5
        dist = MinDistribution(base, n)
        grid = np.linspace(0.1, 60.0, 40)
        expected = 1.0 - (1.0 - np.asarray(base.cdf(grid))) ** n
        np.testing.assert_allclose(dist.cdf(grid), expected, atol=1e-12)

    def test_pdf_formula(self):
        """f_Z(t) = n f_Y(t) (1 - F_Y(t))^(n-1)."""
        base = LogNormalRuntime(mu=2.0, sigma=0.5, x0=0.0)
        n = 3
        dist = MinDistribution(base, n)
        grid = np.linspace(0.1, 60.0, 40)
        expected = n * np.asarray(base.pdf(grid)) * (1.0 - np.asarray(base.cdf(grid))) ** (n - 1)
        np.testing.assert_allclose(dist.pdf(grid), expected, rtol=1e-10)

    def test_n_equal_one_is_identity(self):
        base = ShiftedExponential(x0=10.0, lam=0.1)
        dist = MinDistribution(base, 1)
        grid = np.linspace(0.0, 100.0, 30)
        np.testing.assert_allclose(dist.cdf(grid), base.cdf(grid))
        assert dist.mean() == pytest.approx(base.mean())

    def test_pdf_integrates_to_one(self):
        base = ShiftedExponential(x0=10.0, lam=0.05)
        dist = MinDistribution(base, 7)
        grid = np.linspace(10.0, 200.0, 40001)
        assert np.trapezoid(dist.pdf(grid), grid) == pytest.approx(1.0, abs=1e-4)

    def test_distribution_shifts_toward_origin(self):
        """Section 3.1: the min distribution moves toward the origin and peaks."""
        base = UniformRuntime(low=0.0, high=100.0)
        means = [MinDistribution(base, n).mean() for n in (1, 10, 100)]
        assert means[0] > means[1] > means[2]


class TestComposition:
    def test_min_of_min_composes_multiplicatively(self):
        base = ShiftedExponential(x0=5.0, lam=0.01)
        composed = base.min_of(4).min_of(8)
        direct = base.min_of(32)
        assert isinstance(composed, MinDistribution)
        assert composed.n_cores == 32
        assert composed.mean() == pytest.approx(direct.mean())

    def test_quantile_round_trip(self):
        base = LogNormalRuntime(mu=3.0, sigma=1.0, x0=0.0)
        dist = MinDistribution(base, 16)
        for q in (0.1, 0.5, 0.9):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, rel=1e-6)

    def test_sampling_matches_expectation(self, rng):
        base = ShiftedExponential(x0=100.0, lam=1e-2)
        dist = MinDistribution(base, 8)
        draws = dist.sample(rng, 20000)
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.02)
        single = dist.sample(rng)
        assert isinstance(single, float)

    def test_support_matches_base(self):
        base = UniformRuntime(low=2.0, high=9.0)
        assert MinDistribution(base, 10).support() == (2.0, 9.0)
