"""Restart strategies: cutoff analysis, Luby sequence, restart-vs-multiwalk."""

import math

import numpy as np
import pytest

from repro.core.distributions import (
    LogNormalRuntime,
    ParetoRuntime,
    ShiftedExponential,
    UniformRuntime,
)
from repro.core.restarts import (
    expected_runtime_with_cutoff,
    luby_sequence,
    optimal_cutoff,
    restart_vs_multiwalk,
)


class TestExpectedRuntimeWithCutoff:
    def test_exponential_is_memoryless(self):
        """For a (non-shifted) exponential, restarting never helps nor hurts."""
        dist = ShiftedExponential(x0=0.0, lam=1e-2)
        for cutoff in (10.0, 100.0, 1000.0):
            assert expected_runtime_with_cutoff(dist, cutoff) == pytest.approx(
                dist.mean(), rel=1e-6
            )

    def test_large_cutoff_recovers_plain_mean(self):
        dist = LogNormalRuntime(mu=3.0, sigma=0.8, x0=0.0)
        value = expected_runtime_with_cutoff(dist, dist.quantile(1 - 1e-9))
        assert value == pytest.approx(dist.mean(), rel=1e-3)

    def test_cutoff_below_support_is_useless(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-2)
        assert math.isinf(expected_runtime_with_cutoff(dist, 50.0))

    def test_monte_carlo_agreement(self, rng):
        dist = LogNormalRuntime(mu=4.0, sigma=1.5, x0=0.0)
        cutoff = float(dist.quantile(0.6))
        # Simulate restart-until-success.
        totals = []
        for _ in range(4000):
            total = 0.0
            while True:
                draw = float(dist.sample(rng))
                if draw <= cutoff:
                    total += draw
                    break
                total += cutoff
            totals.append(total)
        assert expected_runtime_with_cutoff(dist, cutoff) == pytest.approx(
            np.mean(totals), rel=0.05
        )

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            expected_runtime_with_cutoff(ShiftedExponential(x0=0.0, lam=1.0), 0.0)


class TestOptimalCutoff:
    def test_heavy_tail_benefits_from_restarts(self):
        """Pareto with infinite mean: restarting makes the expectation finite."""
        dist = ParetoRuntime(x_m=1.0, alpha=0.8)
        cutoff, value = optimal_cutoff(dist)
        assert math.isfinite(value)
        assert value < 1e6
        assert cutoff > dist.x_m

    def test_light_tail_prefers_no_restart(self):
        dist = UniformRuntime(low=0.0, high=100.0)
        _cutoff, value = optimal_cutoff(dist)
        # Never-restart expectation is the mean; restarting cannot beat it by much,
        # and the optimiser must not report anything *worse* than the mean.
        assert value <= dist.mean() * 1.01

    def test_lognormal_restart_gain(self):
        """High-variance lognormal: the optimal cutoff clearly beats the mean."""
        dist = LogNormalRuntime(mu=5.0, sigma=2.0, x0=0.0)
        cutoff, value = optimal_cutoff(dist)
        assert value < 0.8 * dist.mean()
        assert cutoff < dist.mean()


class TestLubySequence:
    def test_prefix_matches_reference(self):
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]
        np.testing.assert_array_equal(luby_sequence(15), expected)

    def test_unit_scaling(self):
        np.testing.assert_array_equal(luby_sequence(3, unit=100.0), [100.0, 100.0, 200.0])

    def test_powers_of_two_only(self):
        values = luby_sequence(200)
        assert set(np.unique(values)).issubset({1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0})

    def test_validation(self):
        with pytest.raises(ValueError):
            luby_sequence(0)
        with pytest.raises(ValueError):
            luby_sequence(5, unit=0.0)


class TestRestartVsMultiwalk:
    def test_exponential_multiwalk_and_combination(self):
        dist = ShiftedExponential(x0=0.0, lam=1e-3)
        analysis = restart_vs_multiwalk(dist, 16)
        # Memoryless: restarts give no gain, multi-walk gives exactly 16.
        assert analysis.restart_gain == pytest.approx(1.0, rel=1e-3)
        assert analysis.multiwalk_gain == pytest.approx(16.0, rel=1e-6)
        assert analysis.best_strategy() in {"multiwalk", "restart+multiwalk"}

    def test_heavy_tail_prefers_combination(self):
        dist = LogNormalRuntime(mu=5.0, sigma=2.5, x0=0.0)
        analysis = restart_vs_multiwalk(dist, 8)
        assert analysis.combined_gain > analysis.multiwalk_gain
        assert analysis.combined_gain > analysis.restart_gain
        assert analysis.best_strategy() == "restart+multiwalk"

    def test_validation(self):
        with pytest.raises(ValueError):
            restart_vs_multiwalk(ShiftedExponential(x0=0.0, lam=1.0), 0)
