"""High-level prediction API: observations in, speed-up curve out."""


import numpy as np
import pytest

from repro.core.distributions import LogNormalRuntime, ShiftedExponential
from repro.core.prediction import (
    PredictionResult,
    predict_speedup_curve,
    predict_speedup_empirical,
    predict_speedup_from_distribution,
)


class TestPredictFromDistribution:
    def test_exponential_known_values(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        result = predict_speedup_from_distribution(dist, cores=[16, 256])
        assert result.family == "shifted_exponential"
        assert result.fit is None
        assert result.speedup(16) == pytest.approx(1100.0 / (100.0 + 1000.0 / 16))
        assert result.limit == pytest.approx(11.0)

    def test_speedup_for_unlisted_core_count_computed_on_demand(self):
        dist = ShiftedExponential(x0=0.0, lam=1.0)
        result = predict_speedup_from_distribution(dist, cores=[4])
        assert result.speedup(10) == pytest.approx(10.0)


class TestPredictFromObservations:
    def test_forced_family_matches_manual_pipeline(self, rng):
        data = ShiftedExponential(x0=2000.0, lam=5e-5).sample(rng, 500)
        result = predict_speedup_curve(data, cores=[16, 64, 256], family="shifted_exponential",
                                       shift_rule="min")
        assert isinstance(result, PredictionResult)
        assert result.family == "shifted_exponential"
        x0 = float(np.min(data))
        lam = 1.0 / (float(np.mean(data)) - x0)
        manual = ShiftedExponential(x0=x0, lam=lam)
        for n in (16, 64, 256):
            assert result.speedup(n) == pytest.approx(manual.speedup(n), rel=1e-9)

    def test_automatic_selection_accepts_good_fit(self, rng):
        data = LogNormalRuntime(mu=9.0, sigma=1.2, x0=0.0).sample(rng, 600)
        result = predict_speedup_curve(data, cores=[16, 256])
        assert result.fit is not None
        assert result.fit.accepted()
        assert result.speedup(256) > result.speedup(16) > 1.0

    def test_prediction_close_to_true_model(self, rng):
        """Fitting a sample from a known model recovers its speed-up within a few percent."""
        true = ShiftedExponential(x0=1000.0, lam=1e-4)
        data = true.sample(rng, 2000)
        result = predict_speedup_curve(data, cores=[16, 64, 256], family="shifted_exponential",
                                       shift_rule="min")
        for n in (16, 64, 256):
            assert result.speedup(n) == pytest.approx(true.speedup(n), rel=0.1)

    def test_summary_mentions_family_and_cores(self, rng):
        data = ShiftedExponential(x0=0.0, lam=0.01).sample(rng, 100)
        result = predict_speedup_curve(data, cores=[8, 32])
        text = result.summary()
        assert "family" in text
        assert "32" in text

    def test_speedups_property(self, rng):
        data = ShiftedExponential(x0=0.0, lam=0.01).sample(rng, 100)
        result = predict_speedup_curve(data, cores=[8, 32], family="shifted_exponential")
        assert set(result.speedups.keys()) == {8, 32}


class TestEmpiricalPrediction:
    def test_empirical_matches_block_minimum_expectation(self, rng):
        data = rng.lognormal(4.0, 1.0, size=300)
        result = predict_speedup_empirical(data, cores=[2, 16])
        assert result.family == "empirical"
        assert result.fit is None
        # Exact check against the order-statistics formula for n = 2.
        sorted_data = np.sort(data)
        m = sorted_data.size
        weights = ((np.arange(m, 0, -1) / m) ** 2) - ((np.arange(m - 1, -1, -1) / m) ** 2)
        expected_min = float(np.dot(sorted_data, weights))
        assert result.speedup(2) == pytest.approx(data.mean() / expected_min)

    def test_empirical_and_parametric_agree_for_large_exponential_sample(self, rng):
        data = ShiftedExponential(x0=0.0, lam=1e-3).sample(rng, 5000)
        parametric = predict_speedup_curve(data, cores=[16], family="shifted_exponential",
                                           shift_rule="zero")
        empirical = predict_speedup_empirical(data, cores=[16])
        assert empirical.speedup(16) == pytest.approx(parametric.speedup(16), rel=0.1)

    def test_empirical_limit_is_mean_over_minimum(self, rng):
        data = np.array([10.0, 30.0, 50.0])
        result = predict_speedup_empirical(data, cores=[4])
        assert result.limit == pytest.approx(30.0 / 10.0)
