"""Per-family parameter estimators recover known parameters from samples."""

import numpy as np
import pytest

from repro.core.distributions import (
    GammaRuntime,
    LogNormalRuntime,
    ParetoRuntime,
    ShiftedExponential,
    TruncatedGaussian,
    UniformRuntime,
    WeibullRuntime,
)
from repro.core.fitting.estimators import ESTIMATORS, estimate_parameters


class TestDispatch:
    def test_every_registered_family_has_an_estimator(self):
        data = np.linspace(10.0, 100.0, 50)
        for family in ESTIMATORS:
            dist = estimate_parameters(data, family, x0=10.0)
            assert dist.mean() > 0.0

    def test_unknown_family_raises(self):
        with pytest.raises(KeyError):
            estimate_parameters(np.array([1.0, 2.0]), "no-such-family", x0=0.0)

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            estimate_parameters(np.array([1.0]), "shifted_exponential", x0=0.0)


class TestShiftedExponentialEstimator:
    def test_paper_rule(self):
        """lambda = 1/(mean - x0) — the exact rule in Section 6.1."""
        data = np.array([1217.0, 50_000.0, 150_000.0, 240_000.0])
        dist = estimate_parameters(data, "shifted_exponential", x0=1217.0)
        assert isinstance(dist, ShiftedExponential)
        assert dist.lam == pytest.approx(1.0 / (data.mean() - 1217.0))

    def test_recovers_parameters_from_large_sample(self, rng):
        true = ShiftedExponential(x0=1000.0, lam=1e-4)
        data = true.sample(rng, 4000)
        fitted = estimate_parameters(data, "shifted_exponential", x0=float(data.min()))
        assert fitted.lam == pytest.approx(true.lam, rel=0.05)


class TestLognormalEstimator:
    def test_recovers_parameters(self, rng):
        true = LogNormalRuntime(mu=12.0, sigma=1.3, x0=6000.0)
        data = true.sample(rng, 4000)
        fitted = estimate_parameters(data, "shifted_lognormal", x0=float(data.min()))
        assert isinstance(fitted, LogNormalRuntime)
        assert fitted.mu == pytest.approx(12.0, rel=0.02)
        assert fitted.sigma == pytest.approx(1.3, rel=0.08)

    def test_handles_minimum_observation_on_boundary(self):
        """Shifting by the minimum puts one point at zero excess; the estimator drops it."""
        data = np.array([100.0, 150.0, 230.0, 500.0, 900.0])
        fitted = estimate_parameters(data, "shifted_lognormal", x0=100.0)
        assert np.isfinite(fitted.mu)
        assert fitted.sigma > 0.0


class TestGaussianEstimator:
    def test_moment_matching(self, rng):
        data = rng.normal(50.0, 5.0, size=3000)
        data = data[data > 0]
        fitted = estimate_parameters(data, "truncated_gaussian", x0=0.0)
        assert isinstance(fitted, TruncatedGaussian)
        assert fitted.mu == pytest.approx(50.0, rel=0.05)
        assert fitted.sigma == pytest.approx(5.0, rel=0.1)


class TestGammaEstimator:
    def test_method_of_moments(self, rng):
        true = GammaRuntime(shape=3.0, scale=20.0, x0=0.0)
        data = true.sample(rng, 5000)
        fitted = estimate_parameters(data, "shifted_gamma", x0=0.0)
        assert isinstance(fitted, GammaRuntime)
        assert fitted.shape == pytest.approx(3.0, rel=0.15)
        assert fitted.scale == pytest.approx(20.0, rel=0.15)


class TestWeibullEstimator:
    @pytest.mark.parametrize("shape", [0.7, 1.0, 2.5])
    def test_recovers_shape(self, rng, shape):
        true = WeibullRuntime(shape=shape, scale=100.0, x0=0.0)
        data = true.sample(rng, 6000)
        fitted = estimate_parameters(data, "shifted_weibull", x0=0.0)
        assert isinstance(fitted, WeibullRuntime)
        assert fitted.shape == pytest.approx(shape, rel=0.15)
        assert fitted.mean() == pytest.approx(true.mean(), rel=0.05)

    def test_degenerate_sample_falls_back_to_exponential_shape(self):
        data = np.array([10.0, 10.0, 10.0])
        fitted = estimate_parameters(data, "shifted_weibull", x0=0.0)
        assert fitted.shape == pytest.approx(1.0)


class TestParetoAndUniformEstimators:
    def test_pareto_mle(self, rng):
        true = ParetoRuntime(x_m=5.0, alpha=2.5)
        data = true.sample(rng, 5000)
        fitted = estimate_parameters(data, "pareto", x0=0.0)
        assert isinstance(fitted, ParetoRuntime)
        assert fitted.x_m == pytest.approx(5.0, rel=0.01)
        assert fitted.alpha == pytest.approx(2.5, rel=0.1)

    def test_uniform_range_fit(self):
        data = np.array([2.0, 9.0, 5.0, 7.5])
        fitted = estimate_parameters(data, "uniform", x0=0.0)
        assert isinstance(fitted, UniformRuntime)
        assert fitted.low == 2.0
        assert fitted.high == 9.0

    def test_uniform_degenerate_sample(self):
        fitted = estimate_parameters(np.array([4.0, 4.0]), "uniform", x0=0.0)
        assert fitted.high > fitted.low
