"""Quorum (k-th finisher) speed-up model."""

import numpy as np
import pytest

from repro.core.distributions import LogNormalRuntime, ShiftedExponential, UniformRuntime
from repro.core.quorum import QuorumSpeedupModel


class TestQuorumExpectations:
    def test_quorum_one_matches_min_model(self):
        dist = LogNormalRuntime(mu=4.0, sigma=1.0, x0=0.0)
        model = QuorumSpeedupModel(dist, quorum=1)
        for n in (1, 8, 64):
            assert model.expected_kth_finisher(n) == pytest.approx(dist.expected_minimum(n))

    def test_exponential_renyi_closed_form(self):
        """E[X_(k:n)] = x0 + (1/lambda) * (1/n + ... + 1/(n-k+1)) for exponentials."""
        dist = ShiftedExponential(x0=50.0, lam=0.01)
        model = QuorumSpeedupModel(dist, quorum=3)
        n = 10
        expected = 50.0 + (1 / 0.01) * (1 / 10 + 1 / 9 + 1 / 8)
        assert model.expected_kth_finisher(n) == pytest.approx(expected, rel=1e-9)

    def test_uniform_order_statistic(self):
        """E[X_(k:n)] = k/(n+1) for Uniform(0, 1)."""
        dist = UniformRuntime(low=0.0, high=1.0)
        model = QuorumSpeedupModel(dist, quorum=2)
        assert model.expected_kth_finisher(5) == pytest.approx(2.0 / 6.0, rel=1e-6)

    def test_monte_carlo_agreement(self, rng):
        dist = LogNormalRuntime(mu=3.0, sigma=1.0, x0=0.0)
        model = QuorumSpeedupModel(dist, quorum=4)
        n = 12
        draws = np.sort(dist.sample(rng, (20000, n)), axis=1)[:, 3]
        assert model.expected_kth_finisher(n) == pytest.approx(draws.mean(), rel=0.03)

    def test_needs_at_least_quorum_walks(self):
        model = QuorumSpeedupModel(ShiftedExponential(x0=0.0, lam=1.0), quorum=4)
        with pytest.raises(ValueError):
            model.expected_kth_finisher(3)

    def test_quorum_validation(self):
        with pytest.raises(ValueError):
            QuorumSpeedupModel(ShiftedExponential(x0=0.0, lam=1.0), quorum=0)


class TestQuorumSpeedups:
    def test_exponential_quorum_speedup_still_scales(self):
        dist = ShiftedExponential(x0=0.0, lam=1e-3)
        model = QuorumSpeedupModel(dist, quorum=4)
        curve = model.curve([4, 16, 64, 256])
        speedups = list(curve.speedups)
        assert all(b > a for a, b in zip(speedups, speedups[1:]))
        # Waiting for 4 finishers out of 4 walks is slower than sequential-per-solution
        # only by the max/mean factor; with many more walks it approaches k*n-ish gains.
        assert model.speedup(256) > model.speedup(4)

    def test_larger_quorum_needs_more_cores_for_same_speedup(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        single = QuorumSpeedupModel(dist, quorum=1).speedup(32)
        quorum4 = QuorumSpeedupModel(dist, quorum=4).speedup(32)
        assert quorum4 < single * 4  # sanity: not a free lunch

    def test_overhead_vs_first_finisher(self):
        dist = LogNormalRuntime(mu=4.0, sigma=1.2, x0=0.0)
        model = QuorumSpeedupModel(dist, quorum=3)
        overhead = model.overhead_vs_first_finisher(16)
        assert overhead > 1.0

    def test_curve_requires_core_counts(self):
        model = QuorumSpeedupModel(ShiftedExponential(x0=0.0, lam=1.0), quorum=2)
        with pytest.raises(ValueError):
            model.curve([])
