"""Distribution registry."""

import numpy as np
import pytest

from repro.core.distributions import ShiftedExponential, distribution_registry
from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.registry import get_distribution_class, register_distribution


class TestRegistryLookups:
    def test_builtin_families_present(self):
        for name in (
            "shifted_exponential",
            "shifted_lognormal",
            "truncated_gaussian",
            "shifted_gamma",
            "shifted_weibull",
            "pareto",
            "uniform",
        ):
            assert name in distribution_registry

    def test_get_class_round_trip(self):
        assert get_distribution_class("shifted_exponential") is ShiftedExponential

    def test_unknown_family_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="shifted_exponential"):
            get_distribution_class("nope")

    def test_names_match_classes(self):
        for name, cls in distribution_registry.items():
            assert cls.name == name


class TestRegisterDistribution:
    def test_register_custom_family(self):
        class Constant(RuntimeDistribution):
            name = "constant-for-test"

            def __init__(self, value: float = 1.0) -> None:
                self.value = value

            def pdf(self, t):
                return np.zeros_like(np.asarray(t, dtype=float))

            def cdf(self, t):
                return (np.asarray(t, dtype=float) >= self.value).astype(float)

            def mean(self):
                return self.value

            def sample(self, rng, size=None):
                return np.full(size if size is not None else (), self.value)

            def params(self):
                return {"value": self.value}

        try:
            register_distribution(Constant)
            assert get_distribution_class("constant-for-test") is Constant
        finally:
            distribution_registry.pop("constant-for-test", None)

    def test_rejects_non_distribution(self):
        with pytest.raises(TypeError):
            register_distribution(object)  # type: ignore[arg-type]

    def test_rejects_missing_name(self):
        class Nameless(RuntimeDistribution):
            name = "abstract"

            def pdf(self, t):  # pragma: no cover - never called
                return t

            def cdf(self, t):  # pragma: no cover
                return t

            def mean(self):  # pragma: no cover
                return 0.0

            def sample(self, rng, size=None):  # pragma: no cover
                return 0.0

            def params(self):  # pragma: no cover
                return {}

        with pytest.raises(ValueError):
            register_distribution(Nameless)


class TestDistributionEquality:
    def test_equality_and_hash(self):
        a = ShiftedExponential(x0=1.0, lam=2.0)
        b = ShiftedExponential(x0=1.0, lam=2.0)
        c = ShiftedExponential(x0=1.0, lam=3.0)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c
        assert a != "not a distribution"
