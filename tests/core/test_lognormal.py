"""Shifted lognormal distribution (Section 3.4)."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.distributions import LogNormalRuntime


class TestConstruction:
    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            LogNormalRuntime(mu=1.0, sigma=0.0)

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            LogNormalRuntime(mu=1.0, sigma=1.0, x0=-5.0)

    def test_rejects_non_finite_mu(self):
        with pytest.raises(ValueError):
            LogNormalRuntime(mu=math.nan, sigma=1.0)

    def test_support_starts_at_shift(self):
        dist = LogNormalRuntime(mu=2.0, sigma=0.5, x0=30.0)
        assert dist.support() == (30.0, math.inf)


class TestAgainstScipy:
    """Cross-check pdf/cdf/moments against scipy.stats.lognorm."""

    @pytest.fixture
    def params(self):
        return dict(mu=5.0, sigma=1.0, x0=100.0)

    def test_pdf_matches_scipy(self, params):
        ours = LogNormalRuntime(**params)
        reference = stats.lognorm(s=params["sigma"], scale=math.exp(params["mu"]), loc=params["x0"])
        grid = np.linspace(101.0, 2000.0, 50)
        np.testing.assert_allclose(ours.pdf(grid), reference.pdf(grid), rtol=1e-10)

    def test_cdf_matches_scipy(self, params):
        ours = LogNormalRuntime(**params)
        reference = stats.lognorm(s=params["sigma"], scale=math.exp(params["mu"]), loc=params["x0"])
        grid = np.linspace(90.0, 3000.0, 60)
        np.testing.assert_allclose(ours.cdf(grid), reference.cdf(grid), atol=1e-12)

    def test_mean_and_variance_match_scipy(self, params):
        ours = LogNormalRuntime(**params)
        reference = stats.lognorm(s=params["sigma"], scale=math.exp(params["mu"]), loc=params["x0"])
        assert ours.mean() == pytest.approx(reference.mean())
        assert ours.variance() == pytest.approx(reference.var())

    def test_quantile_matches_scipy(self, params):
        ours = LogNormalRuntime(**params)
        reference = stats.lognorm(s=params["sigma"], scale=math.exp(params["mu"]), loc=params["x0"])
        for q in (0.01, 0.25, 0.5, 0.9, 0.999):
            assert ours.quantile(q) == pytest.approx(reference.ppf(q), rel=1e-9)


class TestBehaviour:
    def test_pdf_zero_at_or_below_shift(self):
        dist = LogNormalRuntime(mu=1.0, sigma=1.0, x0=10.0)
        assert dist.pdf(10.0) == 0.0
        assert dist.pdf(5.0) == 0.0
        assert dist.cdf(10.0) == 0.0

    def test_median_is_shift_plus_exp_mu(self):
        dist = LogNormalRuntime(mu=3.0, sigma=0.7, x0=20.0)
        assert dist.median() == pytest.approx(20.0 + math.exp(3.0))

    def test_sampling_statistics(self, rng):
        dist = LogNormalRuntime(mu=2.0, sigma=0.5, x0=50.0)
        draws = dist.sample(rng, 40000)
        assert draws.min() > 50.0
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.03)
        assert np.median(draws) == pytest.approx(dist.median(), rel=0.03)

    def test_expected_minimum_decreases_with_cores(self):
        dist = LogNormalRuntime(mu=5.0, sigma=1.0, x0=0.0)
        values = [dist.expected_minimum(n) for n in (1, 2, 4, 16, 64, 256)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_expected_minimum_against_monte_carlo(self, rng):
        dist = LogNormalRuntime(mu=5.0, sigma=1.0, x0=0.0)
        n = 8
        draws = dist.sample(rng, (20000, n)).min(axis=1)
        assert dist.expected_minimum(n) == pytest.approx(np.mean(draws), rel=0.03)

    def test_paper_figure5_speedup_magnitude(self):
        """Figure 5: mu=5, sigma=1, x0=0 reaches a speed-up of ~25 at 256 cores."""
        dist = LogNormalRuntime(mu=5.0, sigma=1.0, x0=0.0)
        speedup_256 = dist.speedup(256)
        assert 20.0 < speedup_256 < 32.0

    def test_speedup_limit_finite_only_with_shift(self):
        assert math.isinf(LogNormalRuntime(mu=5.0, sigma=1.0, x0=0.0).speedup_limit())
        shifted = LogNormalRuntime(mu=5.0, sigma=1.0, x0=200.0)
        assert shifted.speedup_limit() == pytest.approx(shifted.mean() / 200.0)

    def test_log_pdf_consistent_with_pdf(self):
        dist = LogNormalRuntime(mu=1.5, sigma=0.8, x0=5.0)
        grid = np.linspace(6.0, 100.0, 25)
        np.testing.assert_allclose(np.exp(dist.log_pdf(grid)), dist.pdf(grid), rtol=1e-10)
