"""Property-based tests (hypothesis) on the core probabilistic invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.distributions import (
    EmpiricalDistribution,
    GammaRuntime,
    LogNormalRuntime,
    ParetoRuntime,
    ShiftedExponential,
    TruncatedGaussian,
    UniformRuntime,
    WeibullRuntime,
)
from repro.core.fitting.ks import kolmogorov_pvalue, kolmogorov_smirnov_statistic
from repro.core.minimum import MinDistribution
from repro.core.speedup import SpeedupModel

# Moderate parameter ranges keep the numerics well-conditioned while still
# exploring several orders of magnitude.
_shifts = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)
_rates = st.floats(min_value=1e-6, max_value=10.0, allow_nan=False, allow_infinity=False)
_sigmas = st.floats(min_value=0.05, max_value=2.5, allow_nan=False, allow_infinity=False)
_mus = st.floats(min_value=-2.0, max_value=12.0, allow_nan=False, allow_infinity=False)
_shapes = st.floats(min_value=0.3, max_value=5.0, allow_nan=False, allow_infinity=False)
_scales = st.floats(min_value=0.1, max_value=1e4, allow_nan=False, allow_infinity=False)
_cores = st.integers(min_value=1, max_value=512)


@st.composite
def runtime_distributions(draw):
    """A random distribution drawn from every implemented family."""
    family = draw(st.sampled_from(["exp", "lognormal", "gaussian", "gamma", "weibull", "pareto", "uniform"]))
    if family == "exp":
        return ShiftedExponential(x0=draw(_shifts), lam=draw(_rates))
    if family == "lognormal":
        return LogNormalRuntime(mu=draw(_mus), sigma=draw(_sigmas), x0=draw(_shifts))
    if family == "gaussian":
        return TruncatedGaussian(mu=draw(st.floats(min_value=-5.0, max_value=100.0)), sigma=draw(
            st.floats(min_value=0.5, max_value=50.0)), lower=0.0)
    if family == "gamma":
        return GammaRuntime(shape=draw(_shapes), scale=draw(_scales), x0=draw(_shifts))
    if family == "weibull":
        return WeibullRuntime(shape=draw(_shapes), scale=draw(_scales), x0=draw(_shifts))
    if family == "pareto":
        return ParetoRuntime(x_m=draw(st.floats(min_value=0.1, max_value=100.0)), alpha=draw(
            st.floats(min_value=1.1, max_value=6.0)))
    low = draw(_shifts)
    return UniformRuntime(low=low, high=low + draw(st.floats(min_value=0.5, max_value=1e4)))


class TestDistributionInvariants:
    @given(dist=runtime_distributions())
    @settings(max_examples=60, deadline=None)
    def test_cdf_is_monotone_and_bounded(self, dist):
        low, high = dist.support()
        upper = high if math.isfinite(high) else dist.quantile(0.999)
        grid = np.linspace(low, max(upper, low + 1.0), 64)
        cdf = np.asarray(dist.cdf(grid), dtype=float)
        assert np.all(cdf >= -1e-12) and np.all(cdf <= 1.0 + 1e-12)
        assert np.all(np.diff(cdf) >= -1e-9)

    @given(dist=runtime_distributions())
    @settings(max_examples=60, deadline=None)
    def test_pdf_is_non_negative(self, dist):
        low, _ = dist.support()
        grid = np.linspace(max(low - 10.0, -5.0), dist.quantile(0.99) + 1.0, 64)
        assert np.all(np.asarray(dist.pdf(grid), dtype=float) >= -1e-12)

    @given(dist=runtime_distributions(), q=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=60, deadline=None)
    def test_quantile_inverts_cdf(self, dist, q):
        t = dist.quantile(q)
        assert float(dist.cdf(t)) == pytest.approx(q, abs=5e-4)

    @given(dist=runtime_distributions())
    @settings(max_examples=40, deadline=None)
    def test_mean_is_within_support(self, dist):
        mean = dist.mean()
        if not math.isfinite(mean):
            return
        low, high = dist.support()
        assert mean >= low - 1e-9
        if math.isfinite(high):
            assert mean <= high + 1e-9


class TestMinimumInvariants:
    @given(dist=runtime_distributions(), n=_cores)
    @settings(max_examples=60, deadline=None)
    def test_expected_minimum_never_exceeds_mean(self, dist, n):
        if not math.isfinite(dist.mean()):
            return
        expected_min = dist.expected_minimum(n)
        assert expected_min <= dist.mean() + 1e-6 * max(abs(dist.mean()), 1.0)
        assert expected_min >= dist.support()[0] - 1e-9

    @given(dist=runtime_distributions())
    @settings(max_examples=30, deadline=None)
    def test_expected_minimum_monotone_in_cores(self, dist):
        if not math.isfinite(dist.mean()):
            return
        values = [dist.expected_minimum(n) for n in (1, 2, 8, 64, 256)]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-6 * max(abs(a), 1.0)

    @given(dist=runtime_distributions(), n=_cores)
    @settings(max_examples=60, deadline=None)
    def test_min_cdf_dominates_base_cdf(self, dist, n):
        """Z(n) is stochastically smaller than Y: F_Z >= F_Y everywhere."""
        min_dist = MinDistribution(dist, n)
        grid = np.linspace(dist.support()[0], dist.quantile(0.99), 32)
        assert np.all(np.asarray(min_dist.cdf(grid)) >= np.asarray(dist.cdf(grid)) - 1e-12)

    @given(dist=runtime_distributions(), n=_cores)
    @settings(max_examples=40, deadline=None)
    def test_speedup_at_least_one_and_monotone(self, dist, n):
        if not math.isfinite(dist.mean()):
            return
        model = SpeedupModel(dist)
        g_n = model.speedup(n)
        assert g_n >= 1.0 - 1e-9
        assert model.speedup(2 * n) >= g_n - 1e-6 * max(g_n, 1.0)


class TestEmpiricalInvariants:
    @given(
        data=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=1,
            max_size=60,
        ),
        n=st.integers(min_value=1, max_value=128),
    )
    @settings(max_examples=80, deadline=None)
    def test_empirical_expected_minimum_bounds(self, data, n):
        dist = EmpiricalDistribution(data)
        value = dist.expected_minimum(n)
        assert min(data) - 1e-9 <= value <= max(data) + 1e-9
        assert value <= dist.mean() + 1e-9

    @given(
        data=st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_empirical_cdf_hits_zero_and_one(self, data):
        dist = EmpiricalDistribution(data)
        assert float(dist.cdf(min(data) - 1.0)) == 0.0
        assert float(dist.cdf(max(data))) == 1.0


class TestKSInvariants:
    @given(
        data=st.lists(
            st.floats(min_value=0.001, max_value=0.999, allow_nan=False),
            min_size=2,
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_statistic_in_unit_interval(self, data):
        statistic = kolmogorov_smirnov_statistic(np.array(data), lambda t: np.clip(t, 0.0, 1.0))
        assert 0.0 <= statistic <= 1.0

    @given(
        statistic=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        m=st.integers(min_value=1, max_value=5000),
    )
    @settings(max_examples=80, deadline=None)
    def test_pvalue_in_unit_interval(self, statistic, m):
        p = kolmogorov_pvalue(statistic, m)
        assert 0.0 <= p <= 1.0
