"""Kolmogorov–Smirnov test implementation, cross-checked against scipy."""

import numpy as np
import pytest
from scipy import stats

from repro.core.distributions import ShiftedExponential, UniformRuntime
from repro.core.fitting.ks import (
    KSTestResult,
    kolmogorov_pvalue,
    kolmogorov_smirnov_statistic,
    ks_test,
)


class TestStatistic:
    def test_matches_scipy_exponential(self, rng):
        dist = ShiftedExponential(x0=0.0, lam=0.01)
        data = dist.sample(rng, 500)
        ours = kolmogorov_smirnov_statistic(data, dist.cdf)
        reference = stats.kstest(data, lambda t: dist.cdf(t)).statistic
        assert ours == pytest.approx(reference, abs=1e-12)

    def test_matches_scipy_uniform(self, rng):
        data = rng.uniform(0.0, 1.0, 300)
        dist = UniformRuntime(low=0.0, high=1.0)
        ours = kolmogorov_smirnov_statistic(data, dist.cdf)
        reference = stats.kstest(data, "uniform").statistic
        assert ours == pytest.approx(reference, abs=1e-12)

    def test_perfect_fit_has_small_statistic(self):
        """Data placed at the theoretical quantiles has D = 1/(2m)."""
        m = 100
        dist = UniformRuntime(low=0.0, high=1.0)
        data = (np.arange(1, m + 1) - 0.5) / m
        assert kolmogorov_smirnov_statistic(data, dist.cdf) == pytest.approx(0.5 / m)

    def test_gross_mismatch_has_large_statistic(self):
        dist = UniformRuntime(low=0.0, high=1.0)
        data = np.full(50, 0.999)
        assert kolmogorov_smirnov_statistic(data, dist.cdf) > 0.9

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            kolmogorov_smirnov_statistic(np.array([]), lambda t: t)


class TestPValue:
    def test_matches_scipy_asymptotic(self, rng):
        dist = ShiftedExponential(x0=0.0, lam=1.0)
        data = dist.sample(rng, 400)
        statistic = kolmogorov_smirnov_statistic(data, dist.cdf)
        ours = kolmogorov_pvalue(statistic, data.size)
        reference = stats.kstest(data, lambda t: dist.cdf(t), method="asymp").pvalue
        assert ours == pytest.approx(reference, abs=0.02)

    def test_zero_statistic_gives_pvalue_one(self):
        assert kolmogorov_pvalue(0.0, 100) == 1.0

    def test_large_statistic_gives_tiny_pvalue(self):
        assert kolmogorov_pvalue(0.5, 200) < 1e-10

    def test_monotone_in_statistic(self):
        p_values = [kolmogorov_pvalue(d, 100) for d in (0.02, 0.05, 0.1, 0.2)]
        assert all(a >= b for a, b in zip(p_values, p_values[1:]))

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ValueError):
            kolmogorov_pvalue(-0.1, 10)
        with pytest.raises(ValueError):
            kolmogorov_pvalue(1.5, 10)
        with pytest.raises(ValueError):
            kolmogorov_pvalue(0.1, 0)


class TestKsTest:
    def test_accepts_correct_model(self, rng):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        data = dist.sample(rng, 600)
        result = ks_test(data, dist)
        assert isinstance(result, KSTestResult)
        assert result.p_value > 0.05
        assert not result.rejects()

    def test_rejects_wrong_model(self, rng):
        data = rng.lognormal(3.0, 1.5, size=600)
        wrong = ShiftedExponential(x0=0.0, lam=1.0 / float(np.mean(data)))
        result = ks_test(data, wrong)
        assert result.rejects()

    def test_accepts_cdf_callable(self, rng):
        data = rng.uniform(size=200)
        result = ks_test(data, lambda t: np.clip(t, 0.0, 1.0))
        assert result.p_value > 0.01

    def test_records_sample_size(self, rng):
        data = rng.uniform(size=123)
        result = ks_test(data, lambda t: np.clip(t, 0.0, 1.0))
        assert result.n_observations == 123

    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            ks_test(np.array([]), lambda t: t)
