"""Property-based tests for the extension modules (quorum, restarts, censoring, scaling laws)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.censoring import IncompleteRunModel, censored_exponential_fit, kaplan_meier
from repro.core.distributions import LogNormalRuntime, ShiftedExponential
from repro.core.quorum import QuorumSpeedupModel
from repro.core.restarts import expected_runtime_with_cutoff, luby_sequence
from repro.scaling.laws import fit_power_law

_shifts = st.floats(min_value=0.0, max_value=1e3, allow_nan=False, allow_infinity=False)
_rates = st.floats(min_value=1e-4, max_value=1.0, allow_nan=False, allow_infinity=False)


class TestQuorumProperties:
    @given(
        x0=_shifts,
        lam=_rates,
        n=st.integers(min_value=1, max_value=128),
        k=st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=80, deadline=None)
    def test_kth_finisher_between_min_and_mean_scaled(self, x0, lam, n, k):
        if k > n:
            return
        dist = ShiftedExponential(x0=x0, lam=lam)
        model = QuorumSpeedupModel(dist, quorum=k)
        value = model.expected_kth_finisher(n)
        assert value >= dist.expected_minimum(n) - 1e-9
        # The k-th smallest of n draws never exceeds the expected maximum,
        # which for the exponential is x0 + H_n / lambda.
        harmonic = sum(1.0 / i for i in range(1, n + 1))
        assert value <= x0 + harmonic / lam + 1e-6

    @given(x0=_shifts, lam=_rates, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_kth_finisher_decreases_with_more_walks(self, x0, lam, k):
        dist = ShiftedExponential(x0=x0, lam=lam)
        model = QuorumSpeedupModel(dist, quorum=k)
        values = [model.expected_kth_finisher(n) for n in (k, 2 * k, 8 * k, 32 * k)]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-9 * max(abs(a), 1.0)


class TestRestartProperties:
    @given(
        mu=st.floats(min_value=0.0, max_value=8.0),
        sigma=st.floats(min_value=0.2, max_value=2.0),
        q=st.floats(min_value=0.05, max_value=0.95),
    )
    @settings(max_examples=50, deadline=None)
    def test_restart_runtime_is_positive_and_finite_inside_support(self, mu, sigma, q):
        dist = LogNormalRuntime(mu=mu, sigma=sigma, x0=0.0)
        cutoff = dist.quantile(q)
        value = expected_runtime_with_cutoff(dist, cutoff)
        assert value > 0.0
        assert math.isfinite(value)
        # Restarting at cutoff c can never finish faster than the conditional
        # mean of runs below c, which is at least the support minimum.
        assert value >= dist.support()[0]

    @given(length=st.integers(min_value=1, max_value=512))
    @settings(max_examples=50, deadline=None)
    def test_luby_terms_are_powers_of_two_and_bounded(self, length):
        seq = luby_sequence(length)
        assert seq.shape == (length,)
        logs = np.log2(seq)
        assert np.allclose(logs, np.round(logs))
        assert seq.max() <= length  # the k-th term never exceeds k


class TestCensoringProperties:
    @given(
        data=st.lists(
            st.floats(min_value=0.1, max_value=1e5, allow_nan=False, allow_infinity=False),
            min_size=3,
            max_size=60,
        ),
        budget_quantile=st.floats(min_value=0.3, max_value=0.95),
    )
    @settings(max_examples=60, deadline=None)
    def test_censored_fit_mean_at_least_naive_mean(self, data, budget_quantile):
        values = np.asarray(data, dtype=float)
        budget = float(np.quantile(values, budget_quantile))
        flags = values > budget
        capped = np.where(flags, budget, values)
        if flags.all():
            return
        fit = censored_exponential_fit(capped, flags)
        naive_mean = capped[~flags].mean()
        # Censored exposure only adds runtime mass, never removes it.
        assert fit.mean() >= naive_mean - 1e-6 * max(naive_mean, 1.0)

    @given(
        data=st.lists(
            st.floats(min_value=0.1, max_value=1e4, allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=50,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_kaplan_meier_is_a_decreasing_survival_function(self, data):
        values = np.asarray(data, dtype=float)
        flags = np.zeros(values.size, dtype=bool)
        flags[::3] = True  # censor every third run
        if flags.all() or (~flags).sum() == 0:
            return
        km = kaplan_meier(values, flags)
        assert np.all(np.diff(km.survival) <= 1e-12)
        assert np.all((km.survival >= -1e-12) & (km.survival <= 1.0 + 1e-12))

    @given(
        p=st.floats(min_value=0.001, max_value=0.999),
        n=st.integers(min_value=1, max_value=512),
    )
    @settings(max_examples=80, deadline=None)
    def test_multiwalk_success_probability_bounds(self, p, n):
        model = IncompleteRunModel(success_probability=p, mean_success_cost=1.0, budget=2.0)
        prob = model.multiwalk_success_probability(n)
        assert p - 1e-12 <= prob <= 1.0
        assert model.multiwalk_success_probability(n + 1) >= prob - 1e-12


class TestPowerLawProperties:
    @given(
        coefficient=st.floats(min_value=0.01, max_value=100.0),
        exponent=st.floats(min_value=-2.0, max_value=4.0),
        sizes=st.lists(st.integers(min_value=2, max_value=500), min_size=3, max_size=8, unique=True),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_laws_are_recovered(self, coefficient, exponent, sizes):
        sizes = np.asarray(sorted(sizes), dtype=float)
        values = coefficient * sizes**exponent
        fit = fit_power_law(sizes, values)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)
        assert fit.coefficient == pytest.approx(coefficient, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0, abs=1e-9)
