"""Shifted exponential distribution: closed forms from Section 3.3."""

import math

import numpy as np
import pytest

from repro.core.distributions import ShiftedExponential
from repro.core.order_stats import expected_minimum


class TestConstruction:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            ShiftedExponential(x0=0.0, lam=0.0)
        with pytest.raises(ValueError):
            ShiftedExponential(x0=0.0, lam=-1.0)

    def test_rejects_negative_shift(self):
        with pytest.raises(ValueError):
            ShiftedExponential(x0=-1.0, lam=1.0)

    def test_rejects_non_finite_parameters(self):
        with pytest.raises(ValueError):
            ShiftedExponential(x0=math.inf, lam=1.0)
        with pytest.raises(ValueError):
            ShiftedExponential(x0=0.0, lam=math.nan)

    def test_from_scale(self):
        dist = ShiftedExponential.from_scale(x0=10.0, scale=50.0)
        assert dist.lam == pytest.approx(0.02)
        with pytest.raises(ValueError):
            ShiftedExponential.from_scale(x0=0.0, scale=0.0)

    def test_params_and_support(self):
        dist = ShiftedExponential(x0=100.0, lam=0.001)
        assert dist.params() == {"x0": 100.0, "lam": 0.001}
        assert dist.support() == (100.0, math.inf)


class TestDensityAndCdf:
    def test_pdf_zero_below_shift(self):
        dist = ShiftedExponential(x0=100.0, lam=0.01)
        assert dist.pdf(50.0) == 0.0
        assert dist.cdf(50.0) == 0.0
        assert dist.sf(50.0) == 1.0

    def test_pdf_value_at_shift(self):
        dist = ShiftedExponential(x0=100.0, lam=0.01)
        assert dist.pdf(100.0) == pytest.approx(0.01)

    def test_cdf_matches_formula(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        t = 600.0
        assert dist.cdf(t) == pytest.approx(1.0 - math.exp(-1e-3 * 500.0))

    def test_pdf_integrates_to_one(self):
        dist = ShiftedExponential(x0=5.0, lam=0.5)
        grid = np.linspace(5.0, 60.0, 20001)
        mass = np.trapezoid(dist.pdf(grid), grid)
        assert mass == pytest.approx(1.0, abs=1e-6)

    def test_vectorised_output_shape(self):
        dist = ShiftedExponential(x0=1.0, lam=1.0)
        values = dist.pdf(np.array([0.0, 1.0, 2.0]))
        assert values.shape == (3,)
        assert isinstance(dist.pdf(2.0), float)


class TestMoments:
    def test_mean_formula(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        assert dist.mean() == pytest.approx(1100.0)

    def test_variance_is_scale_squared(self):
        dist = ShiftedExponential(x0=100.0, lam=0.25)
        assert dist.variance() == pytest.approx(16.0)

    def test_median_and_quantile(self):
        dist = ShiftedExponential(x0=10.0, lam=0.1)
        assert dist.median() == pytest.approx(10.0 + math.log(2) / 0.1)
        assert dist.quantile(0.0) == 10.0
        assert dist.quantile(1.0) == math.inf
        assert dist.cdf(dist.quantile(0.73)) == pytest.approx(0.73)

    def test_sample_statistics(self, rng):
        dist = ShiftedExponential(x0=100.0, lam=1e-2)
        draws = dist.sample(rng, 20000)
        assert draws.min() >= 100.0
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.03)


class TestMultiwalkClosedForms:
    def test_expected_minimum_formula(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        assert dist.expected_minimum(1) == pytest.approx(1100.0)
        assert dist.expected_minimum(16) == pytest.approx(100.0 + 1000.0 / 16)

    def test_expected_minimum_matches_numeric_integration(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        for n in (1, 2, 10, 64, 256):
            assert dist.expected_minimum(n) == pytest.approx(expected_minimum(dist, n), rel=1e-8)

    def test_speedup_formula_paper_section_3_3(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        n = 64
        expected = (100.0 + 1000.0) / (100.0 + 1000.0 / n)
        assert dist.speedup(n) == pytest.approx(expected)

    def test_speedup_limit(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        assert dist.speedup_limit() == pytest.approx(1.0 + 1.0 / (100.0 * 1e-3))

    def test_zero_shift_gives_linear_speedup(self):
        dist = ShiftedExponential(x0=0.0, lam=1e-3)
        for n in (1, 7, 128):
            assert dist.speedup(n) == pytest.approx(float(n))
        assert math.isinf(dist.speedup_limit())

    def test_tangent_at_origin(self):
        dist = ShiftedExponential(x0=100.0, lam=1e-3)
        assert dist.speedup_tangent_at_origin() == pytest.approx(1.1)

    def test_expected_minimum_rejects_bad_core_count(self):
        dist = ShiftedExponential(x0=0.0, lam=1.0)
        with pytest.raises(ValueError):
            dist.expected_minimum(0)

    def test_min_of_matches_rescaled_exponential(self, rng):
        dist = ShiftedExponential(x0=50.0, lam=0.02)
        n = 8
        min_dist = dist.min_of(n)
        equivalent = ShiftedExponential(x0=50.0, lam=0.02 * n)
        grid = np.linspace(50.0, 400.0, 50)
        np.testing.assert_allclose(min_dist.cdf(grid), equivalent.cdf(grid), atol=1e-12)
