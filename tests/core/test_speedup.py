"""SpeedupModel and SpeedupCurve."""


import pytest

from repro.core.distributions import (
    EmpiricalDistribution,
    LogNormalRuntime,
    ShiftedExponential,
)
from repro.core.speedup import SpeedupCurve, SpeedupModel


@pytest.fixture
def exponential_model():
    return SpeedupModel(ShiftedExponential(x0=100.0, lam=1e-3))


class TestSpeedupCurve:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SpeedupCurve(cores=(1, 2), speedups=(1.0,), expected_runtimes=(1.0, 2.0))

    def test_as_dict_and_iteration(self):
        curve = SpeedupCurve(cores=(1, 2), speedups=(1.0, 1.8), expected_runtimes=(10.0, 5.5))
        assert curve.as_dict() == {1: 1.0, 2: 1.8}
        assert list(curve) == [(1, 1.0), (2, 1.8)]
        assert len(curve) == 2

    def test_efficiency(self):
        curve = SpeedupCurve(cores=(2, 4), speedups=(1.6, 2.4), expected_runtimes=(1.0, 1.0))
        assert curve.efficiency() == pytest.approx((0.8, 0.6))


class TestSpeedupModel:
    def test_speedup_at_one_core_is_one(self, exponential_model):
        assert exponential_model.speedup(1) == pytest.approx(1.0)

    def test_paper_figure3_values(self, exponential_model):
        """x0=100, lambda=1/1000: limit 11, G_256 close to (but below) it."""
        assert exponential_model.limit() == pytest.approx(11.0)
        g256 = exponential_model.speedup(256)
        assert 10.0 < g256 < 11.0

    def test_curve_monotone_increasing(self, exponential_model):
        curve = exponential_model.curve([1, 2, 4, 8, 16, 32, 64, 128, 256])
        speedups = list(curve.speedups)
        assert all(a < b for a, b in zip(speedups, speedups[1:]))

    def test_curve_rejects_empty_or_bad_cores(self, exponential_model):
        with pytest.raises(ValueError):
            exponential_model.curve([])
        with pytest.raises(ValueError):
            exponential_model.curve([0, 4])
        with pytest.raises(ValueError):
            exponential_model.speedup(0)

    def test_tangent_at_origin_exponential(self, exponential_model):
        assert exponential_model.tangent_at_origin() == pytest.approx(1.1)

    def test_tangent_at_origin_generic_family(self):
        model = SpeedupModel(LogNormalRuntime(mu=5.0, sigma=1.0, x0=0.0))
        assert model.tangent_at_origin() == pytest.approx(model.speedup(2) - 1.0)

    def test_cores_for_target_speedup(self, exponential_model):
        needed = exponential_model.cores_for_target_speedup(5.0)
        assert exponential_model.speedup(needed) >= 5.0
        assert exponential_model.speedup(needed - 1) < 5.0

    def test_cores_for_target_above_limit_returns_none(self, exponential_model):
        assert exponential_model.cores_for_target_speedup(12.0) is None

    def test_cores_for_trivial_target(self, exponential_model):
        assert exponential_model.cores_for_target_speedup(1.0) == 1

    def test_linear_scaling_never_saturates(self):
        model = SpeedupModel(ShiftedExponential(x0=0.0, lam=1.0))
        assert model.saturation_cores(0.5, max_cores=1024) is None
        assert model.cores_for_target_speedup(100.0) == 100

    def test_saturation_cores_exponential(self, exponential_model):
        cores = exponential_model.saturation_cores(efficiency_threshold=0.5)
        assert cores is not None
        assert exponential_model.efficiency(cores) >= 0.5
        assert exponential_model.efficiency(cores + 1) < 0.5

    def test_saturation_rejects_bad_threshold(self, exponential_model):
        with pytest.raises(ValueError):
            exponential_model.saturation_cores(0.0)
        with pytest.raises(ValueError):
            exponential_model.saturation_cores(1.5)

    def test_runtime_quantiles_decrease_with_cores(self, exponential_model):
        q_1 = exponential_model.runtime_quantiles(1, [0.5])[0]
        q_64 = exponential_model.runtime_quantiles(64, [0.5])[0]
        assert q_64 < q_1

    def test_works_with_empirical_distribution(self):
        model = SpeedupModel(EmpiricalDistribution([10.0, 20.0, 40.0, 400.0]))
        assert model.speedup(1) == pytest.approx(1.0)
        assert model.speedup(50) > 5.0
        assert model.limit() == pytest.approx(117.5 / 10.0)

    def test_expected_parallel_matches_distribution(self, exponential_model):
        assert exponential_model.expected_parallel(16) == pytest.approx(100.0 + 1000.0 / 16)
        assert exponential_model.expected_sequential() == pytest.approx(1100.0)
