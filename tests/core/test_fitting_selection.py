"""fit_distribution / select_best_fit and the FitResult record."""

import math

import pytest

from repro.core.distributions import LogNormalRuntime, ShiftedExponential
from repro.core.fitting.selection import (
    DEFAULT_CANDIDATES,
    FitResult,
    fit_distribution,
    select_best_fit,
)


class TestFitDistribution:
    def test_fits_paper_ai700_style_data(self, rng):
        """Shifted-exponential data is accepted with a healthy p-value."""
        true = ShiftedExponential(x0=1217.0, lam=9.16e-6)
        data = true.sample(rng, 720)
        fit = fit_distribution(data, "shifted_exponential", shift_rule="min")
        assert fit.accepted()
        assert fit.distribution.params()["x0"] == pytest.approx(float(data.min()))
        assert fit.distribution.params()["lam"] == pytest.approx(true.lam, rel=0.15)

    def test_fits_paper_ms200_style_data(self, rng):
        """Lognormal data is accepted by the lognormal family."""
        true = LogNormalRuntime(mu=12.0275, sigma=1.3398, x0=6210.0)
        data = true.sample(rng, 662)
        fit = fit_distribution(data, "shifted_lognormal", shift_rule="min")
        assert fit.accepted()
        assert fit.distribution.params()["mu"] == pytest.approx(12.0275, rel=0.03)

    def test_wrong_family_is_rejected(self, rng):
        true = LogNormalRuntime(mu=12.0, sigma=1.3, x0=6000.0)
        data = true.sample(rng, 662)
        fit = fit_distribution(data, "truncated_gaussian")
        assert not fit.accepted()

    def test_explicit_shift_is_respected(self, rng):
        data = ShiftedExponential(x0=500.0, lam=1e-3).sample(rng, 200)
        fit = fit_distribution(data, "shifted_exponential", shift=0.0)
        assert fit.distribution.params()["x0"] == 0.0
        assert fit.shift_rule == "explicit"

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            fit_distribution([1.0], "shifted_exponential")

    def test_fit_result_fields(self, rng):
        data = ShiftedExponential(x0=0.0, lam=0.01).sample(rng, 300)
        fit = fit_distribution(data, "shifted_exponential")
        assert isinstance(fit, FitResult)
        assert fit.n_observations == 300
        assert 0.0 <= fit.statistic <= 1.0
        assert 0.0 <= fit.p_value <= 1.0
        assert math.isfinite(fit.aic)
        assert math.isfinite(fit.log_likelihood)
        assert "shifted_exponential" in fit.summary()
        assert set(fit.params()) == {"x0", "lam"}


class TestSelectBestFit:
    def test_selects_lognormal_for_lognormal_data(self, rng):
        data = LogNormalRuntime(mu=8.0, sigma=1.5, x0=0.0).sample(rng, 800)
        best = select_best_fit(data)
        assert best.family in {"shifted_lognormal", "shifted_gamma", "shifted_weibull"}
        assert best.accepted()
        # The lognormal must beat the clearly-wrong gaussian model.
        gaussian = fit_distribution(data, "truncated_gaussian")
        assert best.p_value > gaussian.p_value

    def test_selects_exponential_like_family_for_exponential_data(self, rng):
        data = ShiftedExponential(x0=0.0, lam=1e-3).sample(rng, 800)
        best = select_best_fit(data)
        assert best.family in {"shifted_exponential", "shifted_weibull", "shifted_gamma"}
        assert best.accepted()

    def test_candidate_restriction(self, rng):
        data = ShiftedExponential(x0=0.0, lam=1.0).sample(rng, 200)
        best = select_best_fit(data, candidates=["truncated_gaussian"])
        assert best.family == "truncated_gaussian"

    def test_unknown_candidate_raises(self):
        with pytest.raises(KeyError):
            select_best_fit([1.0, 2.0, 3.0], candidates=["unknown"])

    def test_empty_candidates_raises(self):
        with pytest.raises(ValueError):
            select_best_fit([1.0, 2.0, 3.0], candidates=[])

    def test_default_candidates_cover_paper_families(self):
        assert "shifted_exponential" in DEFAULT_CANDIDATES
        assert "shifted_lognormal" in DEFAULT_CANDIDATES
        assert "truncated_gaussian" in DEFAULT_CANDIDATES
