"""Truncated gaussian, gamma, Weibull, Pareto and uniform families."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.distributions import (
    GammaRuntime,
    ParetoRuntime,
    TruncatedGaussian,
    UniformRuntime,
    WeibullRuntime,
)
from repro.core.order_stats import expected_minimum


class TestTruncatedGaussian:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TruncatedGaussian(mu=0.0, sigma=0.0)
        with pytest.raises(ValueError):
            TruncatedGaussian(mu=0.0, sigma=1.0, lower=math.inf)

    def test_rejects_truncation_removing_all_mass(self):
        with pytest.raises(ValueError):
            TruncatedGaussian(mu=0.0, sigma=1.0, lower=100.0)

    def test_matches_scipy_truncnorm(self):
        mu, sigma, lower = 25.0, 10.0, 0.0
        ours = TruncatedGaussian(mu=mu, sigma=sigma, lower=lower)
        a = (lower - mu) / sigma
        reference = stats.truncnorm(a=a, b=np.inf, loc=mu, scale=sigma)
        grid = np.linspace(0.0, 60.0, 40)
        np.testing.assert_allclose(ours.pdf(grid), reference.pdf(grid), rtol=1e-9)
        np.testing.assert_allclose(ours.cdf(grid), reference.cdf(grid), atol=1e-12)
        assert ours.mean() == pytest.approx(reference.mean())
        assert ours.variance() == pytest.approx(reference.var())

    def test_quantile_round_trip(self):
        dist = TruncatedGaussian(mu=25.0, sigma=10.0, lower=0.0)
        for q in (0.05, 0.5, 0.95):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_sampling_within_support(self, rng):
        dist = TruncatedGaussian(mu=5.0, sigma=10.0, lower=0.0)
        draws = dist.sample(rng, 5000)
        assert draws.min() >= 0.0
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.05)


class TestGamma:
    def test_moments_match_scipy(self):
        ours = GammaRuntime(shape=2.5, scale=30.0, x0=10.0)
        reference = ours.to_scipy()
        assert ours.mean() == pytest.approx(reference.mean())
        assert ours.variance() == pytest.approx(reference.var())
        grid = np.linspace(10.5, 500.0, 40)
        np.testing.assert_allclose(ours.pdf(grid), reference.pdf(grid), rtol=1e-9)
        np.testing.assert_allclose(ours.cdf(grid), reference.cdf(grid), rtol=1e-9)

    def test_shape_one_reduces_to_exponential(self):
        gamma = GammaRuntime(shape=1.0, scale=100.0, x0=0.0)
        for n in (1, 4, 32):
            assert gamma.expected_minimum(n) == pytest.approx(100.0 / n, rel=1e-6)

    def test_quantile_round_trip(self):
        dist = GammaRuntime(shape=3.0, scale=10.0, x0=5.0)
        for q in (0.1, 0.5, 0.99):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GammaRuntime(shape=0.0, scale=1.0)
        with pytest.raises(ValueError):
            GammaRuntime(shape=1.0, scale=-1.0)
        with pytest.raises(ValueError):
            GammaRuntime(shape=1.0, scale=1.0, x0=-2.0)


class TestWeibull:
    def test_shape_one_is_exponential(self):
        weibull = WeibullRuntime(shape=1.0, scale=200.0, x0=50.0)
        assert weibull.mean() == pytest.approx(250.0)
        assert weibull.expected_minimum(10) == pytest.approx(50.0 + 200.0 / 10)

    def test_closed_form_min_matches_numeric(self):
        dist = WeibullRuntime(shape=0.7, scale=500.0, x0=0.0)
        for n in (2, 16, 128):
            assert dist.expected_minimum(n) == pytest.approx(expected_minimum(dist, n), rel=1e-6)

    def test_heavy_tail_gives_superlinear_speedup(self):
        dist = WeibullRuntime(shape=0.5, scale=100.0, x0=0.0)
        assert dist.speedup(16) > 16.0

    def test_cdf_and_quantile_round_trip(self):
        dist = WeibullRuntime(shape=2.0, scale=50.0, x0=10.0)
        for q in (0.2, 0.5, 0.9):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-9)

    def test_moments_match_scipy(self):
        dist = WeibullRuntime(shape=1.7, scale=80.0, x0=0.0)
        reference = stats.weibull_min(c=1.7, scale=80.0)
        assert dist.mean() == pytest.approx(reference.mean())
        assert dist.variance() == pytest.approx(reference.var())


class TestPareto:
    def test_mean_infinite_for_small_alpha(self):
        assert math.isinf(ParetoRuntime(x_m=1.0, alpha=0.9).mean())

    def test_minimum_is_pareto_with_scaled_alpha(self):
        dist = ParetoRuntime(x_m=10.0, alpha=1.5)
        n = 4
        expected = (n * 1.5) * 10.0 / (n * 1.5 - 1.0)
        assert dist.expected_minimum(n) == pytest.approx(expected)
        assert dist.expected_minimum(n) == pytest.approx(expected_minimum(dist, n), rel=1e-6)

    def test_speedup_approaches_mean_over_xm_limit(self):
        dist = ParetoRuntime(x_m=10.0, alpha=1.2)
        # Limit of the speed-up is E[Y]/x_m = alpha/(alpha - 1).
        assert dist.speedup_limit() == pytest.approx(1.2 / 0.2)
        speedups = [dist.speedup(n) for n in (1, 2, 8, 64, 1024)]
        assert all(a < b for a, b in zip(speedups, speedups[1:]))
        assert speedups[-1] < dist.speedup_limit()

    def test_cdf_quantile_and_sampling(self, rng):
        dist = ParetoRuntime(x_m=5.0, alpha=3.0)
        for q in (0.1, 0.5, 0.99):
            assert dist.cdf(dist.quantile(q)) == pytest.approx(q, abs=1e-12)
        draws = dist.sample(rng, 30000)
        assert draws.min() >= 5.0
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.05)


class TestUniform:
    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            UniformRuntime(low=5.0, high=5.0)
        with pytest.raises(ValueError):
            UniformRuntime(low=-1.0, high=2.0)

    def test_expected_minimum_closed_form(self):
        dist = UniformRuntime(low=10.0, high=110.0)
        assert dist.expected_minimum(1) == pytest.approx(60.0)
        assert dist.expected_minimum(9) == pytest.approx(10.0 + 100.0 / 10.0)

    def test_closed_form_matches_numeric_quadrature(self):
        dist = UniformRuntime(low=0.0, high=50.0)
        for n in (1, 3, 17, 100):
            assert dist.expected_minimum(n) == pytest.approx(expected_minimum(dist, n), rel=1e-7)

    def test_quantile_and_bounded_support(self):
        dist = UniformRuntime(low=2.0, high=4.0)
        assert dist.quantile(0.5) == pytest.approx(3.0)
        assert dist.support() == (2.0, 4.0)
        assert dist.cdf(5.0) == 1.0
        assert dist.pdf(5.0) == 0.0
