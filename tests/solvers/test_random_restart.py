"""Random-restart min-conflict baseline solver."""

import numpy as np
import pytest

from repro.csp.problems import AllIntervalProblem, NQueensProblem
from repro.solvers.random_restart import RandomRestartConfig, RandomRestartSearch


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [{"max_iterations": 0}, {"stall_limit": 0}, {"sideways_probability": 2.0}],
    )
    def test_invalid_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RandomRestartConfig(**kwargs)


class TestSolving:
    def test_solves_nqueens(self):
        solver = RandomRestartSearch(NQueensProblem(8))
        for seed in range(5):
            result = solver.run(seed)
            assert result.solved
            assert solver.problem.is_solution(result.solution)

    def test_solves_all_interval(self):
        solver = RandomRestartSearch(AllIntervalProblem(8))
        result = solver.run(1)
        assert result.solved
        assert solver.problem.is_solution(result.solution)

    def test_budget_censoring(self):
        solver = RandomRestartSearch(
            NQueensProblem(12), RandomRestartConfig(max_iterations=2)
        )
        result = solver.run(0)
        assert result.iterations <= 2

    def test_reproducibility(self):
        solver = RandomRestartSearch(NQueensProblem(8))
        assert solver.run(11).iterations == solver.run(11).iterations

    def test_is_a_different_las_vegas_algorithm_than_adaptive_search(self):
        """Both solve the problem; runtime distributions differ (used by ablations)."""
        from repro.solvers.adaptive_search import AdaptiveSearch

        problem = NQueensProblem(10)
        baseline = RandomRestartSearch(problem)
        adaptive = AdaptiveSearch(problem)
        baseline_iters = np.mean([baseline.run(seed).iterations for seed in range(10)])
        adaptive_iters = np.mean([adaptive.run(seed).iterations for seed in range(10)])
        assert baseline_iters > 0 and adaptive_iters > 0
