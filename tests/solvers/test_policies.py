"""WalkSAT flip-policy family: equivalence, degenerate noise, adaptation."""

import numpy as np
import pytest

from repro.sat import CNFFormula, random_ksat_at_ratio, random_planted_ksat
from repro.solvers.policies import (
    POLICIES,
    AdaptiveNoisePolicy,
    NoveltyPlusPolicy,
    NoveltyPolicy,
    WalkSATPolicy,
    make_policy,
    validate_policy,
)
from repro.solvers.walksat import WalkSAT, WalkSATConfig


def _policy_config(policy, **kwargs):
    return WalkSATConfig(policy=policy, **kwargs)


class TestRegistry:
    def test_known_policies(self):
        assert POLICIES == ("walksat", "novelty", "novelty+", "adaptive")
        for name in POLICIES:
            validate_policy(name)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            validate_policy("gsat")
        with pytest.raises(ValueError):
            WalkSATConfig(policy="gsat")

    def test_make_policy_builds_the_right_classes(self):
        kwargs = dict(
            noise=0.5,
            walk_probability=0.01,
            adaptive_theta=1 / 6,
            adaptive_phi=0.2,
            n_variables=10,
            n_clauses=42,
        )
        assert isinstance(make_policy("walksat", **kwargs), WalkSATPolicy)
        novelty = make_policy("novelty", **kwargs)
        assert isinstance(novelty, NoveltyPolicy)
        assert not isinstance(novelty, NoveltyPlusPolicy)
        assert isinstance(make_policy("novelty+", **kwargs), NoveltyPlusPolicy)
        assert isinstance(make_policy("adaptive", **kwargs), AdaptiveNoisePolicy)

    def test_config_validation_of_policy_parameters(self):
        with pytest.raises(ValueError):
            WalkSATConfig(walk_probability=1.5)
        with pytest.raises(ValueError):
            WalkSATConfig(adaptive_theta=0.0)
        with pytest.raises(ValueError):
            WalkSATConfig(adaptive_phi=-0.1)

    def test_solver_name_carries_the_policy(self):
        formula, _ = random_planted_ksat(10, 42, rng=np.random.default_rng(0))
        assert WalkSAT(formula).name.endswith("c]")
        assert WalkSAT(formula, _policy_config("novelty")).name.endswith("/novelty")


_EQUIVALENCE_INSTANCES = [
    pytest.param("planted", 30, None, id="planted-30"),
    pytest.param("planted", 40, 80, id="planted-40-restarts"),
    pytest.param("uniform", 30, None, id="uniform-30"),
    pytest.param("uniform", 40, 120, id="uniform-40-restarts"),
]


def _make_formula(family, n_variables):
    rng = np.random.default_rng(n_variables)
    if family == "planted":
        formula, _ = random_planted_ksat(n_variables, int(round(4.2 * n_variables)), rng=rng)
        return formula
    return random_ksat_at_ratio(n_variables, 4.2, rng=rng)


class TestPolicyEvaluationPathEquivalence:
    """ISSUE-5 invariant: every policy yields bit-identical runs (same flip
    sequence, same RNG draws, same restart cadence) on the incremental
    clause state and the batch oracle — the ISSUE-3 contract extended to
    the whole variant family."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("family, n_variables, restart_after", _EQUIVALENCE_INSTANCES)
    def test_incremental_matches_batch_bitwise(self, policy, family, n_variables, restart_after):
        formula = _make_formula(family, n_variables)
        for seed in range(3):
            results = {}
            for mode in ("batch", "incremental"):
                config = WalkSATConfig(
                    max_flips=20_000,
                    policy=policy,
                    restart_after=restart_after,
                    evaluation=mode,
                )
                results[mode] = WalkSAT(formula, config).run(seed)
            batch, incremental = results["batch"], results["incremental"]
            assert (batch.solved, batch.iterations, batch.restarts) == (
                incremental.solved,
                incremental.iterations,
                incremental.restarts,
            ), f"{policy} diverged on seed {seed} ({family} n={n_variables})"
            if batch.solved:
                np.testing.assert_array_equal(batch.solution, incremental.solution)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_policies_are_deterministic_per_seed(self, policy):
        formula = _make_formula("planted", 30)
        config = _policy_config(policy, max_flips=20_000)
        solver = WalkSAT(formula, config)
        assert solver.run(7).iterations == solver.run(7).iterations

    @pytest.mark.parametrize("policy", POLICIES)
    def test_every_policy_solves_planted_instances(self, policy):
        formula = _make_formula("planted", 25)
        config = _policy_config(policy, max_flips=500_000)
        for seed in range(3):
            result = WalkSAT(formula, config).run(seed)
            assert result.solved
            assert formula.is_satisfied(result.solution)


# ----------------------------------------------------------------------
# Degenerate-noise semantics on a crafted state.
#
# Formula over x0..x2, initial assignment FFF (pinned): the only unsatisfied
# clause is (1 2); break(x0) = 2, break(x1) = 1, no free variable, and
# make(x0) = make(x1) = 1, so Novelty scores are x0: 2-1 = 1, x1: 1-1 = 0 —
# x1 is strictly best under both SKC break counts and Novelty scores.
# ----------------------------------------------------------------------
_CRAFTED_CLAUSES = [(1, 2), (-1,), (-1, 3), (-2,)]


class _FixedInitFormula(CNFFormula):
    def __init__(self, n_variables, clauses, init):
        super().__init__(n_variables, clauses)
        self._init = np.array(init, dtype=bool)

    def random_assignment(self, rng):
        return self._init.copy()


def _first_flips(config, seeds=range(12)):
    formula = _FixedInitFormula(3, _CRAFTED_CLAUSES, [False, False, False])
    flips = set()
    for seed in seeds:
        solver = WalkSAT(formula, config)
        path_holder = {}
        original = solver._clause_path

        def capture():
            path = original()
            original_flip = path.flip

            class _Spy:
                def __getattr__(self, attr):
                    return getattr(path, attr)

                def flip(self, variable):
                    path_holder.setdefault("flips", []).append(variable)
                    original_flip(variable)

            return _Spy()

        solver._clause_path = capture
        solver.run(seed)
        flips.add(path_holder["flips"][0])
    return flips


class TestDegenerateNoise:
    def test_novelty_noise_zero_is_deterministic_best_score(self):
        config = _policy_config("novelty", max_flips=1, noise=0.0)
        assert _first_flips(config) == {1}

    def test_novelty_noise_one_on_fresh_run_still_picks_best(self):
        # No variable has been flipped yet, so the "most recently flipped"
        # exception never triggers on the first flip: best is chosen even
        # at noise=1.
        config = _policy_config("novelty", max_flips=1, noise=1.0)
        assert _first_flips(config) == {1}

    def test_novelty_noise_one_avoids_the_youngest_variable(self):
        # Two flips, noise=1: the first flip is x1 (best); x1 is then the
        # youngest.  If the same clause is picked again with x1 still best,
        # Novelty at noise=1 must take the second best instead.
        formula = _FixedInitFormula(3, _CRAFTED_CLAUSES, [False, False, False])
        from repro.sat.incremental import IncrementalClausePath

        policy = NoveltyPolicy(noise=1.0, n_variables=3)
        path = IncrementalClausePath(formula.clause_evaluator())
        path.reinit(formula.random_assignment(np.random.default_rng(0)))
        policy.start(path)
        rng = np.random.default_rng(0)
        first = policy.pick(path, [0, 1], rng)
        assert first == 1
        policy.notify_flip(1, 1, path)
        # Undo nothing: just re-ask on the same clause state where x1 is
        # still ranked best — it is now the youngest, so x0 must be picked.
        assert policy.pick(path, [0, 1], rng) == 0

    def test_novelty_plus_walk_probability_one_is_a_pure_random_walk(self):
        config = _policy_config("novelty+", max_flips=1, noise=0.0, walk_probability=1.0)
        assert _first_flips(config, seeds=range(30)) == {0, 1}

    def test_novelty_plus_walk_probability_zero_matches_novelty(self):
        formula = _make_formula("planted", 30)
        novelty = WalkSAT(formula, _policy_config("novelty", max_flips=20_000, noise=0.4))
        plus = WalkSAT(
            formula,
            _policy_config("novelty+", max_flips=20_000, noise=0.4, walk_probability=0.0),
        )
        # walk_probability=0 still consumes the walk RNG draw, so the runs
        # are not flip-identical — but both must behave like proper Novelty
        # runs and solve the instance.
        assert novelty.run(3).solved and plus.run(3).solved

    def test_adaptive_initial_noise_zero_is_deterministic_greedy(self):
        config = _policy_config("adaptive", max_flips=1, noise=0.0)
        assert _first_flips(config) == {1}

    def test_adaptive_initial_noise_one_is_a_pure_random_walk(self):
        config = _policy_config("adaptive", max_flips=1, noise=1.0)
        assert _first_flips(config, seeds=range(30)) == {0, 1}

    def test_walksat_noise_degenerates_unchanged(self):
        assert _first_flips(_policy_config("walksat", max_flips=1, noise=0.0)) == {1}
        assert _first_flips(
            _policy_config("walksat", max_flips=1, noise=1.0), seeds=range(30)
        ) == {0, 1}


class TestAdaptiveNoiseDynamics:
    def _unsat_formula(self):
        # (x1) ∧ (¬x1): never satisfiable, so the search stagnates forever
        # and the noise must ratchet up.
        return CNFFormula(1, [(1,), (-1,)])

    def test_noise_increases_under_stagnation(self):
        formula = self._unsat_formula()
        solver = WalkSAT(
            formula, _policy_config("adaptive", max_flips=500, noise=0.0, adaptive_phi=0.2)
        )
        policy = solver._make_policy()
        from repro.sat.incremental import IncrementalClausePath

        path = IncrementalClausePath(formula.clause_evaluator())
        rng = np.random.default_rng(0)
        path.reinit(formula.random_assignment(rng))
        policy.start(path)
        assert policy.noise == 0.0
        for flip_number in range(1, 100):
            variable = policy.pick(path, [0], rng)
            path.flip(variable)
            policy.notify_flip(variable, flip_number, path)
        assert policy.noise > 0.0

    def test_noise_decreases_on_improvement(self):
        policy = AdaptiveNoisePolicy(initial_noise=0.8, n_clauses=60, theta=1 / 6, phi=0.2)

        class _FakePath:
            n_unsat = 10

        path = _FakePath()
        policy.start(path)
        path.n_unsat = 9  # improvement
        policy.notify_flip(0, 1, path)
        assert policy.noise == pytest.approx(0.8 - 0.8 * 0.1)

    def test_noise_stays_in_unit_interval(self):
        policy = AdaptiveNoisePolicy(initial_noise=0.0, n_clauses=6, theta=1 / 6, phi=0.2)

        class _FakePath:
            n_unsat = 5

        path = _FakePath()
        policy.start(path)
        for flip_number in range(1, 2000):
            policy.notify_flip(0, flip_number, path)  # eternal stagnation
        assert 0.0 <= policy.noise <= 1.0
        assert policy.noise > 0.9  # ratcheted up, asymptotically toward 1

    def test_learned_noise_survives_restarts(self):
        policy = AdaptiveNoisePolicy(initial_noise=0.0, n_clauses=6, theta=1 / 6, phi=0.2)

        class _FakePath:
            n_unsat = 5

        path = _FakePath()
        policy.start(path)
        for flip_number in range(1, 50):
            policy.notify_flip(0, flip_number, path)
        learned = policy.noise
        assert learned > 0.0
        policy.restart(path)
        assert policy.noise == learned
