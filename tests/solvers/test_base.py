"""LasVegasAlgorithm interface and RunResult."""

import numpy as np
import pytest

from repro.solvers.base import LasVegasAlgorithm, RunResult


class CoinFlipAlgorithm(LasVegasAlgorithm):
    """Toy Las Vegas algorithm: repeat coin flips until heads."""

    name = "coin-flip"

    def _run(self, rng: np.random.Generator) -> RunResult:
        iterations = 1
        while rng.random() >= 0.5:
            iterations += 1
        return RunResult(solved=True, iterations=iterations, runtime_seconds=0.0)


class TestRunResult:
    def test_cost_measures(self):
        result = RunResult(solved=True, iterations=42, runtime_seconds=1.5)
        assert result.cost("iterations") == 42.0
        assert result.cost("time") == 1.5
        with pytest.raises(ValueError):
            result.cost("flops")

    def test_defaults(self):
        result = RunResult(solved=False, iterations=10, runtime_seconds=0.1)
        assert result.solution is None
        assert result.restarts == 0
        assert result.seed is None


class TestLasVegasAlgorithm:
    def test_integer_seed_gives_reproducible_runs(self):
        algo = CoinFlipAlgorithm()
        first = algo.run(123)
        second = algo.run(123)
        assert first.iterations == second.iterations
        assert first.seed == 123

    def test_different_seeds_explore_different_runs(self):
        algo = CoinFlipAlgorithm()
        iterations = {algo.run(seed).iterations for seed in range(40)}
        assert len(iterations) > 1

    def test_generator_seed_is_accepted(self):
        algo = CoinFlipAlgorithm()
        result = algo.run(np.random.default_rng(5))
        assert result.solved
        assert result.seed is None

    def test_runtime_is_filled_in(self):
        result = CoinFlipAlgorithm().run(0)
        assert result.runtime_seconds > 0.0

    def test_describe_defaults_to_name(self):
        assert CoinFlipAlgorithm().describe() == "coin-flip"

    def test_geometric_runtime_distribution(self):
        """The toy algorithm has a geometric runtime: mean ~2 flips."""
        algo = CoinFlipAlgorithm()
        iterations = [algo.run(seed).iterations for seed in range(800)]
        assert np.mean(iterations) == pytest.approx(2.0, rel=0.15)
