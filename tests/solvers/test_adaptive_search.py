"""Adaptive Search solver."""

import numpy as np
import pytest

from repro.csp.problems import (
    AllIntervalProblem,
    CostasArrayProblem,
    MagicSquareProblem,
    NQueensProblem,
)
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = AdaptiveSearchConfig()
        assert config.max_iterations > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"tabu_tenure": 0},
            {"reset_limit": 0},
            {"reset_fraction": 0.0},
            {"reset_fraction": 1.5},
            {"restart_limit": 0},
            {"plateau_probability": -0.1},
            {"plateau_probability": 1.5},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveSearchConfig(**kwargs)


class TestSolving:
    @pytest.mark.parametrize(
        "problem",
        [
            AllIntervalProblem(8),
            MagicSquareProblem(3),
            CostasArrayProblem(7),
            NQueensProblem(8),
        ],
        ids=["all-interval-8", "magic-square-3", "costas-7", "n-queens-8"],
    )
    def test_finds_valid_solutions(self, problem):
        solver = AdaptiveSearch(problem, AdaptiveSearchConfig(max_iterations=100_000))
        for seed in range(5):
            result = solver.run(seed)
            assert result.solved, f"seed {seed} failed"
            assert problem.is_solution(result.solution)
            assert problem.check_permutation(result.solution)
            assert result.iterations >= 0

    def test_runs_are_reproducible_per_seed(self):
        solver = AdaptiveSearch(CostasArrayProblem(8))
        a = solver.run(7)
        b = solver.run(7)
        assert a.iterations == b.iterations
        np.testing.assert_array_equal(a.solution, b.solution)

    def test_iteration_counts_vary_across_seeds(self):
        """The defining Las Vegas property: runtime is a non-degenerate random variable."""
        solver = AdaptiveSearch(AllIntervalProblem(10))
        iterations = {solver.run(seed).iterations for seed in range(15)}
        assert len(iterations) > 3

    def test_budget_censors_runs(self):
        solver = AdaptiveSearch(
            MagicSquareProblem(6), AdaptiveSearchConfig(max_iterations=5)
        )
        result = solver.run(0)
        assert not result.solved
        assert result.iterations == 5
        assert result.solution is None

    def test_immediate_solution_when_initialised_on_one(self):
        """If the random initial configuration is already a solution, 0 iterations."""

        class FixedInitProblem(CostasArrayProblem):
            def random_configuration(self, rng):
                return np.array([3, 4, 2, 1, 5])

        solver = AdaptiveSearch(FixedInitProblem(5))
        result = solver.run(0)
        assert result.solved
        assert result.iterations == 0

    def test_restart_limit_triggers_restarts(self):
        config = AdaptiveSearchConfig(max_iterations=4000, restart_limit=10)
        solver = AdaptiveSearch(MagicSquareProblem(5), config)
        result = solver.run(3)
        # With a 10-iteration restart budget on a hard instance restarts are inevitable.
        assert result.restarts > 0

    def test_name_mentions_problem(self):
        solver = AdaptiveSearch(AllIntervalProblem(8))
        assert "all-interval" in solver.name


class TestRuntimeDistributionShape:
    def test_costas_runtimes_are_heavily_dispersed(self):
        """Paper Section 5.4: min-max ratios of orders of magnitude."""
        solver = AdaptiveSearch(CostasArrayProblem(9))
        iterations = np.array([solver.run(seed).iterations for seed in range(40)], dtype=float)
        iterations = np.maximum(iterations, 1.0)
        assert iterations.max() / iterations.min() > 5.0
