"""Adaptive Search solver."""

import numpy as np
import pytest

from repro.csp.permutation import CSPPermutationAdapter, PermutationProblem
from repro.csp.problems import (
    AllIntervalProblem,
    CostasArrayProblem,
    LangfordProblem,
    MagicSquareProblem,
    NQueensProblem,
)
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig


class TestConfigValidation:
    def test_defaults_are_valid(self):
        config = AdaptiveSearchConfig()
        assert config.max_iterations > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_iterations": 0},
            {"tabu_tenure": 0},
            {"reset_limit": 0},
            {"reset_fraction": 0.0},
            {"reset_fraction": 1.5},
            {"restart_limit": 0},
            {"plateau_probability": -0.1},
            {"plateau_probability": 1.5},
            {"evaluation": "vectorised"},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AdaptiveSearchConfig(**kwargs)


class TestSolving:
    @pytest.mark.parametrize(
        "problem",
        [
            AllIntervalProblem(8),
            MagicSquareProblem(3),
            CostasArrayProblem(7),
            NQueensProblem(8),
        ],
        ids=["all-interval-8", "magic-square-3", "costas-7", "n-queens-8"],
    )
    def test_finds_valid_solutions(self, problem):
        solver = AdaptiveSearch(problem, AdaptiveSearchConfig(max_iterations=100_000))
        for seed in range(5):
            result = solver.run(seed)
            assert result.solved, f"seed {seed} failed"
            assert problem.is_solution(result.solution)
            assert problem.check_permutation(result.solution)
            assert result.iterations >= 0

    def test_runs_are_reproducible_per_seed(self):
        solver = AdaptiveSearch(CostasArrayProblem(8))
        a = solver.run(7)
        b = solver.run(7)
        assert a.iterations == b.iterations
        np.testing.assert_array_equal(a.solution, b.solution)

    def test_iteration_counts_vary_across_seeds(self):
        """The defining Las Vegas property: runtime is a non-degenerate random variable."""
        solver = AdaptiveSearch(AllIntervalProblem(10))
        iterations = {solver.run(seed).iterations for seed in range(15)}
        assert len(iterations) > 3

    def test_budget_censors_runs(self):
        solver = AdaptiveSearch(
            MagicSquareProblem(6), AdaptiveSearchConfig(max_iterations=5)
        )
        result = solver.run(0)
        assert not result.solved
        assert result.iterations == 5
        assert result.solution is None

    def test_immediate_solution_when_initialised_on_one(self):
        """If the random initial configuration is already a solution, 0 iterations."""

        class FixedInitProblem(CostasArrayProblem):
            def random_configuration(self, rng):
                return np.array([3, 4, 2, 1, 5])

        solver = AdaptiveSearch(FixedInitProblem(5))
        result = solver.run(0)
        assert result.solved
        assert result.iterations == 0

    def test_restart_limit_triggers_restarts(self):
        config = AdaptiveSearchConfig(max_iterations=4000, restart_limit=10)
        solver = AdaptiveSearch(MagicSquareProblem(5), config)
        result = solver.run(3)
        # With a 10-iteration restart budget on a hard instance restarts are inevitable.
        assert result.restarts > 0

    def test_name_mentions_problem(self):
        solver = AdaptiveSearch(AllIntervalProblem(8))
        assert "all-interval" in solver.name


class TestRuntimeDistributionShape:
    def test_costas_runtimes_are_heavily_dispersed(self):
        """Paper Section 5.4: min-max ratios of orders of magnitude."""
        solver = AdaptiveSearch(CostasArrayProblem(9))
        iterations = np.array([solver.run(seed).iterations for seed in range(40)], dtype=float)
        iterations = np.maximum(iterations, 1.0)
        assert iterations.max() / iterations.min() > 5.0


class _RecordingProblem(PermutationProblem):
    """Constant-cost problem: no swap ever improves, so every iteration
    taboos the current highest-error active variable.  Variable errors are
    fixed and strictly decreasing, making the culprit sequence deterministic
    and recording it through :meth:`swap_costs` (called once per repair)."""

    name = "recording"

    def __init__(self, n: int) -> None:
        super().__init__(size=n)
        self.culprits: list[int] = []

    def cost_many(self, perms):
        perms = np.asarray(perms, dtype=np.int64)
        return np.full(perms.shape[0], 100.0)

    def variable_errors(self, perm):
        return np.arange(self.size, 0, -1, dtype=float)

    def swap_costs(self, perm, index):
        self.culprits.append(index)
        return super().swap_costs(perm, index)


class TestTabuTenure:
    @pytest.mark.parametrize("tenure", [1, 3, 5])
    def test_tabooed_variable_is_skipped_exactly_tenure_iterations(self, tenure):
        """A variable tabooed with tenure T at iteration t is frozen for
        iterations t+1 .. t+T (exactly T of them) and eligible again at
        t+T+1 — regression test for the historical off-by-one where the
        freeze lasted only T-1 iterations."""
        problem = _RecordingProblem(tenure + 3)
        config = AdaptiveSearchConfig(
            max_iterations=tenure + 4,
            tabu_tenure=tenure,
            reset_limit=10_000,
            plateau_probability=0.0,
        )
        AdaptiveSearch(problem, config).run(0)
        culprits = problem.culprits
        # Variable 0 has the highest error, is picked first (iteration 1)
        # and tabooed; with > tenure+1 always-active other variables no
        # reset intervenes before it becomes eligible again.
        assert culprits[0] == 0
        second = culprits.index(0, 1)
        skipped = second - 1  # iterations 2 .. second during which 0 was frozen
        assert skipped == tenure


_EQUIVALENCE_PROBLEMS = [
    pytest.param(lambda: AllIntervalProblem(10), id="all-interval-10"),
    pytest.param(lambda: MagicSquareProblem(4), id="magic-square-4"),
    pytest.param(lambda: CostasArrayProblem(8), id="costas-8"),
    pytest.param(lambda: NQueensProblem(10), id="n-queens-10"),
    pytest.param(lambda: LangfordProblem(7), id="langford-7"),
]


class TestEvaluationPathEquivalence:
    """PR-2 invariant: a given seed yields bit-identical runs on the
    incremental (delta kernel) and batch (cost_many oracle) paths."""

    @pytest.mark.parametrize("problem_factory", _EQUIVALENCE_PROBLEMS)
    def test_incremental_matches_batch_bitwise(self, problem_factory):
        problem = problem_factory()
        for seed in range(3):
            results = {}
            for mode in ("batch", "incremental"):
                config = AdaptiveSearchConfig(max_iterations=30_000, evaluation=mode)
                results[mode] = AdaptiveSearch(problem, config).run(seed)
            batch, incremental = results["batch"], results["incremental"]
            assert (batch.solved, batch.iterations, batch.restarts) == (
                incremental.solved,
                incremental.iterations,
                incremental.restarts,
            ), f"seed {seed} diverged on {problem.describe()}"
            if batch.solved:
                np.testing.assert_array_equal(batch.solution, incremental.solution)

    def test_equivalence_holds_across_restarts_and_resets(self):
        """Exercise the restart / partial-reset paths (state re-attachment)."""
        problem = MagicSquareProblem(5)
        for mode in ("batch", "incremental"):
            config = AdaptiveSearchConfig(
                max_iterations=2000, restart_limit=150, reset_limit=3, evaluation=mode
            )
            result = AdaptiveSearch(problem, config).run(11)
            if mode == "batch":
                reference = result
        assert (result.solved, result.iterations, result.restarts) == (
            reference.solved,
            reference.iterations,
            reference.restarts,
        )

    def test_auto_mode_falls_back_without_delta_evaluator(self):
        direct = AllIntervalProblem(6)
        adapter = CSPPermutationAdapter(direct.to_csp(), values=np.arange(6))
        assert adapter.delta_evaluator() is None
        config = AdaptiveSearchConfig(max_iterations=5000, evaluation="auto")
        result = AdaptiveSearch(adapter, config).run(0)
        assert result.iterations > 0  # ran on the batch fallback

    def test_incremental_mode_requires_delta_evaluator(self):
        direct = AllIntervalProblem(6)
        adapter = CSPPermutationAdapter(direct.to_csp(), values=np.arange(6))
        solver = AdaptiveSearch(adapter, AdaptiveSearchConfig(evaluation="incremental"))
        with pytest.raises(ValueError, match="DeltaEvaluator"):
            solver.run(0)


class TestAutoCrossover:
    """`evaluation="auto"` picks the path from the measured per-problem
    batch/incremental crossover size instead of always preferring the
    kernel (the ROADMAP "ALL-INTERVAL small-n overhead" item)."""

    def _path(self, problem, mode="auto"):
        from repro.solvers.adaptive_search import _BatchEvaluation, _IncrementalEvaluation

        path = AdaptiveSearch(problem, AdaptiveSearchConfig(evaluation=mode))._evaluation_path()
        assert isinstance(path, (_BatchEvaluation, _IncrementalEvaluation))
        return type(path).__name__

    def test_all_interval_below_crossover_uses_batch(self):
        assert AllIntervalProblem.incremental_min_size == 96
        problem = AllIntervalProblem(48)
        assert self._path(problem) == "_BatchEvaluation"
        # Below the crossover the delta kernel is never even constructed —
        # its build cost was part of the small-n overhead being avoided.
        assert getattr(problem, "_delta_evaluator", None) is None

    def test_all_interval_at_or_above_crossover_uses_kernel(self):
        assert self._path(AllIntervalProblem(96)) == "_IncrementalEvaluation"
        assert self._path(AllIntervalProblem(192)) == "_IncrementalEvaluation"

    def test_problems_without_crossover_always_prefer_the_kernel(self):
        assert NQueensProblem.incremental_min_size is None
        assert self._path(NQueensProblem(8)) == "_IncrementalEvaluation"

    def test_explicit_modes_override_the_crossover(self):
        assert self._path(AllIntervalProblem(48), mode="incremental") == "_IncrementalEvaluation"
        assert self._path(AllIntervalProblem(192), mode="batch") == "_BatchEvaluation"

    def test_auto_choice_does_not_change_results(self):
        problem = AllIntervalProblem(10)  # below crossover: auto = batch
        for seed in range(3):
            auto = AdaptiveSearch(
                problem, AdaptiveSearchConfig(max_iterations=20_000, evaluation="auto")
            ).run(seed)
            forced = AdaptiveSearch(
                problem, AdaptiveSearchConfig(max_iterations=20_000, evaluation="incremental")
            ).run(seed)
            assert (auto.solved, auto.iterations) == (forced.solved, forced.iterations)
