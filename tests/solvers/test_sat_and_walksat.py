"""CNF substrate, random k-SAT generators and WalkSAT."""

import numpy as np
import pytest

from repro.sat import CNFFormula, random_ksat, random_planted_ksat
from repro.solvers.walksat import WalkSAT, WalkSATConfig


class TestCNFFormula:
    def test_construction_and_counts(self):
        formula = CNFFormula(3, [(1, -2), (2, 3), (-1, -3)])
        assert formula.n_variables == 3
        assert formula.n_clauses == 3

    def test_rejects_bad_clauses(self):
        with pytest.raises(ValueError):
            CNFFormula(2, [(0,)])
        with pytest.raises(ValueError):
            CNFFormula(2, [(3,)])
        with pytest.raises(ValueError):
            CNFFormula(2, [()])
        with pytest.raises(ValueError):
            CNFFormula(2, [])
        with pytest.raises(ValueError):
            CNFFormula(0, [(1,)])

    def test_satisfaction_checks(self):
        formula = CNFFormula(2, [(1, 2), (-1, 2)])
        assert formula.is_satisfied(np.array([True, True]))
        assert formula.is_satisfied(np.array([False, True]))
        assert not formula.is_satisfied(np.array([True, False]))
        assert formula.count_unsatisfied(np.array([False, False])) == 1
        np.testing.assert_array_equal(
            formula.unsatisfied_clauses(np.array([False, False])), [0]
        )

    def test_break_count(self):
        formula = CNFFormula(2, [(1,), (1, 2)])
        assignment = np.array([True, False])
        # Flipping variable 0 breaks both clauses (clause 2 has no other true literal).
        assert formula.break_count(assignment, 0) == 2
        assert formula.break_count(assignment, 1) == 0
        with pytest.raises(IndexError):
            formula.break_count(assignment, 5)

    def test_assignment_shape_validation(self):
        formula = CNFFormula(3, [(1, 2, 3)])
        with pytest.raises(ValueError):
            formula.is_satisfied(np.array([True, False]))

    def test_dimacs_round_trip(self):
        formula = CNFFormula(3, [(1, -2, 3), (-1, 2)])
        text = formula.to_dimacs()
        parsed = CNFFormula.from_dimacs(text)
        assert parsed.n_variables == 3
        assert parsed.clauses == formula.clauses

    def test_from_dimacs_with_comments(self):
        text = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n"
        formula = CNFFormula.from_dimacs(text)
        assert formula.n_clauses == 2

    def test_from_dimacs_missing_header(self):
        with pytest.raises(ValueError):
            CNFFormula.from_dimacs("1 2 0\n")


class TestGenerators:
    def test_random_ksat_shape(self, rng):
        formula = random_ksat(20, 80, k=3, rng=rng)
        assert formula.n_variables == 20
        assert formula.n_clauses == 80
        assert all(len(set(abs(l) for l in clause)) == 3 for clause in formula.clauses)

    def test_planted_instance_is_satisfiable(self, rng):
        formula, planted = random_planted_ksat(30, 120, rng=rng)
        assert formula.is_satisfied(planted)

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)
        with pytest.raises(ValueError):
            random_planted_ksat(10, 0)

    def test_reproducibility_with_seeded_rng(self):
        a = random_ksat(15, 40, rng=np.random.default_rng(3))
        b = random_ksat(15, 40, rng=np.random.default_rng(3))
        assert a.clauses == b.clauses


class TestWalkSAT:
    def test_solves_planted_instances(self, rng):
        formula, _ = random_planted_ksat(40, 150, rng=rng)
        solver = WalkSAT(formula, WalkSATConfig(max_flips=200_000))
        for seed in range(3):
            result = solver.run(seed)
            assert result.solved
            assert formula.is_satisfied(result.solution)

    def test_flip_budget_censors(self, rng):
        formula, _ = random_planted_ksat(50, 210, rng=rng)
        solver = WalkSAT(formula, WalkSATConfig(max_flips=1))
        result = solver.run(0)
        assert result.iterations <= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalkSATConfig(max_flips=0)
        with pytest.raises(ValueError):
            WalkSATConfig(noise=1.5)
        with pytest.raises(ValueError):
            WalkSATConfig(restart_after=0)
        with pytest.raises(ValueError):
            WalkSATConfig(evaluation="vectorised")
        with pytest.raises(ValueError):
            WalkSATConfig(restart_schedule="geometric")

    def test_restarts_are_counted(self, rng):
        formula, _ = random_planted_ksat(40, 160, rng=rng)
        solver = WalkSAT(formula, WalkSATConfig(max_flips=5000, restart_after=50))
        result = solver.run(2)
        assert result.restarts >= 0  # restarts may or may not trigger before solving

    def test_runtime_is_a_random_variable(self, rng):
        formula, _ = random_planted_ksat(40, 150, rng=rng)
        solver = WalkSAT(formula)
        flips = {solver.run(seed).iterations for seed in range(8)}
        assert len(flips) > 1

    def test_reproducibility(self, rng):
        formula, _ = random_planted_ksat(30, 110, rng=rng)
        solver = WalkSAT(formula)
        assert solver.run(5).iterations == solver.run(5).iterations


_EQUIVALENCE_INSTANCES = [
    pytest.param(30, 126, None, id="3sat-30@4.2"),
    pytest.param(40, 168, None, id="3sat-40@4.2"),
    pytest.param(40, 168, 80, id="3sat-40@4.2-restarts"),
    pytest.param(60, 240, 300, id="3sat-60@4.0-restarts"),
]


class TestEvaluationPathEquivalence:
    """ISSUE-3 invariant: a given seed yields bit-identical runs (same flip
    sequence, same RNG draws, same tie-breaking) on the incremental clause
    state and the batch (full re-evaluation) oracle — including runs with
    restarts."""

    @pytest.mark.parametrize("n_variables, n_clauses, restart_after", _EQUIVALENCE_INSTANCES)
    def test_incremental_matches_batch_bitwise(self, n_variables, n_clauses, restart_after):
        formula, _ = random_planted_ksat(
            n_variables, n_clauses, rng=np.random.default_rng(n_variables)
        )
        for seed in range(4):
            results = {}
            for mode in ("batch", "incremental"):
                config = WalkSATConfig(
                    max_flips=30_000, restart_after=restart_after, evaluation=mode
                )
                results[mode] = WalkSAT(formula, config).run(seed)
            batch, incremental = results["batch"], results["incremental"]
            assert (batch.solved, batch.iterations, batch.restarts) == (
                incremental.solved,
                incremental.iterations,
                incremental.restarts,
            ), f"seed {seed} diverged on {n_variables}v/{n_clauses}c"
            if batch.solved:
                np.testing.assert_array_equal(batch.solution, incremental.solution)

    def test_auto_mode_uses_the_incremental_path(self):
        from repro.sat.incremental import BatchClausePath, IncrementalClausePath

        formula, _ = random_planted_ksat(20, 84, rng=np.random.default_rng(0))
        assert isinstance(
            WalkSAT(formula, WalkSATConfig(evaluation="auto"))._clause_path(),
            IncrementalClausePath,
        )
        assert isinstance(
            WalkSAT(formula, WalkSATConfig(evaluation="batch"))._clause_path(),
            BatchClausePath,
        )

    def test_auto_matches_explicit_incremental(self):
        formula, _ = random_planted_ksat(30, 126, rng=np.random.default_rng(1))
        auto = WalkSAT(formula, WalkSATConfig(evaluation="auto")).run(3)
        incremental = WalkSAT(formula, WalkSATConfig(evaluation="incremental")).run(3)
        assert auto.iterations == incremental.iterations


class _FixedInitFormula(CNFFormula):
    """Formula whose initial random assignment is pinned (for policy tests)."""

    def __init__(self, n_variables, clauses, init):
        super().__init__(n_variables, clauses)
        self._init = np.array(init, dtype=bool)

    def random_assignment(self, rng):
        return self._init.copy()


class _RecordingWalkSAT(WalkSAT):
    """WalkSAT that records every flipped variable (wraps the clause path)."""

    def __init__(self, formula, config):
        super().__init__(formula, config)
        self.flipped: list[int] = []

    def _clause_path(self):
        path = super()._clause_path()
        original_flip = path.flip
        record = self.flipped

        class _Spy:
            def __getattr__(self, attr):
                return getattr(path, attr)

            def flip(self, variable):
                record.append(variable)
                original_flip(variable)

        return _Spy()


class TestWalkSATSemantics:
    """Satellite coverage: the documented behaviour of the SKC policies."""

    @pytest.mark.parametrize("k", [3, 4])
    def test_planted_ksat_is_always_eventually_solved(self, k):
        for seed in range(4):
            formula, planted = random_planted_ksat(
                25, 100, k=k, rng=np.random.default_rng(100 + seed)
            )
            result = WalkSAT(formula, WalkSATConfig(max_flips=500_000)).run(seed)
            assert result.solved
            assert formula.is_satisfied(result.solution)

    @pytest.mark.parametrize(
        "max_flips, restart_after, expected_restarts",
        [(10, 3, 3), (10, 5, 1), (9, 3, 2), (12, 4, 2), (4, 5, 0)],
    )
    def test_restart_after_resets_exactly_at_the_configured_flip_count(
        self, max_flips, restart_after, expected_restarts
    ):
        # (x1) ∧ (¬x1) is unsatisfiable: the run always exhausts max_flips,
        # re-randomising after every `restart_after` flips — the restart at
        # the budget boundary itself never happens (the run is over).
        formula = CNFFormula(1, [(1,), (-1,)])
        config = WalkSATConfig(max_flips=max_flips, restart_after=restart_after)
        result = WalkSAT(formula, config).run(0)
        assert not result.solved
        assert result.iterations == max_flips
        assert result.restarts == expected_restarts

    def test_luby_schedule_restarts_at_the_scaled_luby_cutoffs(self):
        # Same unsatisfiable formula: with restart_after=4 under the Luby
        # schedule the segment cutoffs are 4*(1,1,2,1,1,2,4,1,1,...), i.e.
        # restarts at cumulative flips 4, 8, 16, 20, 24, 32, 48, 52, 56 —
        # nine of them within a 60-flip budget (the next, at 64, is past
        # the budget).  A fixed schedule would restart every 4 flips (14
        # restarts), so this pins the cadence, not just the count.
        formula = CNFFormula(1, [(1,), (-1,)])
        config = WalkSATConfig(max_flips=60, restart_after=4, restart_schedule="luby")
        result = WalkSAT(formula, config).run(0)
        assert not result.solved
        assert result.iterations == 60
        assert result.restarts == 9

    @pytest.mark.parametrize("schedule", ["fixed", "luby"])
    def test_restart_schedule_without_restart_after_is_inert(self, schedule):
        formula = CNFFormula(1, [(1,), (-1,)])
        config = WalkSATConfig(max_flips=20, restart_schedule=schedule)
        result = WalkSAT(formula, config).run(0)
        assert result.restarts == 0
        assert result.iterations == 20

    # Crafted state (init FFF): the only unsatisfied clause is (1 2);
    # break(x0) = 2 (breaks ¬1 and (¬1 3)), break(x1) = 1 (breaks ¬2),
    # no free variable — so the walk must take the noise branch.
    _POLICY_CLAUSES = [(1, 2), (-1,), (-1, 3), (-2,)]

    def _first_flip(self, noise, seed):
        formula = _FixedInitFormula(3, self._POLICY_CLAUSES, [False, False, False])
        solver = _RecordingWalkSAT(formula, WalkSATConfig(max_flips=1, noise=noise))
        solver.run(seed)
        assert len(solver.flipped) == 1
        return solver.flipped[0]

    def test_noise_zero_is_deterministic_greedy(self):
        # noise=0 always flips the unique minimum-break variable (x1).
        assert {self._first_flip(0.0, seed) for seed in range(12)} == {1}

    def test_noise_one_is_a_pure_random_walk(self):
        # noise=1 flips a uniform variable of the clause: both appear.
        assert {self._first_flip(1.0, seed) for seed in range(30)} == {0, 1}
