"""CNF substrate, random k-SAT generators and WalkSAT."""

import numpy as np
import pytest

from repro.sat import CNFFormula, random_ksat, random_planted_ksat
from repro.solvers.walksat import WalkSAT, WalkSATConfig


class TestCNFFormula:
    def test_construction_and_counts(self):
        formula = CNFFormula(3, [(1, -2), (2, 3), (-1, -3)])
        assert formula.n_variables == 3
        assert formula.n_clauses == 3

    def test_rejects_bad_clauses(self):
        with pytest.raises(ValueError):
            CNFFormula(2, [(0,)])
        with pytest.raises(ValueError):
            CNFFormula(2, [(3,)])
        with pytest.raises(ValueError):
            CNFFormula(2, [()])
        with pytest.raises(ValueError):
            CNFFormula(2, [])
        with pytest.raises(ValueError):
            CNFFormula(0, [(1,)])

    def test_satisfaction_checks(self):
        formula = CNFFormula(2, [(1, 2), (-1, 2)])
        assert formula.is_satisfied(np.array([True, True]))
        assert formula.is_satisfied(np.array([False, True]))
        assert not formula.is_satisfied(np.array([True, False]))
        assert formula.count_unsatisfied(np.array([False, False])) == 1
        np.testing.assert_array_equal(
            formula.unsatisfied_clauses(np.array([False, False])), [0]
        )

    def test_break_count(self):
        formula = CNFFormula(2, [(1,), (1, 2)])
        assignment = np.array([True, False])
        # Flipping variable 0 breaks both clauses (clause 2 has no other true literal).
        assert formula.break_count(assignment, 0) == 2
        assert formula.break_count(assignment, 1) == 0
        with pytest.raises(IndexError):
            formula.break_count(assignment, 5)

    def test_assignment_shape_validation(self):
        formula = CNFFormula(3, [(1, 2, 3)])
        with pytest.raises(ValueError):
            formula.is_satisfied(np.array([True, False]))

    def test_dimacs_round_trip(self):
        formula = CNFFormula(3, [(1, -2, 3), (-1, 2)])
        text = formula.to_dimacs()
        parsed = CNFFormula.from_dimacs(text)
        assert parsed.n_variables == 3
        assert parsed.clauses == formula.clauses

    def test_from_dimacs_with_comments(self):
        text = "c a comment\np cnf 2 2\n1 -2 0\n2 0\n"
        formula = CNFFormula.from_dimacs(text)
        assert formula.n_clauses == 2

    def test_from_dimacs_missing_header(self):
        with pytest.raises(ValueError):
            CNFFormula.from_dimacs("1 2 0\n")


class TestGenerators:
    def test_random_ksat_shape(self, rng):
        formula = random_ksat(20, 80, k=3, rng=rng)
        assert formula.n_variables == 20
        assert formula.n_clauses == 80
        assert all(len(set(abs(l) for l in clause)) == 3 for clause in formula.clauses)

    def test_planted_instance_is_satisfiable(self, rng):
        formula, planted = random_planted_ksat(30, 120, rng=rng)
        assert formula.is_satisfied(planted)

    def test_generator_argument_validation(self):
        with pytest.raises(ValueError):
            random_ksat(2, 5, k=3)
        with pytest.raises(ValueError):
            random_planted_ksat(10, 0)

    def test_reproducibility_with_seeded_rng(self):
        a = random_ksat(15, 40, rng=np.random.default_rng(3))
        b = random_ksat(15, 40, rng=np.random.default_rng(3))
        assert a.clauses == b.clauses


class TestWalkSAT:
    def test_solves_planted_instances(self, rng):
        formula, _ = random_planted_ksat(40, 150, rng=rng)
        solver = WalkSAT(formula, WalkSATConfig(max_flips=200_000))
        for seed in range(3):
            result = solver.run(seed)
            assert result.solved
            assert formula.is_satisfied(result.solution)

    def test_flip_budget_censors(self, rng):
        formula, _ = random_planted_ksat(50, 210, rng=rng)
        solver = WalkSAT(formula, WalkSATConfig(max_flips=1))
        result = solver.run(0)
        assert result.iterations <= 1

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WalkSATConfig(max_flips=0)
        with pytest.raises(ValueError):
            WalkSATConfig(noise=1.5)
        with pytest.raises(ValueError):
            WalkSATConfig(restart_after=0)

    def test_restarts_are_counted(self, rng):
        formula, _ = random_planted_ksat(40, 160, rng=rng)
        solver = WalkSAT(formula, WalkSATConfig(max_flips=5000, restart_after=50))
        result = solver.run(2)
        assert result.restarts >= 0  # restarts may or may not trigger before solving

    def test_runtime_is_a_random_variable(self, rng):
        formula, _ = random_planted_ksat(40, 150, rng=rng)
        solver = WalkSAT(formula)
        flips = {solver.run(seed).iterations for seed in range(8)}
        assert len(flips) > 1

    def test_reproducibility(self, rng):
        formula, _ = random_planted_ksat(30, 110, rng=rng)
        solver = WalkSAT(formula)
        assert solver.run(5).iterations == solver.run(5).iterations
