"""Randomized quicksort as a Las Vegas algorithm."""


import numpy as np
import pytest

from repro.solvers.quicksort import RandomizedQuicksort


class TestRandomizedQuicksort:
    def test_always_sorts_correctly(self):
        algo = RandomizedQuicksort(n=128)
        for seed in range(5):
            result = algo.run(seed)
            assert result.solved
            assert np.all(np.diff(result.solution) >= 0)

    def test_custom_input_array(self):
        data = np.array([5, 3, 9, 1, 7])
        algo = RandomizedQuicksort(data=data)
        result = algo.run(0)
        np.testing.assert_array_equal(result.solution, np.sort(data))

    def test_comparison_count_is_random_variable(self):
        algo = RandomizedQuicksort(n=200)
        counts = {algo.run(seed).iterations for seed in range(10)}
        assert len(counts) > 1

    def test_mean_comparisons_match_exact_expectation(self):
        """E[comparisons] = 2(n+1)H_n - 4n for random-pivot quicksort."""
        n = 256
        algo = RandomizedQuicksort(n=n)
        counts = [algo.run(seed).iterations for seed in range(30)]
        harmonic = sum(1.0 / i for i in range(1, n + 1))
        expected = 2.0 * (n + 1) * harmonic - 4.0 * n
        assert np.mean(counts) == pytest.approx(expected, rel=0.1)

    def test_comparison_count_lower_bound(self):
        n = 64
        algo = RandomizedQuicksort(n=n)
        assert algo.run(0).iterations >= n - 1  # at least n-1 comparisons needed

    def test_input_validation(self):
        with pytest.raises(ValueError):
            RandomizedQuicksort(n=1)
        with pytest.raises(ValueError):
            RandomizedQuicksort(data=np.array([1]))

    def test_reproducibility(self):
        algo = RandomizedQuicksort(n=100)
        assert algo.run(9).iterations == algo.run(9).iterations

    def test_multiwalk_speedup_saturates_quickly(self):
        """Concentrated runtimes -> parallelisation barely helps (negative example)."""
        from repro.core.prediction import predict_speedup_empirical

        algo = RandomizedQuicksort(n=128)
        counts = [algo.run(seed).iterations for seed in range(60)]
        result = predict_speedup_empirical(counts, cores=[16, 256])
        assert result.speedup(256) < 2.0
