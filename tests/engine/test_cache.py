"""On-disk observation cache (repro.engine.cache)."""

import numpy as np
import pytest

from repro.csp.problems import CostasArrayProblem
from repro.engine.cache import ObservationCache, algorithm_fingerprint
from repro.engine.core import collect_batch
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.base import LasVegasAlgorithm, RunResult


class CountingAlgorithm(LasVegasAlgorithm):
    """Synthetic algorithm that counts how many runs were executed."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def _run(self, rng: np.random.Generator) -> RunResult:
        self.calls += 1
        return RunResult(solved=True, iterations=int(rng.integers(1, 100)), runtime_seconds=0.0)


class TestAlgorithmFingerprint:
    def test_same_construction_same_fingerprint(self):
        a = AdaptiveSearch(CostasArrayProblem(7), AdaptiveSearchConfig(max_iterations=100))
        b = AdaptiveSearch(CostasArrayProblem(7), AdaptiveSearchConfig(max_iterations=100))
        assert algorithm_fingerprint(a) == algorithm_fingerprint(b)

    def test_config_change_changes_fingerprint(self):
        a = AdaptiveSearch(CostasArrayProblem(7), AdaptiveSearchConfig(max_iterations=100))
        b = AdaptiveSearch(CostasArrayProblem(7), AdaptiveSearchConfig(max_iterations=200))
        assert algorithm_fingerprint(a) != algorithm_fingerprint(b)

    def test_problem_change_changes_fingerprint(self):
        a = AdaptiveSearch(CostasArrayProblem(7))
        b = AdaptiveSearch(CostasArrayProblem(8))
        assert algorithm_fingerprint(a) != algorithm_fingerprint(b)

    def test_same_shape_different_content_distinct(self):
        """Regression: two CNF formulas with identical (n_vars, n_clauses)
        but different clauses must not collide on one fingerprint."""
        from repro.sat.cnf import CNFFormula
        from repro.solvers.walksat import WalkSAT

        f1 = CNFFormula(3, [(1, 2), (-1, 3)])
        f2 = CNFFormula(3, [(-2, 3), (1, -3)])
        assert algorithm_fingerprint(WalkSAT(f1)) != algorithm_fingerprint(WalkSAT(f2))
        # ... while identical content still collides (cache hits work).
        f1_again = CNFFormula(3, [(1, 2), (-1, 3)])
        assert algorithm_fingerprint(WalkSAT(f1)) == algorithm_fingerprint(WalkSAT(f1_again))


class TestObservationCache:
    def test_round_trip(self, tmp_path):
        cache = ObservationCache(tmp_path)
        batch = collect_batch(CountingAlgorithm(), 10, base_seed=1, cache=cache)
        # Probe with a pristine object, as a later process would.
        loaded = cache.load(CountingAlgorithm(), 10, 1, label=batch.label)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.iterations, batch.iterations)
        np.testing.assert_array_equal(loaded.seeds, batch.seeds)

    def test_repeat_campaign_is_free(self, tmp_path):
        """A fresh process (fresh algorithm object) must hit the disk cache.

        The cache key is taken *before* any run executes, so the stored key
        matches what a pristine object in a later process will probe with —
        even for algorithms whose attributes mutate while running.
        """
        first = CountingAlgorithm()
        batch = collect_batch(first, 10, base_seed=1, cache=tmp_path)
        assert first.calls == 10
        fresh = CountingAlgorithm()  # simulates a new CLI invocation
        again = collect_batch(fresh, 10, base_seed=1, cache=tmp_path)
        assert fresh.calls == 0  # served from disk, nothing re-ran
        np.testing.assert_array_equal(again.iterations, batch.iterations)
        assert len(list(tmp_path.glob("observations-*.json"))) == 1

    def test_key_sensitive_to_seed_and_count(self, tmp_path):
        algo = CountingAlgorithm()
        cache = ObservationCache(tmp_path)
        keys = {
            cache.key(algo, 10, 1),
            cache.key(algo, 10, 2),
            cache.key(algo, 20, 1),
            cache.key(algo, 10, 1, label="other"),
        }
        assert len(keys) == 4
        assert cache.key(algo, 10, 1) == cache.key(algo, 10, 1)

    def test_miss_returns_none(self, tmp_path):
        cache = ObservationCache(tmp_path)
        assert cache.load(CountingAlgorithm(), 5, 0) is None

    def test_different_seed_triggers_fresh_campaign(self, tmp_path):
        algo = CountingAlgorithm()
        collect_batch(algo, 5, base_seed=1, cache=tmp_path)
        collect_batch(algo, 5, base_seed=2, cache=tmp_path)
        assert algo.calls == 10
        assert len(list(tmp_path.glob("observations-*.json"))) == 2

    def test_directory_created_on_demand(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        ObservationCache(target)
        assert target.is_dir()

    def test_cache_hit_emits_completion_event(self, tmp_path):
        """A warm-cache return still tells a progress display it finished."""
        collect_batch(CountingAlgorithm(), 5, base_seed=1, cache=tmp_path)
        events = []
        collect_batch(
            CountingAlgorithm(), 5, base_seed=1, cache=tmp_path, progress=events.append
        )
        assert len(events) == 1
        assert events[0].completed == events[0].total == 5
        assert events[0].fraction == 1.0

    def test_invalid_backend_rejected_even_on_warm_cache(self, tmp_path):
        """Backend validation must not depend on cache warmth."""
        collect_batch(CountingAlgorithm(), 5, base_seed=1, cache=tmp_path)
        with pytest.raises(ValueError, match="unknown backend"):
            collect_batch(CountingAlgorithm(), 5, base_seed=1, cache=tmp_path, backend="gpu")

    def test_cross_backend_cache_hit(self, tmp_path):
        """A batch collected serially satisfies a process-backend request."""
        solver = AdaptiveSearch(CostasArrayProblem(6), AdaptiveSearchConfig(max_iterations=50_000))
        first = collect_batch(solver, 6, base_seed=4, cache=tmp_path, backend="serial")
        second = collect_batch(solver, 6, base_seed=4, cache=tmp_path, backend="process", workers=2)
        np.testing.assert_array_equal(first.iterations, second.iterations)
        assert len(list(tmp_path.glob("observations-*.json"))) == 1
