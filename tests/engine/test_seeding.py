"""The shared seed-derivation primitive (repro.engine.seeding)."""

import numpy as np
import pytest

from repro.engine.seeding import spawn_seeds


class TestSpawnSeeds:
    def test_matches_seed_sequence_spawning(self):
        """The derivation is exactly SeedSequence spawning (the historical rule)."""
        seq = np.random.SeedSequence(42)
        reference = [int(s.generate_state(1)[0]) for s in seq.spawn(10)]
        assert spawn_seeds(42, 10) == reference

    def test_deterministic(self):
        assert spawn_seeds(7, 25) == spawn_seeds(7, 25)

    def test_base_seed_changes_everything(self):
        a = spawn_seeds(1, 20)
        b = spawn_seeds(2, 20)
        assert not set(a) & set(b)

    def test_prefix_stability(self):
        """Growing a campaign extends the seed list without perturbing it."""
        short = spawn_seeds(5, 10)
        long = spawn_seeds(5, 50)
        assert long[:10] == short

    def test_seeds_are_distinct(self):
        seeds = spawn_seeds(0, 1000)
        assert len(set(seeds)) == 1000

    def test_zero_runs_allowed(self):
        assert spawn_seeds(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_results_are_python_ints(self):
        assert all(type(s) is int for s in spawn_seeds(3, 5))
