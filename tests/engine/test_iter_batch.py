"""The streaming batch interface (iter_runs / iter_batch).

The incremental face of the engine inherits its hard invariant: the
``(index, result)`` pairs a batch yields form a permutation of the batch,
and reassembling them by index reproduces :func:`collect_batch` bit for
bit — on every backend, at any worker count.  Consumers acting on the
stream observe *when* runs finish without influencing *what* the runs are.
"""

import threading

import numpy as np
import pytest

from repro.engine.core import collect_batch, iter_batch, iter_runs
from repro.engine.distributed import DistributedBackend, run_worker
from repro.engine.lockstep import LockstepBackend
from repro.engine.seeding import spawn_seeds
from repro.sat import random_planted_ksat
from repro.solvers.base import LasVegasAlgorithm, RunResult
from repro.solvers.walksat import WalkSAT, WalkSATConfig


class _WorkerThread(threading.Thread):
    """run_worker in a thread, capturing its stats (or exception)."""

    def __init__(self, **kwargs):
        super().__init__(daemon=True)
        self.kwargs = kwargs
        self.stats = None
        self.error = None

    def run(self):
        try:
            self.stats = run_worker(**self.kwargs)
        except BaseException as exc:  # surfaced by tests via .error
            self.error = exc


class SyntheticAlgorithm(LasVegasAlgorithm):
    name = "synthetic"

    def _run(self, rng: np.random.Generator) -> RunResult:
        iterations = int(rng.integers(1, 1000))
        return RunResult(
            solved=bool(rng.random() < 0.7), iterations=iterations, runtime_seconds=0.0
        )


def _sat_solver() -> WalkSAT:
    formula, _ = random_planted_ksat(30, 126, rng=np.random.default_rng(11))
    return WalkSAT(formula, WalkSATConfig(max_flips=500))


def _reassemble(pairs, n_runs):
    """Check the permutation contract and return results in index order."""
    results = [None] * n_runs
    for index, result in pairs:
        assert results[index] is None, f"index {index} delivered twice"
        results[index] = result
    assert all(r is not None for r in results), "indices are not a full permutation"
    return results


def _assert_matches_collect_batch(results, reference):
    assert [r.iterations for r in results] == list(reference.iterations)
    assert [r.solved for r in results] == list(reference.solved)
    assert [r.seed for r in results] == list(reference.seeds)


class TestIterBatchBackends:
    """Satellite gate: iter_batch on every backend, workers 1 and 4."""

    N_RUNS = 12
    BASE_SEED = 17

    @pytest.fixture(scope="class")
    def reference(self):
        return collect_batch(
            _sat_solver(), self.N_RUNS, base_seed=self.BASE_SEED, backend="serial"
        )

    def _stream(self, backend, workers=None):
        return list(
            iter_batch(
                _sat_solver(),
                self.N_RUNS,
                base_seed=self.BASE_SEED,
                backend=backend,
                workers=workers,
            )
        )

    def test_serial(self, reference):
        results = _reassemble(self._stream("serial"), self.N_RUNS)
        _assert_matches_collect_batch(results, reference)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_thread(self, workers, reference):
        results = _reassemble(self._stream("thread", workers), self.N_RUNS)
        _assert_matches_collect_batch(results, reference)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_process(self, workers, reference):
        results = _reassemble(self._stream("process", workers), self.N_RUNS)
        _assert_matches_collect_batch(results, reference)

    @pytest.mark.parametrize("width", [1, 4])
    def test_lockstep(self, width, reference):
        results = _reassemble(
            self._stream(LockstepBackend(width=width)), self.N_RUNS
        )
        _assert_matches_collect_batch(results, reference)

    @pytest.mark.parametrize("n_workers", [1, 4])
    def test_distributed(self, n_workers, reference, tmp_path):
        backend = DistributedBackend(job_dir=tmp_path, poll_interval=0.01)
        workers = [
            _WorkerThread(job_dir=tmp_path, poll_interval=0.01)
            for _ in range(n_workers)
        ]
        for worker in workers:
            worker.start()
        try:
            results = _reassemble(self._stream(backend), self.N_RUNS)
        finally:
            backend.shutdown()
        for worker in workers:
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            if worker.error is not None:
                raise worker.error
        _assert_matches_collect_batch(results, reference)


class TestIterRuns:
    def test_explicit_seeds_and_indices(self):
        seeds = spawn_seeds(5, 8)[3:]  # a mid-stream slice, as the controller issues
        pairs = list(
            iter_runs(SyntheticAlgorithm(), seeds, indices=range(3, 8), backend="thread", workers=3)
        )
        assert sorted(index for index, _ in pairs) == [3, 4, 5, 6, 7]
        by_index = dict(pairs)
        # Same seeds run serially under default indices give the same results.
        serial = dict(iter_runs(SyntheticAlgorithm(), seeds))
        for offset, seed in enumerate(seeds):
            assert by_index[3 + offset].iterations == serial[offset].iterations
            assert by_index[3 + offset].seed == seed

    def test_mismatched_indices_rejected(self):
        with pytest.raises(ValueError, match="must pair up"):
            list(iter_runs(SyntheticAlgorithm(), [1, 2, 3], indices=[0, 1]))

    def test_iter_batch_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            list(iter_batch(SyntheticAlgorithm(), 0))

    def test_results_arrive_incrementally(self):
        """The iterator yields without waiting for the whole batch."""
        iterator = iter_batch(SyntheticAlgorithm(), 50, base_seed=3)
        first = next(iterator)
        assert isinstance(first[0], int)
        iterator.close()  # early stop must not raise
