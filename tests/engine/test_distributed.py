"""Distributed backend: equivalence, work stealing, failure modes, protocol.

The engine's hard invariant extends across hosts: a given ``base_seed``
yields bit-identical observations (iterations, solved flags, seeds) no
matter how many workers connect, which transport carried the units, or
which worker ran which ``(task, seed-block)``.  These tests pin it with
in-process workers (threads running :func:`run_worker`) on both the socket
and the job-directory transports, and exercise the failure paths: a worker
dying mid-unit, protocol-version mismatches, stale job-directory claims and
duplicate result submissions.
"""

import json
import os
import socket
import threading
import time

import numpy as np
import pytest

from repro.csp.problems import NQueensProblem
from repro.engine.core import collect_batch, resolve_backend, run_race
from repro.engine.distributed import (
    DistributedBackend,
    ProtocolError,
    UnitLedger,
    _recv,
    _send,
    execute_unit,
    run_worker,
)
from repro.engine.tasks import PROTOCOL_VERSION, RunTask, execute_run, shard_units
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.base import LasVegasAlgorithm, RunResult


class SyntheticAlgorithm(LasVegasAlgorithm):
    name = "synthetic"

    def _run(self, rng: np.random.Generator) -> RunResult:
        iterations = int(rng.integers(1, 1000))
        return RunResult(solved=True, iterations=iterations, runtime_seconds=0.0)


class NeverSolves(LasVegasAlgorithm):
    name = "never-solves"

    def _run(self, rng: np.random.Generator) -> RunResult:
        return RunResult(
            solved=False, iterations=int(rng.integers(10, 10_000)), runtime_seconds=0.0
        )


class AlwaysCrashes(LasVegasAlgorithm):
    name = "always-crashes"

    def _run(self, rng: np.random.Generator) -> RunResult:
        raise RuntimeError("deterministic solver bug")


def _nqueens() -> AdaptiveSearch:
    return AdaptiveSearch(NQueensProblem(8), AdaptiveSearchConfig(max_iterations=50_000))


def _deterministic_fields(batch) -> str:
    """The backend-invariant part of a batch, as canonical bytes."""
    payload = batch.to_dict()
    payload.pop("runtimes")  # wall clock is the one legitimately varying field
    return json.dumps(payload, sort_keys=True)


class _WorkerThread(threading.Thread):
    """run_worker in a thread, capturing its WorkerStats (or exception)."""

    def __init__(self, **kwargs):
        super().__init__(daemon=True)
        self.kwargs = kwargs
        self.stats = None
        self.error = None

    def run(self):
        try:
            self.stats = run_worker(**self.kwargs)
        except BaseException as exc:  # surfaced by tests via .error
            self.error = exc


@pytest.fixture
def socket_backend():
    backend = DistributedBackend(coordinator="127.0.0.1:0", poll_interval=0.01)
    backend.start()
    try:
        yield backend
    finally:
        backend.shutdown()


def _spawn_workers(n, **kwargs):
    kwargs.setdefault("poll_interval", 0.01)
    workers = [_WorkerThread(**kwargs) for _ in range(n)]
    for worker in workers:
        worker.start()
    return workers


def _join_workers(workers, timeout=10.0):
    for worker in workers:
        worker.join(timeout=timeout)
        assert not worker.is_alive(), "worker did not exit after coordinator shutdown"
        if worker.error is not None:
            raise worker.error
    return workers


class TestSocketEquivalence:
    def test_bit_identical_to_serial_on_real_solver(self, socket_backend):
        serial = collect_batch(_nqueens(), 12, base_seed=17)
        workers = _spawn_workers(2, coordinator=socket_backend.start())
        batch = collect_batch(_nqueens(), 12, base_seed=17, backend=socket_backend)
        assert _deterministic_fields(batch) == _deterministic_fields(serial)
        socket_backend.shutdown()
        _join_workers(workers)
        assert sum(w.stats.units_completed for w in workers) == 3  # 12 runs / unit_size 4

    def test_multiple_batches_share_one_coordinator(self, socket_backend):
        """A campaign runs several batches; workers stay connected between them."""
        workers = _spawn_workers(2, coordinator=socket_backend.start())
        for seed, n_runs in ((3, 40), (9, 17), (11, 5)):
            reference = collect_batch(SyntheticAlgorithm(), n_runs, base_seed=seed)
            batch = collect_batch(
                SyntheticAlgorithm(), n_runs, base_seed=seed, backend=socket_backend
            )
            np.testing.assert_array_equal(batch.iterations, reference.iterations)
            np.testing.assert_array_equal(batch.seeds, reference.seeds)
        socket_backend.shutdown()
        _join_workers(workers)

    def test_progress_events_cover_every_run_exactly_once(self, socket_backend):
        workers = _spawn_workers(2, coordinator=socket_backend.start())
        events = []
        collect_batch(
            SyntheticAlgorithm(), 30, base_seed=1, backend=socket_backend,
            progress=events.append,
        )
        assert sorted(e.index for e in events) == list(range(30))
        assert [e.completed for e in events] == list(range(1, 31))
        socket_backend.shutdown()
        _join_workers(workers)

    def test_run_race_through_distributed_backend(self, socket_backend):
        workers = _spawn_workers(2, coordinator=socket_backend.start())
        outcome = run_race(SyntheticAlgorithm(), 6, base_seed=5, backend=socket_backend)
        assert outcome.solved  # a solved walk decided the race and cancelled the rest
        # The *unsolved* outcome is deterministic (fewest iterations, lowest
        # index), so it must match the serial race exactly.
        distributed = run_race(NeverSolves(), 6, base_seed=11, backend=socket_backend)
        serial = run_race(NeverSolves(), 6, base_seed=11)
        assert distributed.winner_index == serial.winner_index
        assert distributed.winner_result.iterations == serial.winner_result.iterations
        socket_backend.shutdown()
        _join_workers(workers)


class TestJobDirEquivalence:
    def test_bit_identical_to_serial(self, tmp_path):
        serial = collect_batch(_nqueens(), 12, base_seed=17)
        backend = DistributedBackend(job_dir=tmp_path / "jobs", poll_interval=0.01)
        backend.start()
        workers = _spawn_workers(2, job_dir=tmp_path / "jobs")
        batch = collect_batch(_nqueens(), 12, base_seed=17, backend=backend)
        backend.shutdown()
        _join_workers(workers)
        assert _deterministic_fields(batch) == _deterministic_fields(serial)

    def test_round_trips_byte_identically_to_socket_path(self, tmp_path):
        """The two transports are interchangeable: same campaign, same bytes."""
        with DistributedBackend(coordinator="127.0.0.1:0", poll_interval=0.01) as sock_backend:
            sock_workers = _spawn_workers(2, coordinator=sock_backend.start())
            via_socket = collect_batch(_nqueens(), 10, base_seed=23, backend=sock_backend)
        _join_workers(sock_workers)

        with DistributedBackend(job_dir=tmp_path / "jobs", poll_interval=0.01) as dir_backend:
            dir_workers = _spawn_workers(2, job_dir=tmp_path / "jobs")
            via_job_dir = collect_batch(_nqueens(), 10, base_seed=23, backend=dir_backend)
        _join_workers(dir_workers)

        assert _deterministic_fields(via_socket) == _deterministic_fields(via_job_dir)

    def test_stale_claim_is_reissued(self, tmp_path):
        """A claim without a result is leased back after lease_seconds."""
        job_dir = tmp_path / "jobs"
        backend = DistributedBackend(
            job_dir=job_dir, poll_interval=0.01, lease_seconds=0.2, unit_size=4
        )
        backend.start()
        serial = collect_batch(SyntheticAlgorithm(), 12, base_seed=2)
        holder = []
        collector = threading.Thread(
            target=lambda: holder.append(
                collect_batch(SyntheticAlgorithm(), 12, base_seed=2, backend=backend)
            ),
            daemon=True,
        )
        collector.start()
        # Wait for the coordinator to publish the batch's unit files, then
        # simulate a worker that claimed the first unit and died: the claim
        # file exists (already stale) but no result will ever follow.
        deadline = time.monotonic() + 10.0
        while not list(job_dir.glob("batches/*/units/00000.unit")):
            assert time.monotonic() < deadline
            time.sleep(0.01)
        (batch_dir,) = [p for p in (job_dir / "batches").iterdir() if p.is_dir()]
        stale = batch_dir / "claims" / "00000.claim"
        stale.write_text(json.dumps({"worker": "dead-worker", "time": 0.0}))
        os.utime(stale, (time.time() - 60.0, time.time() - 60.0))

        workers = _spawn_workers(1, job_dir=job_dir)
        collector.join(timeout=30.0)
        assert not collector.is_alive()
        backend.shutdown()
        _join_workers(workers)
        np.testing.assert_array_equal(holder[0].iterations, serial.iterations)
        assert workers[0].stats.units_completed == 3  # incl. the re-issued unit

    def test_reusing_a_job_dir_across_campaigns_stays_correct(self, tmp_path):
        """Two coordinators sharing one job directory must not cross-read.

        Regression: batch ids used to restart at batch-0001 per coordinator,
        so a second campaign in the same directory consumed the first one's
        stale result files (or hung on its DONE marker); and the first
        campaign's STOP marker used to survive into the second, making its
        freshly launched workers exit on their first idle scan.  The
        per-coordinator run token and the STOP cleanup in start() prevent
        both — so this test launches the second campaign's worker *before*
        the second coordinator and cleans nothing up by hand.
        """
        job_dir = tmp_path / "jobs"
        serial_a = collect_batch(SyntheticAlgorithm(), 12, base_seed=2)
        serial_b = collect_batch(SyntheticAlgorithm(), 12, base_seed=999)
        for base_seed, reference in ((2, serial_a), (999, serial_b)):
            # Worker first: on round two it must survive the stale STOP
            # marker until the coordinator starts and clears it.
            workers = _spawn_workers(1, job_dir=job_dir)
            backend = DistributedBackend(job_dir=job_dir, poll_interval=0.01)
            backend.start()
            batch = collect_batch(
                SyntheticAlgorithm(), 12, base_seed=base_seed, backend=backend
            )
            backend.shutdown()
            _join_workers(workers)
            np.testing.assert_array_equal(batch.iterations, reference.iterations)
            np.testing.assert_array_equal(batch.seeds, reference.seeds)


class TestWorkerDeath:
    def test_unit_reissued_without_duplicate_observations(self, socket_backend):
        """A worker that takes a unit and dies must not lose or duplicate runs."""
        address = socket_backend.start()
        events = []
        collector = threading.Thread(
            target=lambda: events.append(
                collect_batch(
                    SyntheticAlgorithm(), 12, base_seed=17, backend=socket_backend,
                    progress=events.append,
                )
            ),
            daemon=True,
        )
        collector.start()

        # A doomed worker: handshakes, checks out one unit, then drops dead.
        host, _, port = address.rpartition(":")
        doomed = socket.create_connection((host, int(port)))
        stream = doomed.makefile("rwb")
        _send(stream, {"type": "hello", "protocol": PROTOCOL_VERSION, "worker": "doomed"})
        assert _recv(stream)["type"] == "welcome"
        reply = {"type": "idle"}
        deadline = time.monotonic() + 10.0
        while reply["type"] == "idle":  # the batch may not have started yet
            assert time.monotonic() < deadline
            _send(stream, {"type": "request"})
            reply = _recv(stream)
        assert reply["type"] == "unit"
        # Die holding the unit -> the coordinator must re-issue it.  Close the
        # stream too: makefile() holds a dup of the fd, and the FIN only goes
        # out (as it would when a worker process dies) once both are closed.
        stream.close()
        doomed.close()

        survivors = _spawn_workers(1, coordinator=address)
        collector.join(timeout=30.0)
        assert not collector.is_alive()
        socket_backend.shutdown()
        _join_workers(survivors)

        batch = events[-1]
        progress = events[:-1]
        assert sorted(e.index for e in progress) == list(range(12))  # no dupes, no holes
        reference = collect_batch(SyntheticAlgorithm(), 12, base_seed=17)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)
        np.testing.assert_array_equal(batch.seeds, reference.seeds)


class TestFailingUnits:
    def test_socket_batch_fails_loudly_after_retries(self, socket_backend):
        """A deterministically-crashing payload must not hang the campaign:
        the unit is retried max_unit_failures times, the worker survives,
        and the batch raises with the underlying error."""
        workers = _spawn_workers(1, coordinator=socket_backend.start())
        with pytest.raises(RuntimeError, match="deterministic solver bug"):
            collect_batch(AlwaysCrashes(), 4, base_seed=0, backend=socket_backend)
        # The worker is still alive and serves the next (healthy) batch.
        batch = collect_batch(SyntheticAlgorithm(), 8, base_seed=1, backend=socket_backend)
        reference = collect_batch(SyntheticAlgorithm(), 8, base_seed=1)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)
        socket_backend.shutdown()
        _join_workers(workers)

    def test_job_dir_batch_fails_loudly_after_retries(self, tmp_path):
        job_dir = tmp_path / "jobs"
        backend = DistributedBackend(job_dir=job_dir, poll_interval=0.01, unit_size=4)
        backend.start()
        workers = _spawn_workers(1, job_dir=job_dir)
        try:
            with pytest.raises(RuntimeError, match="deterministic solver bug"):
                collect_batch(AlwaysCrashes(), 4, base_seed=0, backend=backend)
        finally:
            backend.shutdown()
        _join_workers(workers)

    def test_ledger_fail_retries_then_gives_up(self):
        payloads = [RunTask(SyntheticAlgorithm(), i, i) for i in range(4)]
        units = shard_units(execute_run, payloads, task_id="t", unit_size=4)
        ledger = UnitLedger(units, max_failures=3)
        unit = ledger.checkout("w")
        assert ledger.fail(unit.unit_id, "boom", "w")  # retry 1: requeued
        assert ledger.checkout("w").unit_id == unit.unit_id
        assert ledger.fail(unit.unit_id, "boom", "w")  # retry 2: requeued
        ledger.checkout("w")
        assert not ledger.fail(unit.unit_id, "boom", "w")  # third strike
        failure = ledger.results.get_nowait()
        assert failure.unit_id == unit.unit_id and "boom" in failure.reason
        assert ledger.done  # the batch terminates instead of hanging

    def test_ledger_speculative_reissue_of_stale_unit(self):
        payloads = [RunTask(SyntheticAlgorithm(), i, i) for i in range(4)]
        units = shard_units(execute_run, payloads, task_id="t", unit_size=4)
        ledger = UnitLedger(units, lease_seconds=0.05)
        unit = ledger.checkout("slow-worker")
        assert ledger.checkout("idle-worker") is None  # lease not expired yet
        time.sleep(0.08)
        stolen = ledger.checkout("idle-worker")
        assert stolen is not None and stolen.unit_id == unit.unit_id
        assert ledger.reissues == 1
        # Whichever copy finishes first wins; the duplicate is dropped.
        assert ledger.complete(execute_unit(unit))
        assert not ledger.complete(execute_unit(stolen))
        # The slow worker dying afterwards must not resurrect the unit.
        assert ledger.release_owner("slow-worker") == 0
        assert ledger.done


class TestProtocol:
    def test_coordinator_refuses_mismatched_protocol_version(self, socket_backend):
        host, _, port = socket_backend.start().rpartition(":")
        conn = socket.create_connection((host, int(port)))
        stream = conn.makefile("rwb")
        _send(stream, {"type": "hello", "protocol": 999, "worker": "from-the-future"})
        reply = _recv(stream)
        assert reply["type"] == "error"
        assert "mismatch" in reply["reason"]
        assert str(PROTOCOL_VERSION) in reply["reason"]
        assert stream.readline() == b""  # coordinator closed the connection
        conn.close()

    def test_worker_raises_on_coordinator_rejection(self):
        """run_worker surfaces the coordinator's rejection as ProtocolError."""

        def fake_coordinator(server: socket.socket) -> None:
            conn, _ = server.accept()
            with conn, conn.makefile("rwb") as stream:
                _recv(stream)  # the hello
                _send(stream, {"type": "error", "reason": "protocol version mismatch: nope"})

        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen()
        port = server.getsockname()[1]
        thread = threading.Thread(target=fake_coordinator, args=(server,), daemon=True)
        thread.start()
        try:
            with pytest.raises(ProtocolError, match="mismatch"):
                run_worker(coordinator=f"127.0.0.1:{port}", connect_timeout=5.0)
        finally:
            thread.join(timeout=5.0)
            server.close()

    def test_job_dir_worker_refuses_mismatched_meta(self, tmp_path):
        job_dir = tmp_path / "jobs"
        job_dir.mkdir()
        (job_dir / "meta.json").write_text(json.dumps({"protocol": 999}))
        with pytest.raises(ProtocolError, match="protocol"):
            run_worker(job_dir=job_dir, connect_timeout=1.0)

    def test_job_dir_coordinator_refuses_mismatched_meta(self, tmp_path):
        job_dir = tmp_path / "jobs"
        job_dir.mkdir()
        (job_dir / "meta.json").write_text(json.dumps({"protocol": 999}))
        backend = DistributedBackend(job_dir=job_dir)
        with pytest.raises(ProtocolError, match="protocol"):
            backend.start()


class TestUnitLedger:
    def _units(self, n=4):
        payloads = [RunTask(SyntheticAlgorithm(), i, i) for i in range(n * 2)]
        return shard_units(execute_run, payloads, task_id="batch-t", unit_size=2)

    def test_checkout_exhausts_then_none(self):
        ledger = UnitLedger(self._units())
        seen = [ledger.checkout("w") for _ in range(ledger.n_units)]
        assert all(unit is not None for unit in seen)
        assert len({unit.unit_id for unit in seen}) == ledger.n_units
        assert ledger.checkout("w") is None

    def test_duplicate_results_are_dropped(self):
        ledger = UnitLedger(self._units())
        unit = ledger.checkout("w")
        first = execute_unit(unit)
        assert ledger.complete(first)
        assert not ledger.complete(first)  # idempotent dedup on unit_id
        assert not ledger.complete(execute_unit(unit))
        assert ledger.results.qsize() == 1

    def test_release_owner_requeues_only_that_workers_units(self):
        ledger = UnitLedger(self._units())
        mine = ledger.checkout("alive")
        lost_a = ledger.checkout("dead")
        lost_b = ledger.checkout("dead")
        assert ledger.release_owner("dead") == 2
        assert ledger.reissues == 2
        reissued = {ledger.checkout("alive").unit_id for _ in range(3)}
        assert {lost_a.unit_id, lost_b.unit_id} <= reissued
        assert mine.unit_id not in reissued

    def test_completed_units_are_not_requeued(self):
        ledger = UnitLedger(self._units())
        unit = ledger.checkout("w")
        ledger.complete(execute_unit(unit))
        assert not ledger.requeue(unit.unit_id)
        assert ledger.release_owner("w") == 0

    def test_cancel_stops_issuing_and_accepting(self):
        ledger = UnitLedger(self._units())
        unit = ledger.checkout("w")
        ledger.cancel()
        assert ledger.checkout("w") is None
        assert not ledger.complete(execute_unit(unit))


class TestUnitCache:
    def test_workers_reuse_unit_results_across_batches(self, tmp_path, socket_backend):
        cache_dir = tmp_path / "cache"
        workers = _spawn_workers(1, coordinator=socket_backend.start(), cache_dir=cache_dir)
        first = collect_batch(SyntheticAlgorithm(), 12, base_seed=6, backend=socket_backend)
        again = collect_batch(SyntheticAlgorithm(), 12, base_seed=6, backend=socket_backend)
        socket_backend.shutdown()
        _join_workers(workers)
        np.testing.assert_array_equal(first.iterations, again.iterations)
        stats = workers[0].stats
        assert stats.units_completed == 6  # both batches were served in full
        assert stats.cache_hits == 3  # ...but the repeat batch came from cache
        assert len(list((cache_dir / "units").glob("unit-*.pkl"))) == 3


class TestBackendConfiguration:
    def test_resolve_backend_requires_a_transport(self):
        with pytest.raises(ValueError, match="--coordinator or --job-dir"):
            resolve_backend("distributed")

    def test_rejects_workers_argument(self):
        with pytest.raises(ValueError, match="no local pool"):
            DistributedBackend(coordinator="127.0.0.1:0", workers=4)

    def test_rejects_both_transports(self, tmp_path):
        with pytest.raises(ValueError, match="exactly one transport"):
            DistributedBackend(coordinator="127.0.0.1:0", job_dir=tmp_path)

    def test_worker_rejects_distributed_executor(self):
        with pytest.raises(ValueError, match="per-host backend"):
            run_worker(
                coordinator="127.0.0.1:9",
                executor=DistributedBackend(coordinator="127.0.0.1:0"),
            )

    def test_describe_names_the_transport(self, tmp_path):
        assert "coordinator=" in DistributedBackend(coordinator="h:1").describe()
        assert "job_dir=" in DistributedBackend(job_dir=tmp_path).describe()

    def test_shard_units_covers_payloads_in_order(self):
        units = shard_units(execute_run, list(range(10)), task_id="t", unit_size=4)
        assert [u.payloads for u in units] == [(0, 1, 2, 3), (4, 5, 6, 7), (8, 9)]
        assert [u.unit_id for u in units] == ["t/0", "t/1", "t/2"]

    def test_unit_fingerprint_is_content_addressed(self):
        a, b = shard_units(execute_run, list(range(8)), task_id="a", unit_size=4)
        (a2,) = shard_units(execute_run, list(range(4)), task_id="z", unit_size=4)
        assert a.fingerprint() == a2.fingerprint()  # same work, different task ids
        assert a.fingerprint() != b.fingerprint()  # different payloads

    def test_batch_timeout_raises_without_workers(self):
        backend = DistributedBackend(coordinator="127.0.0.1:0", batch_timeout=0.3)
        backend.start()
        try:
            with pytest.raises(RuntimeError, match="no progress"):
                collect_batch(SyntheticAlgorithm(), 4, base_seed=0, backend=backend)
        finally:
            backend.shutdown()


class TestSATWorkloadFamilies:
    """ISSUE-5 acceptance: the uniform-ratio and DIMACS SAT workloads (and
    the non-default policies) flow end-to-end through the distributed
    backend + observation cache, bit-identical to serial collection."""

    @pytest.mark.parametrize(
        "overrides",
        [
            pytest.param({"sat_family": "uniform"}, id="uniform"),
            pytest.param({"sat_family": "dimacs"}, id="dimacs"),
            pytest.param({"sat_family": "uniform", "sat_policy": "novelty+"}, id="uniform-novelty+"),
        ],
    )
    def test_sat_campaign_jobdir_bit_identical_to_serial(self, tmp_path, overrides):
        import dataclasses

        from repro.experiments.config import ExperimentConfig
        from repro.experiments.data import clear_observation_cache, collect_sat_observations

        config = dataclasses.replace(
            ExperimentConfig.tiny(), n_sequential_runs=8, **overrides
        )
        clear_observation_cache()
        serial = collect_sat_observations(config, cache_dir=tmp_path / "serial")["SAT"]
        clear_observation_cache()
        backend = DistributedBackend(job_dir=tmp_path / "jobs", poll_interval=0.01)
        backend.start()
        workers = _spawn_workers(2, job_dir=tmp_path / "jobs")
        try:
            distributed = collect_sat_observations(
                config, cache_dir=tmp_path / "dist", backend=backend
            )["SAT"]
        finally:
            backend.shutdown()
            _join_workers(workers)
            clear_observation_cache()
        assert _deterministic_fields(distributed) == _deterministic_fields(serial)
        # Both collections persisted the batch under the same content address.
        serial_files = sorted(p.name for p in (tmp_path / "serial").glob("*.json"))
        dist_files = sorted(p.name for p in (tmp_path / "dist").glob("*.json"))
        assert serial_files == dist_files and len(serial_files) == 1


class SlowAlgorithm(LasVegasAlgorithm):
    """Deterministic iterations, but slow enough to outlive a short lease."""

    name = "slow"

    def _run(self, rng: np.random.Generator) -> RunResult:
        time.sleep(0.08)
        return RunResult(solved=True, iterations=int(rng.integers(1, 1000)), runtime_seconds=0.0)


class TestWorkerAuth:
    """PROTOCOL v2: the socket handshake carries a shared worker token."""

    def test_authenticated_workers_serve_batches(self):
        backend = DistributedBackend(
            coordinator="127.0.0.1:0", poll_interval=0.01, auth_token="fleet-secret"
        )
        backend.start()
        workers = _spawn_workers(2, coordinator=backend.start(), token="fleet-secret")
        try:
            batch = collect_batch(
                SyntheticAlgorithm(), 12, base_seed=3, backend=backend
            )
        finally:
            backend.shutdown()
        _join_workers(workers)
        reference = collect_batch(SyntheticAlgorithm(), 12, base_seed=3)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)
        np.testing.assert_array_equal(batch.seeds, reference.seeds)

    @pytest.mark.parametrize("bad_token", [None, "wrong"], ids=["missing", "wrong"])
    def test_unauthenticated_worker_is_refused(self, bad_token):
        backend = DistributedBackend(
            coordinator="127.0.0.1:0", poll_interval=0.01, auth_token="fleet-secret"
        )
        address = backend.start()
        try:
            worker = _spawn_workers(1, coordinator=address, token=bad_token)[0]
            worker.join(timeout=10.0)
            assert not worker.is_alive()
            assert isinstance(worker.error, ProtocolError)
            assert "authentication failed" in str(worker.error)
        finally:
            backend.shutdown()

    def test_refused_worker_does_not_poison_the_fleet(self):
        """An auth failure affects that connection only; good workers serve on."""
        backend = DistributedBackend(
            coordinator="127.0.0.1:0", poll_interval=0.01, auth_token="fleet-secret"
        )
        address = backend.start()
        bad = _spawn_workers(1, coordinator=address, token="wrong")[0]
        bad.join(timeout=10.0)
        good = _spawn_workers(1, coordinator=address, token="fleet-secret")
        try:
            batch = collect_batch(SyntheticAlgorithm(), 8, base_seed=5, backend=backend)
        finally:
            backend.shutdown()
        _join_workers(good)
        reference = collect_batch(SyntheticAlgorithm(), 8, base_seed=5)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)

    def test_auth_token_requires_socket_transport(self, tmp_path):
        with pytest.raises(ValueError, match="socket transport"):
            DistributedBackend(job_dir=tmp_path / "jobs", auth_token="x")
        with pytest.raises(ValueError, match="socket transport"):
            run_worker(job_dir=tmp_path / "jobs", token="x")

    def test_tokenless_coordinator_accepts_tokenless_worker(self, socket_backend):
        """No auth configured (the pre-v2 default) keeps working unchanged."""
        workers = _spawn_workers(1, coordinator=socket_backend.start())
        batch = collect_batch(SyntheticAlgorithm(), 8, base_seed=7, backend=socket_backend)
        socket_backend.shutdown()
        _join_workers(workers)
        reference = collect_batch(SyntheticAlgorithm(), 8, base_seed=7)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)


class TestHeartbeats:
    """PROTOCOL v2: workers heartbeat mid-unit to refresh their leases."""

    def test_touch_refreshes_every_lease_of_the_owner(self):
        units = shard_units(
            execute_run,
            [RunTask(SyntheticAlgorithm(), i, seed=i) for i in range(8)],
            task_id="hb",
            unit_size=4,
        )
        ledger = UnitLedger(units, lease_seconds=0.25)
        first = ledger.checkout("w1")
        assert first is not None
        # Keep touching across several lease spans: the unit must never be
        # speculatively re-issued to the second worker.
        deadline = time.monotonic() + 0.8
        other = []
        while time.monotonic() < deadline:
            assert ledger.touch("w1") == 1
            got = ledger.checkout("w2")
            if got is not None:
                other.append(got.unit_id)
            time.sleep(0.05)
        assert first.unit_id not in other

    def test_stale_lease_without_heartbeat_is_reissued(self):
        units = shard_units(
            execute_run,
            [RunTask(SyntheticAlgorithm(), i, seed=i) for i in range(4)],
            task_id="hb2",
            unit_size=4,
        )
        ledger = UnitLedger(units, lease_seconds=0.1)
        first = ledger.checkout("w1")
        time.sleep(0.25)  # no touch: the lease lapses
        again = ledger.checkout("w2")
        assert again is not None and again.unit_id == first.unit_id

    def test_touch_unknown_owner_is_a_noop(self):
        units = shard_units(
            execute_run,
            [RunTask(SyntheticAlgorithm(), 0, seed=0)],
            task_id="hb3",
            unit_size=1,
        )
        ledger = UnitLedger(units, lease_seconds=10.0)
        assert ledger.touch("ghost") == 0

    def test_heartbeats_prevent_speculative_reissue_of_slow_units(self):
        """A unit slower than the lease stays with its worker: heartbeats
        refresh the lease, so no unit is ever executed twice."""
        backend = DistributedBackend(
            coordinator="127.0.0.1:0",
            poll_interval=0.01,
            lease_seconds=0.2,
            unit_size=4,  # 4 runs x ~80ms >> the 200ms lease
        )
        backend.start()
        workers = _spawn_workers(
            2, coordinator=backend.start(), heartbeat_seconds=0.05
        )
        try:
            batch = collect_batch(SlowAlgorithm(), 16, base_seed=13, backend=backend)
        finally:
            backend.shutdown()
        _join_workers(workers)
        # Every unit ran exactly once across the fleet: the lease never
        # lapsed, so the ledger never re-issued one speculatively.
        assert sum(w.stats.units_completed for w in workers) == 4
        reference = collect_batch(SlowAlgorithm(), 16, base_seed=13)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)
        np.testing.assert_array_equal(batch.seeds, reference.seeds)

    def test_killed_heartbeating_worker_still_completes_campaign(self):
        """ISSUE-9 acceptance: a worker that heartbeats, takes a unit and is
        killed mid-campaign neither hangs nor duplicates observations."""
        backend = DistributedBackend(
            coordinator="127.0.0.1:0", poll_interval=0.01, lease_seconds=30.0
        )
        address = backend.start()
        events = []
        collector = threading.Thread(
            target=lambda: events.append(
                collect_batch(
                    SlowAlgorithm(), 12, base_seed=17, backend=backend,
                    progress=events.append,
                )
            ),
            daemon=True,
        )
        collector.start()

        # A doomed worker that handshakes, takes a unit and heartbeats a few
        # times (refreshing its long lease) before dying: completion must
        # come from the disconnect requeue, not from lease expiry.
        host, _, port = address.rpartition(":")
        doomed = socket.create_connection((host, int(port)))
        stream = doomed.makefile("rwb")
        _send(stream, {"type": "hello", "protocol": PROTOCOL_VERSION, "worker": "doomed"})
        assert _recv(stream)["type"] == "welcome"
        reply = {"type": "idle"}
        deadline = time.monotonic() + 10.0
        while reply["type"] == "idle":
            assert time.monotonic() < deadline
            _send(stream, {"type": "request"})
            reply = _recv(stream)
        assert reply["type"] == "unit"
        for _ in range(3):
            _send(stream, {"type": "heartbeat", "worker": "doomed"})
            time.sleep(0.02)
        stream.close()
        doomed.close()

        survivors = _spawn_workers(1, coordinator=address, heartbeat_seconds=0.05)
        collector.join(timeout=30.0)
        assert not collector.is_alive()
        backend.shutdown()
        _join_workers(survivors)

        batch = events[-1]
        progress = events[:-1]
        assert sorted(e.index for e in progress) == list(range(12))  # no dupes, no holes
        reference = collect_batch(SlowAlgorithm(), 12, base_seed=17)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)
        np.testing.assert_array_equal(batch.seeds, reference.seeds)


class TestGracefulDrain:
    def test_shutdown_waits_for_inflight_batch(self):
        backend = DistributedBackend(
            coordinator="127.0.0.1:0", poll_interval=0.01, unit_size=4
        )
        address = backend.start()
        workers = _spawn_workers(1, coordinator=address, heartbeat_seconds=0.05)
        holder = []
        collector = threading.Thread(
            target=lambda: holder.append(
                collect_batch(SlowAlgorithm(), 8, base_seed=2, backend=backend)
            ),
            daemon=True,
        )
        collector.start()
        time.sleep(0.15)  # let the batch get in flight
        backend.shutdown(drain_seconds=30.0)  # returns once the ledger drains
        collector.join(timeout=10.0)
        assert not collector.is_alive()
        _join_workers(workers)
        assert holder and holder[0].n_runs == 8
        reference = collect_batch(SlowAlgorithm(), 8, base_seed=2)
        np.testing.assert_array_equal(holder[0].iterations, reference.iterations)

    def test_shutdown_without_drain_is_immediate(self, socket_backend):
        start = time.monotonic()
        socket_backend.shutdown()
        assert time.monotonic() - start < 1.0
