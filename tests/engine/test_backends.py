"""Backend equivalence and the race primitive (repro.engine).

The engine's hard invariant: a given base seed yields bit-identical
iteration counts on every backend at any worker count.  These tests pin it
on real solvers (N-Queens and Costas array, per the paper's benchmark
family) and on synthetic algorithms for the scheduling corner cases.
"""

import numpy as np
import pytest

from repro.csp.problems import CostasArrayProblem, NQueensProblem
from repro.engine.backends import (
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_worker_count,
)
from repro.engine.core import collect_batch, resolve_backend, run_race
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.base import LasVegasAlgorithm, RunResult


class SyntheticAlgorithm(LasVegasAlgorithm):
    name = "synthetic"

    def _run(self, rng: np.random.Generator) -> RunResult:
        iterations = int(rng.integers(1, 1000))
        return RunResult(solved=True, iterations=iterations, runtime_seconds=0.0)


def _problem(kind: str):
    if kind == "nqueens":
        return AdaptiveSearch(NQueensProblem(8), AdaptiveSearchConfig(max_iterations=50_000))
    return AdaptiveSearch(CostasArrayProblem(7), AdaptiveSearchConfig(max_iterations=50_000))


@pytest.fixture(scope="module")
def serial_reference():
    """Serial-backend batches for both problems (the ground truth)."""
    return {
        kind: collect_batch(_problem(kind), 12, base_seed=17, backend="serial")
        for kind in ("nqueens", "costas")
    }


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    @pytest.mark.parametrize("kind", ["nqueens", "costas"])
    def test_identical_observations_across_backends(self, backend, kind, serial_reference):
        reference = serial_reference[kind]
        workers = None if backend == "serial" else 2
        batch = collect_batch(_problem(kind), 12, base_seed=17, backend=backend, workers=workers)
        np.testing.assert_array_equal(batch.iterations, reference.iterations)
        np.testing.assert_array_equal(batch.solved, reference.solved)
        np.testing.assert_array_equal(batch.seeds, reference.seeds)
        assert batch.label == reference.label

    @pytest.mark.parametrize("workers", [1, 2, 5])
    def test_worker_count_does_not_change_results(self, workers):
        reference = collect_batch(SyntheticAlgorithm(), 40, base_seed=3)
        batch = collect_batch(
            SyntheticAlgorithm(), 40, base_seed=3, backend="thread", workers=workers
        )
        np.testing.assert_array_equal(batch.iterations, reference.iterations)

    def test_matches_legacy_sequential_runner(self):
        """The engine reproduces the pre-engine run_sequential_batch output."""
        from repro.multiwalk.runner import run_sequential_batch

        engine_batch = collect_batch(SyntheticAlgorithm(), 30, base_seed=9)
        runner_batch = run_sequential_batch(SyntheticAlgorithm(), 30, base_seed=9)
        np.testing.assert_array_equal(engine_batch.iterations, runner_batch.iterations)


class TestCollectBatch:
    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            collect_batch(SyntheticAlgorithm(), 0)

    def test_progress_events_cover_every_run(self):
        events = []
        collect_batch(SyntheticAlgorithm(), 15, base_seed=1, progress=events.append)
        assert len(events) == 15
        assert [e.completed for e in events] == list(range(1, 16))
        assert sorted(e.index for e in events) == list(range(15))
        assert all(e.total == 15 for e in events)
        assert events[-1].fraction == 1.0
        assert all(e.elapsed_seconds >= 0.0 for e in events)

    def test_progress_events_on_threaded_backend(self):
        events = []
        collect_batch(
            SyntheticAlgorithm(), 15, base_seed=1,
            backend="thread", workers=3, progress=events.append,
        )
        assert sorted(e.index for e in events) == list(range(15))

    def test_custom_label(self):
        batch = collect_batch(SyntheticAlgorithm(), 5, label="my-batch")
        assert batch.label == "my-batch"


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)
        assert isinstance(resolve_backend("serial"), SerialBackend)

    def test_named_backends(self):
        assert isinstance(resolve_backend("thread", 2), ThreadBackend)
        assert isinstance(resolve_backend("process", 2), ProcessBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(workers=3)
        assert resolve_backend(backend) is backend
        with pytest.raises(ValueError):
            resolve_backend(backend, workers=2)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("gpu")

    def test_serial_rejects_extra_workers(self):
        with pytest.raises(ValueError):
            resolve_backend("serial", workers=4)

    def test_default_worker_count(self):
        assert default_worker_count(None) >= 1
        assert default_worker_count(3) == 3
        with pytest.raises(ValueError):
            default_worker_count(0)


class TestRunRace:
    def test_first_solved_walk_wins_serially(self):
        outcome = run_race(SyntheticAlgorithm(), 8, base_seed=5)
        assert outcome.solved
        assert outcome.winner_index == 0  # synthetic always solves
        assert outcome.n_completed == 1  # remaining walks were cancelled

    def test_unsolved_tie_break_lowest_index(self):
        class NeverSolves(LasVegasAlgorithm):
            name = "never-solves"

            def _run(self, rng: np.random.Generator) -> RunResult:
                return RunResult(solved=False, iterations=50, runtime_seconds=0.0)

        outcome = run_race(NeverSolves(), 5, base_seed=0)
        assert not outcome.solved
        assert outcome.winner_index == 0
        assert outcome.n_completed == 5  # nothing solved, so all walks ran

    def test_unsolved_winner_has_fewest_iterations(self):
        class BudgetByIndex(LasVegasAlgorithm):
            """Deterministically unsolved, with distinct per-seed budgets."""

            name = "budget-by-index"

            def _run(self, rng: np.random.Generator) -> RunResult:
                return RunResult(
                    solved=False,
                    iterations=int(rng.integers(10, 10_000)),
                    runtime_seconds=0.0,
                )

        serial = run_race(BudgetByIndex(), 6, base_seed=11)
        threaded = run_race(BudgetByIndex(), 6, base_seed=11, backend="thread", workers=3)
        assert serial.winner_index == threaded.winner_index
        assert serial.winner_result.iterations == threaded.winner_result.iterations

    def test_thread_race_returns_before_slow_walks_finish(self):
        """Regression: a solved walk must decide the race immediately; the
        thread backend may not block until in-flight losers drain."""
        import threading
        import time as _time

        class FirstFastRestSlow(LasVegasAlgorithm):
            name = "first-fast-rest-slow"

            def __init__(self):
                self._lock = threading.Lock()
                self._calls = 0

            def _run(self, rng: np.random.Generator) -> RunResult:
                with self._lock:
                    first = self._calls == 0
                    self._calls += 1
                if not first:
                    _time.sleep(2.0)
                return RunResult(solved=True, iterations=1, runtime_seconds=0.0)

        outcome = run_race(FirstFastRestSlow(), 4, base_seed=0, backend="thread", workers=4)
        assert outcome.solved
        assert outcome.wall_clock_seconds < 1.0  # did not wait for the sleepers

    def test_race_on_real_solver_process_backend(self):
        solver = AdaptiveSearch(CostasArrayProblem(6), AdaptiveSearchConfig(max_iterations=50_000))
        outcome = run_race(solver, 2, base_seed=0, backend="process", workers=2)
        assert outcome.solved
        assert solver.problem.is_solution(outcome.winner_result.solution)
        assert outcome.wall_clock_seconds > 0.0

    def test_rejects_zero_walks(self):
        with pytest.raises(ValueError):
            run_race(SyntheticAlgorithm(), 0)
