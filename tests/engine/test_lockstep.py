"""The lockstep backend: SIMD batching behind the engine's backend seam.

The backend inherits the engine's hard invariant from the kernel's
bit-identity contract (``tests/sat/test_vectorized.py``); here we pin the
*wiring*: collect_batch/run_race observations equal to serial at every
width, block chunking, the serial fallback for non-lockstep algorithms and
payloads, and the resolve_backend/CLI validation surface.
"""

import numpy as np
import pytest

from repro.csp.problems import NQueensProblem
from repro.engine import LockstepBackend, collect_batch, resolve_backend, run_race
from repro.engine.tasks import execute_run
from repro.evaluation import LOCKSTEP_PATH, supports_lockstep
from repro.sat import random_planted_ksat
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.walksat import WalkSAT, WalkSATConfig


def _sat_solver(policy: str = "walksat", restart_after: int | None = None) -> WalkSAT:
    formula, _ = random_planted_ksat(30, 126, rng=np.random.default_rng(11))
    config = WalkSATConfig(max_flips=500, policy=policy, restart_after=restart_after)
    return WalkSAT(formula, config)


def _assert_batches_equal(batch, reference) -> None:
    np.testing.assert_array_equal(batch.iterations, reference.iterations)
    np.testing.assert_array_equal(batch.solved, reference.solved)
    np.testing.assert_array_equal(batch.seeds, reference.seeds)
    assert batch.label == reference.label


class TestLockstepCollectBatch:
    @pytest.mark.parametrize("width", [None, 1, 7, 64])
    def test_identical_observations_to_serial(self, width):
        solver = _sat_solver()
        reference = collect_batch(solver, 20, base_seed=17, backend="serial")
        backend = "lockstep" if width is None else LockstepBackend(width=width)
        batch = collect_batch(solver, 20, base_seed=17, backend=backend)
        _assert_batches_equal(batch, reference)

    def test_identical_with_restarts(self):
        solver = _sat_solver(restart_after=40)
        reference = collect_batch(solver, 15, base_seed=5, backend="serial")
        batch = collect_batch(solver, 15, base_seed=5, backend="lockstep")
        _assert_batches_equal(batch, reference)

    def test_scalar_fallback_for_unvectorised_policy(self):
        solver = _sat_solver(policy="novelty+")
        assert not supports_lockstep(solver)
        reference = collect_batch(solver, 10, base_seed=3, backend="serial")
        batch = collect_batch(solver, 10, base_seed=3, backend="lockstep")
        _assert_batches_equal(batch, reference)

    def test_scalar_fallback_for_non_sat_algorithms(self):
        solver = AdaptiveSearch(NQueensProblem(8), AdaptiveSearchConfig(max_iterations=50_000))
        assert not supports_lockstep(solver)
        reference = collect_batch(solver, 8, base_seed=2, backend="serial")
        batch = collect_batch(solver, 8, base_seed=2, backend="lockstep")
        _assert_batches_equal(batch, reference)


class TestLockstepRace:
    def test_same_winner_as_serial(self):
        solver = _sat_solver()
        reference = run_race(solver, 9, base_seed=23, backend="serial")
        outcome = run_race(solver, 9, base_seed=23, backend="lockstep")
        assert outcome.winner_index == reference.winner_index
        assert outcome.winner_result.iterations == reference.winner_result.iterations
        assert outcome.solved == reference.solved

    def test_narrow_width_race_matches_too(self):
        solver = _sat_solver()
        reference = run_race(solver, 9, base_seed=23, backend="serial")
        outcome = run_race(solver, 9, base_seed=23, backend=LockstepBackend(width=2))
        assert outcome.winner_index == reference.winner_index


class TestBackendSurface:
    def test_resolve_by_name_and_instance(self):
        assert isinstance(resolve_backend("lockstep"), LockstepBackend)
        backend = LockstepBackend(width=4)
        assert resolve_backend(backend) is backend

    def test_rejects_workers(self):
        with pytest.raises(ValueError, match="lockstep backend runs in-process"):
            resolve_backend("lockstep", workers=2)

    def test_rejects_invalid_width(self):
        with pytest.raises(ValueError, match="width must be >= 1"):
            LockstepBackend(width=0)

    def test_describe_names_the_width(self):
        assert LockstepBackend().describe() == "lockstep[width=auto]"
        assert LockstepBackend(width=16).describe() == "lockstep[width=16]"

    def test_arbitrary_payloads_run_serially(self):
        backend = LockstepBackend()
        results = list(backend.imap_unordered(lambda x: x * 2, [1, 2, 3]))
        assert results == [2, 4, 6]

    def test_supports_lockstep_probe(self):
        assert LOCKSTEP_PATH == "lockstep"
        assert supports_lockstep(_sat_solver())
        assert supports_lockstep(_sat_solver(policy="adaptive"))
        assert not supports_lockstep(object())

    def test_chunked_blocks_cover_every_task(self):
        # Width 3 over 10 runs: 4 kernel calls, indices must all arrive.
        solver = _sat_solver()
        from repro.engine.seeding import spawn_seeds
        from repro.engine.tasks import RunTask

        seeds = spawn_seeds(0, 10)
        payloads = [RunTask(solver, index, seed) for index, seed in enumerate(seeds)]
        backend = LockstepBackend(width=3)
        results = dict(backend.imap_unordered(execute_run, payloads))
        assert sorted(results) == list(range(10))
        for index, seed in enumerate(seeds):
            assert results[index].seed == int(seed)
