"""End-to-end integration tests across all layers.

These tests exercise the full paper pipeline — solver -> sequential
observations -> distribution fit -> prediction -> simulated multi-walk
validation — on instances small enough to keep the suite fast, plus
synthetic ground-truth pipelines where the correct answer is known exactly.
"""


import numpy as np
import pytest

from repro import (
    ShiftedExponential,
    predict_speedup_curve,
    simulate_multiwalk_speedups,
)
from repro.core.distributions import LogNormalRuntime
from repro.core.prediction import predict_speedup_empirical
from repro.csp.problems import CostasArrayProblem, NQueensProblem
from repro.multiwalk.parallel import emulate_multiwalk
from repro.multiwalk.runner import run_sequential_batch
from repro.sat import random_planted_ksat
from repro.solvers import AdaptiveSearch, AdaptiveSearchConfig, WalkSAT, WalkSATConfig


class TestSyntheticGroundTruth:
    """When observations come from a known model, the prediction must recover it."""

    def test_exponential_pipeline_recovers_linear_scaling(self, rng):
        true = ShiftedExponential(x0=0.0, lam=1e-4)
        observations = true.sample(rng, 3000)
        cores = [16, 64, 256]
        prediction = predict_speedup_curve(
            observations, cores, family="shifted_exponential", shift_rule="zero_if_negligible"
        )
        simulated = simulate_multiwalk_speedups(
            observations, cores, n_parallel_runs=2000, rng=rng
        )
        for n in cores:
            assert prediction.speedup(n) == pytest.approx(n, rel=0.1)
            assert simulated.speedup(n) == pytest.approx(prediction.speedup(n), rel=0.25)

    def test_shifted_exponential_pipeline_recovers_finite_limit(self, rng):
        true = ShiftedExponential(x0=1000.0, lam=1e-3)
        observations = true.sample(rng, 3000)
        prediction = predict_speedup_curve(
            observations, [16, 256], family="shifted_exponential", shift_rule="min"
        )
        assert prediction.limit == pytest.approx(true.speedup_limit(), rel=0.1)
        simulated = simulate_multiwalk_speedups(observations, [16, 256],
                                                n_parallel_runs=2000, rng=rng)
        assert prediction.speedup(256) == pytest.approx(simulated.speedup(256), rel=0.25)

    def test_lognormal_pipeline_parametric_vs_empirical(self, rng):
        true = LogNormalRuntime(mu=10.0, sigma=1.3, x0=0.0)
        observations = true.sample(rng, 2000)
        cores = [16, 128]
        parametric = predict_speedup_curve(observations, cores, family="shifted_lognormal",
                                           shift_rule="zero")
        empirical = predict_speedup_empirical(observations, cores)
        for n in cores:
            assert parametric.speedup(n) == pytest.approx(empirical.speedup(n), rel=0.35)


class TestSolverPipeline:
    """The full paper workflow on a real (small) Adaptive Search benchmark."""

    @pytest.fixture(scope="class")
    def costas_observations(self):
        solver = AdaptiveSearch(CostasArrayProblem(8), AdaptiveSearchConfig(max_iterations=100_000))
        return run_sequential_batch(solver, n_runs=60, base_seed=99)

    def test_all_runs_solve(self, costas_observations):
        assert costas_observations.success_rate() == 1.0

    def test_prediction_matches_simulated_multiwalk(self, costas_observations):
        iterations = costas_observations.values("iterations")
        cores = [4, 16, 64]
        prediction = predict_speedup_curve(
            iterations, cores, family="shifted_exponential", shift_rule="zero_if_negligible"
        )
        simulated = simulate_multiwalk_speedups(
            costas_observations, cores, n_parallel_runs=400, rng=np.random.default_rng(0)
        )
        for n in cores:
            ratio = prediction.speedup(n) / simulated.speedup(n)
            assert 0.4 < ratio < 2.5, (n, prediction.speedup(n), simulated.speedup(n))

    def test_empirical_predictor_brackets_simulation(self, costas_observations):
        iterations = costas_observations.values("iterations")
        empirical = predict_speedup_empirical(iterations, [16])
        simulated = simulate_multiwalk_speedups(
            costas_observations, [16], n_parallel_runs=400, rng=np.random.default_rng(1)
        )
        assert empirical.speedup(16) == pytest.approx(simulated.speedup(16), rel=0.3)

    def test_real_multiwalk_outcome_consistent_with_prediction(self, costas_observations):
        """An actually-executed 8-walk run should usually beat the sequential mean."""
        solver = AdaptiveSearch(CostasArrayProblem(8), AdaptiveSearchConfig(max_iterations=100_000))
        outcomes = [emulate_multiwalk(solver, 8, base_seed=s).min_iterations for s in range(5)]
        assert np.mean(outcomes) < costas_observations.values("iterations").mean()


class TestWalkSATPipeline:
    def test_portfolio_prediction_for_sat(self, rng):
        formula, _ = random_planted_ksat(40, 160, rng=rng)
        solver = WalkSAT(formula, WalkSATConfig(max_flips=100_000))
        batch = run_sequential_batch(solver, n_runs=40, base_seed=5)
        assert batch.success_rate() == 1.0
        prediction = predict_speedup_curve(batch.values("iterations"), [8, 32])
        assert prediction.speedup(32) > prediction.speedup(8) > 1.0

    def test_other_las_vegas_algorithm_on_permutation_problem(self):
        """The prediction applies to any Las Vegas algorithm, not just Adaptive Search."""
        from repro.solvers import RandomRestartSearch

        solver = RandomRestartSearch(NQueensProblem(10))
        batch = run_sequential_batch(solver, n_runs=40, base_seed=3)
        prediction = predict_speedup_empirical(batch.values("iterations"), [4, 16])
        assert prediction.speedup(16) >= prediction.speedup(4) >= 1.0
