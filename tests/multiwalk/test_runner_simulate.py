"""Sequential batch runner and the simulated multi-walk."""

import numpy as np
import pytest

from repro.core.distributions import ShiftedExponential
from repro.csp.problems import CostasArrayProblem
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.runner import collect_observations, run_sequential_batch
from repro.multiwalk.simulate import (
    MultiwalkMeasurement,
    simulate_multiwalk_from_observations,
    simulate_multiwalk_speedups,
)
from repro.solvers.adaptive_search import AdaptiveSearch
from repro.solvers.base import LasVegasAlgorithm, RunResult


class SyntheticAlgorithm(LasVegasAlgorithm):
    """Las Vegas algorithm whose runtime is an explicit exponential draw."""

    name = "synthetic-exponential"

    def __init__(self, scale: float = 100.0) -> None:
        self.scale = scale

    def _run(self, rng: np.random.Generator) -> RunResult:
        iterations = int(rng.exponential(self.scale)) + 1
        return RunResult(solved=True, iterations=iterations, runtime_seconds=0.0)


class TestRunner:
    def test_batch_size_and_label(self):
        batch = run_sequential_batch(SyntheticAlgorithm(), 25, base_seed=1, label="synthetic")
        assert isinstance(batch, RuntimeObservations)
        assert batch.n_runs == 25
        assert batch.label == "synthetic"

    def test_batches_are_reproducible(self):
        a = run_sequential_batch(SyntheticAlgorithm(), 10, base_seed=3)
        b = run_sequential_batch(SyntheticAlgorithm(), 10, base_seed=3)
        np.testing.assert_array_equal(a.iterations, b.iterations)

    def test_different_base_seeds_differ(self):
        a = run_sequential_batch(SyntheticAlgorithm(), 10, base_seed=3)
        b = run_sequential_batch(SyntheticAlgorithm(), 10, base_seed=4)
        assert not np.array_equal(a.iterations, b.iterations)

    def test_runs_within_batch_are_independent(self):
        batch = run_sequential_batch(SyntheticAlgorithm(), 50, base_seed=0)
        assert np.unique(batch.iterations).size > 10

    def test_progress_callback(self):
        seen = []
        run_sequential_batch(
            SyntheticAlgorithm(), 5, base_seed=0, progress=lambda i, r: seen.append(i)
        )
        assert seen == [0, 1, 2, 3, 4]

    def test_rejects_zero_runs(self):
        with pytest.raises(ValueError):
            run_sequential_batch(SyntheticAlgorithm(), 0)

    def test_collect_observations_multiple_algorithms(self):
        batches = collect_observations(
            [SyntheticAlgorithm(50.0), AdaptiveSearch(CostasArrayProblem(6))], 5, base_seed=0
        )
        assert len(batches) == 2
        assert all(batch.n_runs == 5 for batch in batches.values())

    def test_collect_observations_rejects_empty_list(self):
        with pytest.raises(ValueError):
            collect_observations([], 5)


class TestSimulatedMultiwalk:
    def test_linear_speedup_for_exponential_data(self, rng):
        """Exponential runtimes with x0=0 -> measured speed-up ~ number of cores."""
        data = ShiftedExponential(x0=0.0, lam=1e-3).sample(rng, 20000)
        measurement = simulate_multiwalk_from_observations(
            data, cores=[2, 8, 16], n_parallel_runs=3000, rng=rng
        )
        for n in (2, 8, 16):
            assert measurement.speedup(n) == pytest.approx(n, rel=0.15)

    def test_speedup_bounded_by_mean_over_min(self, rng):
        data = rng.lognormal(5.0, 1.0, 400) + 50.0
        measurement = simulate_multiwalk_from_observations(data, cores=[4096], rng=rng)
        bound = data.mean() / data.min()
        assert measurement.speedup(4096) <= bound * 1.0001

    def test_one_core_speedup_is_one_for_degenerate_data(self, rng):
        """With constant runtimes every resample mean is exact, so S(1) == 1."""
        data = np.full(40, 7.0)
        for mode in ("resample", "blocks"):
            measurement = simulate_multiwalk_from_observations(
                data, cores=[1], mode=mode, rng=rng
            )
            assert measurement.speedup(1) == 1.0

    def test_one_core_speedup_is_approximately_one(self, rng):
        data = rng.exponential(10.0, 200)
        measurement = simulate_multiwalk_from_observations(
            data, cores=[1], n_parallel_runs=2000, rng=rng
        )
        assert measurement.speedup(1) == pytest.approx(1.0, rel=0.1)

    def test_one_core_point_honors_sampling_mode(self):
        """The 1-core measurement must use the same sample size as every
        other core count: `n_parallel_runs` singleton blocks in resample
        mode, not the raw observations."""
        data = np.random.default_rng(7).exponential(10.0, 500)
        n_parallel_runs = 13
        measurement = simulate_multiwalk_from_observations(
            data,
            cores=[1],
            n_parallel_runs=n_parallel_runs,
            rng=np.random.default_rng(99),
        )
        expected = np.random.default_rng(99).choice(
            data, size=(n_parallel_runs, 1), replace=True
        ).min(axis=1)
        assert measurement.mean_parallel_cost[0] == pytest.approx(expected.mean())
        # A raw-data mean would be a different sample size (and value) here.
        assert measurement.mean_parallel_cost[0] != pytest.approx(data.mean(), abs=1e-12)

    def test_one_core_blocks_mode_is_internally_consistent(self):
        """In blocks mode the 1-core blocks are the (shuffled) sample itself,
        so the measured mean equals the sequential mean exactly."""
        data = np.random.default_rng(8).exponential(5.0, 64)
        measurement = simulate_multiwalk_from_observations(
            data, cores=[1, 4], mode="blocks", rng=np.random.default_rng(0)
        )
        assert measurement.mean_parallel_cost[0] == pytest.approx(data.mean())
        assert measurement.speedup(1) == pytest.approx(1.0)
        assert measurement.speedup(4) >= measurement.speedup(1)

    def test_blocks_mode_uses_disjoint_blocks(self, rng):
        data = rng.exponential(10.0, 1000)
        measurement = simulate_multiwalk_from_observations(
            data, cores=[10], mode="blocks", rng=rng
        )
        assert measurement.speedup(10) > 1.0

    def test_blocks_mode_requires_enough_observations(self, rng):
        with pytest.raises(ValueError):
            simulate_multiwalk_from_observations(
                rng.exponential(1.0, 5), cores=[10], mode="blocks", rng=rng
            )

    def test_argument_validation(self, rng):
        data = rng.exponential(1.0, 10)
        with pytest.raises(ValueError):
            simulate_multiwalk_from_observations([], cores=[2])
        with pytest.raises(ValueError):
            simulate_multiwalk_from_observations(data, cores=[0])
        with pytest.raises(ValueError):
            simulate_multiwalk_from_observations(data, cores=[2], n_parallel_runs=0)
        with pytest.raises(ValueError):
            simulate_multiwalk_from_observations(data, cores=[2], mode="warp")

    def test_measurement_record_interface(self, rng):
        data = rng.exponential(1.0, 50)
        measurement = simulate_multiwalk_from_observations(data, cores=[2, 4], rng=rng)
        assert isinstance(measurement, MultiwalkMeasurement)
        assert set(measurement.as_dict()) == {2, 4}
        assert list(measurement)[0][0] == 2
        with pytest.raises(KeyError):
            measurement.speedup(64)

    def test_wrapper_accepts_observation_batches(self, rng):
        batch = run_sequential_batch(SyntheticAlgorithm(), 60, base_seed=5)
        measurement = simulate_multiwalk_speedups(batch, cores=[4], rng=rng)
        assert measurement.label == "synthetic-exponential"
        assert measurement.speedup(4) > 1.0

    def test_reproducible_with_seeded_rng(self, rng):
        data = np.random.default_rng(1).exponential(5.0, 200)
        a = simulate_multiwalk_from_observations(data, cores=[8], rng=np.random.default_rng(2))
        b = simulate_multiwalk_from_observations(data, cores=[8], rng=np.random.default_rng(2))
        assert a.speedups == b.speedups
