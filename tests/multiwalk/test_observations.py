"""RuntimeObservations container."""

import numpy as np
import pytest

from repro.multiwalk.observations import RuntimeObservations
from repro.solvers.base import RunResult


def make_batch(label="test", n=5):
    results = [
        RunResult(solved=i % 4 != 3, iterations=10 * (i + 1), runtime_seconds=0.1 * (i + 1), seed=i)
        for i in range(n)
    ]
    return RuntimeObservations.from_results(label, results)


class TestConstruction:
    def test_from_results(self):
        batch = make_batch(n=5)
        assert batch.n_runs == 5
        assert batch.n_solved == 4
        assert batch.success_rate() == pytest.approx(0.8)
        np.testing.assert_array_equal(batch.seeds, [0, 1, 2, 3, 4])

    def test_from_values_iterations(self):
        batch = RuntimeObservations.from_values("x", [3.0, 5.0])
        np.testing.assert_array_equal(batch.values("iterations"), [3.0, 5.0])
        assert batch.success_rate() == 1.0

    def test_from_values_time_measure(self):
        batch = RuntimeObservations.from_values("x", [0.3, 0.5], measure="time")
        np.testing.assert_array_equal(batch.values("time"), [0.3, 0.5])

    def test_from_values_rejects_unknown_measure(self):
        with pytest.raises(ValueError):
            RuntimeObservations.from_values("x", [1.0], measure="flops")

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(ValueError):
            RuntimeObservations.from_results("x", [])
        with pytest.raises(ValueError):
            RuntimeObservations(
                label="x",
                iterations=np.array([1.0]),
                runtimes=np.array([1.0, 2.0]),
                solved=np.array([True]),
                seeds=np.array([0]),
            )

    def test_rejects_negative_costs(self):
        with pytest.raises(ValueError):
            RuntimeObservations.from_values("x", [-1.0, 2.0])


class TestValues:
    def test_solved_only_filtering(self):
        batch = make_batch(n=8)
        solved_values = batch.values("iterations")
        all_values = batch.values("iterations", solved_only=False)
        assert solved_values.size == batch.n_solved
        assert all_values.size == batch.n_runs

    def test_unknown_measure_rejected(self):
        with pytest.raises(ValueError):
            make_batch().values("flops")

    def test_no_solved_runs_raises(self):
        batch = RuntimeObservations(
            label="x",
            iterations=np.array([5.0]),
            runtimes=np.array([0.1]),
            solved=np.array([False]),
            seeds=np.array([0]),
        )
        with pytest.raises(ValueError):
            batch.values("iterations")

    def test_iteration_and_len_protocols(self):
        batch = make_batch(n=3)
        assert len(batch) == 3
        rows = list(batch)
        assert rows[0][0] == 10.0


class TestCombination:
    def test_extend(self):
        merged = make_batch(n=3).extend(make_batch(n=2))
        assert merged.n_runs == 5

    def test_extend_rejects_different_labels(self):
        with pytest.raises(ValueError):
            make_batch(label="a").extend(make_batch(label="b"))

    def test_subset(self):
        batch = make_batch(n=6)
        subset = batch.subset([0, 2, 4])
        assert subset.n_runs == 3
        np.testing.assert_array_equal(subset.iterations, [10.0, 30.0, 50.0])


class TestPersistence:
    def test_dict_round_trip(self):
        batch = make_batch()
        rebuilt = RuntimeObservations.from_dict(batch.to_dict())
        np.testing.assert_array_equal(rebuilt.iterations, batch.iterations)
        np.testing.assert_array_equal(rebuilt.solved, batch.solved)
        assert rebuilt.label == batch.label

    def test_file_round_trip(self, tmp_path):
        batch = make_batch()
        path = tmp_path / "batch.json"
        batch.save(path)
        rebuilt = RuntimeObservations.load(path)
        np.testing.assert_array_equal(rebuilt.runtimes, batch.runtimes)
        np.testing.assert_array_equal(rebuilt.seeds, batch.seeds)
