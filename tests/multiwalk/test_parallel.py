"""Multi-walk executors (sequential emulation and process-based)."""

import numpy as np
import pytest

from repro.csp.problems import CostasArrayProblem, NQueensProblem
from repro.multiwalk.parallel import MultiWalkExecutor, MultiwalkRunOutcome, emulate_multiwalk
from repro.solvers.adaptive_search import AdaptiveSearch
from repro.solvers.base import LasVegasAlgorithm, RunResult


class SyntheticAlgorithm(LasVegasAlgorithm):
    name = "synthetic"

    def _run(self, rng: np.random.Generator) -> RunResult:
        iterations = int(rng.integers(1, 1000))
        return RunResult(solved=True, iterations=iterations, runtime_seconds=0.0)


class TestEmulateMultiwalk:
    def test_winner_has_minimum_iterations(self):
        algo = SyntheticAlgorithm()
        outcome = emulate_multiwalk(algo, 16, base_seed=0)
        assert isinstance(outcome, MultiwalkRunOutcome)
        assert outcome.solved
        assert outcome.min_iterations == outcome.winner_result.iterations
        # Re-running the individual walks must not find anything better.
        seq = np.random.SeedSequence(0)
        seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(16)]
        best = min(algo.run(seed).iterations for seed in seeds)
        assert outcome.min_iterations == best

    def test_more_walks_never_hurt(self):
        """Multi-walk minimum is non-increasing in the number of walks (same seed tree)."""
        algo = SyntheticAlgorithm()
        few = np.mean([emulate_multiwalk(algo, 2, base_seed=s).min_iterations for s in range(15)])
        many = np.mean([emulate_multiwalk(algo, 16, base_seed=s).min_iterations for s in range(15)])
        assert many <= few

    def test_single_walk_equals_sequential_run(self):
        algo = SyntheticAlgorithm()
        outcome = emulate_multiwalk(algo, 1, base_seed=3)
        assert outcome.n_walks == 1
        assert outcome.min_iterations > 0

    def test_rejects_zero_walks(self):
        with pytest.raises(ValueError):
            emulate_multiwalk(SyntheticAlgorithm(), 0)

    def test_unsolved_walks_still_produce_outcome(self):
        from repro.solvers.adaptive_search import AdaptiveSearchConfig

        solver = AdaptiveSearch(NQueensProblem(30), AdaptiveSearchConfig(max_iterations=2))
        outcome = emulate_multiwalk(solver, 3, base_seed=0)
        assert not outcome.solved
        assert outcome.min_iterations <= 2

    def test_real_solver_multiwalk_is_correct(self):
        solver = AdaptiveSearch(CostasArrayProblem(7))
        outcome = emulate_multiwalk(solver, 4, base_seed=1)
        assert outcome.solved
        assert solver.problem.is_solution(outcome.winner_result.solution)


class TestMultiWalkExecutor:
    def test_validation(self):
        with pytest.raises(ValueError):
            MultiWalkExecutor(SyntheticAlgorithm(), 0)
        with pytest.raises(ValueError):
            MultiWalkExecutor(SyntheticAlgorithm(), 2, n_processes=0)

    def test_single_process_keeps_race_semantics(self):
        """``n_processes=1`` races serially: first solved walk (in seed order) wins.

        This matches what a one-worker pool would produce, so dropping to a
        single process no longer silently changes the meaning of either the
        winner or ``wall_clock_seconds`` (time until the race is decided,
        not the time to run every walk to completion).
        """
        executor = MultiWalkExecutor(SyntheticAlgorithm(), 8, n_processes=1)
        outcome = executor.run(base_seed=5)
        seq = np.random.SeedSequence(5)
        seeds = [int(s.generate_state(1)[0]) for s in seq.spawn(8)]
        # SyntheticAlgorithm always solves, so the very first walk wins.
        assert outcome.winner_index == 0
        assert outcome.min_iterations == SyntheticAlgorithm().run(seeds[0]).iterations

    def test_unsolved_winner_tie_break_is_lowest_index(self):
        """Regression: all-unsolved races pick (min iterations, min index)."""

        class NeverSolves(LasVegasAlgorithm):
            name = "never-solves"

            def _run(self, rng: np.random.Generator) -> RunResult:
                # Constant budget exhaustion: every walk ties on iterations.
                return RunResult(solved=False, iterations=77, runtime_seconds=0.0)

        executor = MultiWalkExecutor(NeverSolves(), 6, n_processes=1)
        outcome = executor.run(base_seed=9)
        assert not outcome.solved
        assert outcome.winner_index == 0
        assert outcome.min_iterations == 77
        # The emulation applies the same deterministic tie-break.
        emulated = emulate_multiwalk(NeverSolves(), 6, base_seed=9)
        assert emulated.winner_index == 0

    def test_per_walk_wall_clock_is_recorded(self):
        executor = MultiWalkExecutor(SyntheticAlgorithm(), 4, n_processes=1)
        outcome = executor.run(base_seed=2)
        assert outcome.walk_wall_clock_seconds == outcome.winner_result.runtime_seconds
        assert 0.0 <= outcome.walk_wall_clock_seconds <= outcome.wall_clock_seconds

    def test_measure_speedup_positive(self):
        executor = MultiWalkExecutor(SyntheticAlgorithm(), 4, n_processes=1)
        speedup = executor.measure_speedup(sequential_mean_seconds=1.0, n_repeats=2)
        assert speedup > 0.0

    def test_measure_speedup_rejects_zero_repeats(self):
        executor = MultiWalkExecutor(SyntheticAlgorithm(), 2, n_processes=1)
        with pytest.raises(ValueError):
            executor.measure_speedup(1.0, n_repeats=0)

    @pytest.mark.slow
    def test_process_pool_execution(self):
        """Real process-based execution (small, in case only one CPU is available)."""
        executor = MultiWalkExecutor(AdaptiveSearch(CostasArrayProblem(6)), 2, n_processes=2)
        outcome = executor.run(base_seed=0)
        assert outcome.solved
