"""Instance-size extrapolation (the paper's future-work method)."""

import numpy as np
import pytest

from repro.core.distributions import ShiftedExponential
from repro.csp.problems import AllIntervalProblem
from repro.scaling import InstanceScalingStudy, fit_power_law
from repro.scaling.study import SizeObservation
from repro.solvers.base import LasVegasAlgorithm, RunResult


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        sizes = np.array([4, 8, 16, 32], dtype=float)
        values = 3.0 * sizes**2.5
        fit = fit_power_law(sizes, values)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.exponent == pytest.approx(2.5, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.is_reliable()
        assert fit.predict(64) == pytest.approx(3.0 * 64**2.5, rel=1e-9)

    def test_noisy_power_law(self, rng):
        sizes = np.array([5, 10, 20, 40, 80], dtype=float)
        values = 2.0 * sizes**1.8 * np.exp(rng.normal(0.0, 0.05, sizes.size))
        fit = fit_power_law(sizes, values)
        assert fit.exponent == pytest.approx(1.8, abs=0.15)
        assert fit.is_reliable(threshold=0.9)

    def test_zero_values_are_clamped_not_dropped(self):
        fit = fit_power_law([2, 4, 8], [0.0, 1.0, 4.0])
        assert np.isfinite(fit.exponent)
        assert fit.n_points == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [2.0])
        with pytest.raises(ValueError):
            fit_power_law([1.0, 2.0], [1.0])
        with pytest.raises(ValueError):
            fit_power_law([0.0, 2.0], [1.0, 2.0])

    def test_unreliable_with_two_points(self):
        fit = fit_power_law([2, 4], [1.0, 3.0])
        assert not fit.is_reliable()


class SyntheticScalingAlgorithm(LasVegasAlgorithm):
    """Las Vegas algorithm with a known parameter scaling law.

    Runtime ~ ShiftedExponential(x0 = 2 * size, scale = 5 * size^2), so the
    study's extrapolation can be checked against ground truth exactly.
    """

    name = "synthetic-scaling"

    def __init__(self, size: int) -> None:
        self.size = int(size)
        self.distribution = ShiftedExponential(x0=2.0 * size, lam=1.0 / (5.0 * size**2))

    def _run(self, rng: np.random.Generator) -> RunResult:
        iterations = int(round(float(self.distribution.sample(rng))))
        return RunResult(solved=True, iterations=iterations, runtime_seconds=0.0)


class _SizeCarrier:
    """Minimal problem stand-in carrying just a size and a label."""

    def __init__(self, size: int) -> None:
        self.size = int(size)

    def describe(self) -> str:
        return f"synthetic {self.size}"


class TestInstanceScalingStudySynthetic:
    @pytest.fixture(scope="class")
    def study(self):
        study = InstanceScalingStudy(
            problem_factory=_SizeCarrier,
            solver_factory=lambda problem: SyntheticScalingAlgorithm(problem.size),
            family="shifted_exponential",
            shift_rule="min",
            n_runs=200,
            base_seed=11,
        )
        study.run([6, 10, 14, 20])
        return study

    def test_family_stable_and_accepted(self, study):
        assert study.family_is_stable()
        assert study.accepted_everywhere()

    def test_parameter_table_has_all_sizes(self, study):
        table = study.parameter_table()
        assert set(table) == {6, 10, 14, 20}
        assert all("lam" in params for params in table.values())

    def test_scaling_laws_recover_ground_truth(self, study):
        shift_law, excess_law = study.scaling_laws()
        # x0 = 2 * size (exponent 1), mean excess = 5 * size^2 (exponent 2).
        assert shift_law.exponent == pytest.approx(1.0, abs=0.25)
        assert excess_law.exponent == pytest.approx(2.0, abs=0.25)
        assert excess_law.is_reliable(threshold=0.9)

    def test_extrapolated_prediction_matches_true_model(self, study):
        target = 40
        true = ShiftedExponential(x0=2.0 * target, lam=1.0 / (5.0 * target**2))
        prediction = study.extrapolate(target, cores=[16, 64, 256])
        for n in (16, 64, 256):
            assert prediction.speedup(n) == pytest.approx(true.speedup(n), rel=0.25)
        assert prediction.family == "shifted_exponential"
        assert "target size" in prediction.summary()

    def test_extrapolation_must_go_upward(self, study):
        with pytest.raises(ValueError):
            study.extrapolate(10)

    def test_requires_run_before_queries(self):
        fresh = InstanceScalingStudy(
            problem_factory=_SizeCarrier,
            solver_factory=lambda problem: SyntheticScalingAlgorithm(problem.size),
            n_runs=10,
        )
        with pytest.raises(RuntimeError):
            fresh.scaling_laws()

    def test_run_validation(self):
        study = InstanceScalingStudy(
            problem_factory=_SizeCarrier,
            solver_factory=lambda problem: SyntheticScalingAlgorithm(problem.size),
            n_runs=10,
        )
        with pytest.raises(ValueError):
            study.run([8])
        with pytest.raises(ValueError):
            study.run([8, 8])
        with pytest.raises(ValueError):
            InstanceScalingStudy(problem_factory=_SizeCarrier, n_runs=1)


class TestInstanceScalingStudySolver:
    """A small end-to-end study on the real ALL-INTERVAL benchmark."""

    def test_all_interval_study_and_validation(self):
        study = InstanceScalingStudy(
            problem_factory=AllIntervalProblem,
            family="shifted_exponential",
            shift_rule="min",
            n_runs=30,
            max_iterations=100_000,
            base_seed=3,
        )
        results = study.run([8, 9, 10])
        assert all(isinstance(obs, SizeObservation) for obs in results)
        assert study.family_is_stable()
        comparison = study.validate(12, cores=[4, 16], n_runs=30)
        for cores in (4, 16):
            extrapolated = comparison["extrapolated"][cores]
            simulated = comparison["simulated"][cores]
            assert extrapolated > 0.0
            # The headline check: extrapolation from sizes 8-10 lands within a
            # factor of ~3 of the simulated multi-walk at size 12.
            assert 0.33 < extrapolated / simulated < 3.0
