"""Tables 1–5 experiment functions."""


from repro.experiments.config import BENCHMARK_KEYS
from repro.experiments.tables import (
    table1_sequential_times,
    table2_sequential_iterations,
    table3_time_speedups,
    table4_iteration_speedups,
    table5_prediction_comparison,
)


class TestTables1And2:
    def test_table1_rows_and_format(self, tiny_config, tiny_observations):
        table = table1_sequential_times(tiny_config, tiny_observations)
        rows = table.rows()
        assert len(rows) == 3
        for row in rows:
            label, minimum, mean, median, maximum = row
            assert minimum <= median <= maximum
            assert minimum <= mean <= maximum
        text = table.format()
        assert "Table 1" in text
        assert tiny_observations["MS"].label in text

    def test_table2_iteration_summary(self, tiny_config, tiny_observations):
        table = table2_sequential_iterations(tiny_config, tiny_observations)
        for key in BENCHMARK_KEYS:
            summary = table.summaries[key]
            assert summary.n_runs == tiny_observations[key].values("iterations").size
            assert summary.maximum >= summary.minimum
        assert "iterations" in table.format().lower()

    def test_las_vegas_dispersion_visible(self, tiny_config, tiny_observations):
        """Iteration counts spread over a wide interval (Section 5.4)."""
        table = table2_sequential_iterations(tiny_config, tiny_observations)
        assert any(table.summaries[k].dispersion() > 3.0 for k in BENCHMARK_KEYS)


class TestTables3And4:
    def test_table4_speedups_increase_with_cores(self, tiny_config, tiny_observations):
        table = table4_iteration_speedups(tiny_config, tiny_observations)
        for key in BENCHMARK_KEYS:
            speedups = [table.speedup(key, c) for c in tiny_config.cores]
            assert speedups[0] >= 1.0 - 1e-9
            assert speedups[-1] >= speedups[0]
        assert "Table 4" in table.format()

    def test_table3_uses_time_measure(self, tiny_config, tiny_observations):
        table = table3_time_speedups(tiny_config, tiny_observations)
        assert table.measure == "time"
        assert "time" in table.format().lower()
        for key in BENCHMARK_KEYS:
            assert table.speedup(key, tiny_config.cores[-1]) > 0.0

    def test_tables_3_and_4_are_comparable(self, tiny_config, tiny_observations):
        """The paper notes no significant difference between time and iteration speed-ups."""
        t3 = table3_time_speedups(tiny_config, tiny_observations)
        t4 = table4_iteration_speedups(tiny_config, tiny_observations)
        k = tiny_config.cores[-1]
        for key in BENCHMARK_KEYS:
            assert t3.speedup(key, k) > 1.0
            assert t4.speedup(key, k) > 1.0


class TestTable5:
    def test_prediction_tracks_measurement(self, tiny_config, tiny_observations):
        table = table5_prediction_comparison(tiny_config, tiny_observations)
        assert set(table.predictions) == set(BENCHMARK_KEYS)
        # Shape check (the paper's headline): predictions are within a factor
        # of ~2 of the simulated measurement for every benchmark/core count.
        for key in BENCHMARK_KEYS:
            for cores in tiny_config.cores:
                measured = table.experimental[key].speedup(cores)
                predicted = table.predictions[key].speedup(cores)
                assert predicted > 0.0
                assert 0.3 < predicted / measured < 3.5, (key, cores, measured, predicted)

    def test_paper_families_are_used(self, tiny_config, tiny_observations):
        table = table5_prediction_comparison(tiny_config, tiny_observations)
        assert table.predictions["MS"].family == "shifted_lognormal"
        assert table.predictions["AI"].family == "shifted_exponential"
        assert table.predictions["Costas"].family == "shifted_exponential"

    def test_relative_error_helpers(self, tiny_config, tiny_observations):
        table = table5_prediction_comparison(tiny_config, tiny_observations)
        for key in BENCHMARK_KEYS:
            assert table.max_relative_error(key) >= 0.0
            assert table.relative_error(key, tiny_config.cores[0]) >= 0.0

    def test_format_contains_both_series(self, tiny_config, tiny_observations):
        text = table5_prediction_comparison(tiny_config, tiny_observations).format()
        assert "experimental" in text
        assert "predicted" in text
        assert "Table 5" in text

    def test_rows_alternate_experimental_and_predicted(self, tiny_config, tiny_observations):
        rows = table5_prediction_comparison(tiny_config, tiny_observations).rows()
        assert len(rows) == 6
        assert rows[0][1] == "experimental"
        assert rows[1][1] == "predicted"
