"""Experiment registry, report formatting and the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment
from repro.experiments.report import format_series, format_table


class TestRegistry:
    def test_every_paper_table_and_figure_is_registered(self):
        expected = {f"table{i}" for i in range(1, 6)} | {f"figure{i}" for i in range(1, 15)}
        # The paper-conclusion SAT extension and its policy family.
        expected |= {"sat_flips", "sat_portfolio", "sat_policies"}
        assert expected == set(EXPERIMENTS)

    def test_entries_declare_valid_observation_kinds(self):
        for entry in EXPERIMENTS.values():
            assert entry.observations in (None, "benchmarks", "sat", "sat_policies")
        assert EXPERIMENTS["table1"].observations == "benchmarks"
        assert EXPERIMENTS["figure3"].observations is None
        assert EXPERIMENTS["sat_portfolio"].observations == "sat"
        assert EXPERIMENTS["sat_policies"].observations == "sat_policies"

    def test_list_experiments_descriptions(self):
        listing = dict(list_experiments())
        assert len(listing) == len(EXPERIMENTS)
        assert all(description for description in listing.values())

    def test_run_experiment_model_figure(self):
        result = run_experiment("figure3")
        assert "Figure 3" in result.format()

    def test_run_experiment_with_observations(self, tiny_config, tiny_observations):
        result = run_experiment("table2", tiny_config, observations=tiny_observations)
        assert "Table 2" in result.format()

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table99")


class TestReportFormatting:
    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.25]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "30" in text and "4.2" in text

    def test_format_table_float_format(self):
        text = format_table(["x"], [[3.14159]], float_format="{:.3f}")
        assert "3.142" in text

    def test_format_series_contains_bars(self):
        text = format_series([1, 2, 4], {"speed-up": [1.0, 1.9, 3.5]}, title="S")
        assert "S" in text
        assert "#" in text
        assert "speed-up" in text

    def test_format_series_without_series(self):
        text = format_series([1, 2], {}, title="empty")
        assert "empty" in text


class TestCLI:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "figure3", "--profile", "tiny"])
        assert args.command == "run"
        assert args.experiments == ["figure3"]

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out
        assert "figure14" in out

    def test_run_model_figure(self, capsys):
        assert main(["run", "figure5", "--profile", "tiny"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99", "--profile", "tiny"]) == 2

    def test_run_solver_experiment_tiny_profile(self, capsys, tiny_observations):
        # The session-scoped fixture has already warmed the in-process cache
        # for the tiny profile, so this does not re-run the solvers.
        assert main(["run", "table2", "--profile", "tiny"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_predict_from_file(self, tmp_path, capsys, rng):
        values = rng.exponential(1000.0, 200)
        path = tmp_path / "runtimes.txt"
        path.write_text("\n".join(str(v) for v in values))
        assert main(["predict", "--input", str(path), "--cores", "16", "64"]) == 0
        out = capsys.readouterr().out
        assert "family" in out
        assert "64" in out

    def test_predict_empirical_mode(self, tmp_path, capsys, rng):
        path = tmp_path / "runtimes.txt"
        path.write_text(" ".join(str(v) for v in rng.exponential(10.0, 50)))
        assert main(["predict", "--input", str(path), "--empirical"]) == 0
        assert "empirical" in capsys.readouterr().out

    def test_campaign_command(self, capsys, tiny_observations):
        assert main(["campaign", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "success-rate" in out

    def test_list_shows_sat_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "sat_flips" in out
        assert "sat_portfolio" in out

    def test_run_sat_experiments(self, capsys):
        assert main(["run", "sat_flips", "sat_portfolio", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Sequential WalkSAT flips" in out
        assert "portfolio speed-ups" in out

    def test_campaign_includes_the_sat_workload(self, capsys, tiny_observations):
        assert main(["campaign", "--profile", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "3-SAT" in out

    def test_campaign_disk_cache_hits_on_second_invocation(self, tmp_path, capsys):
        from repro.experiments.data import clear_observation_cache

        clear_observation_cache()
        assert main(["campaign", "--profile", "tiny", "--cache", str(tmp_path)]) == 0
        files = sorted(tmp_path.glob("observations-*.json"))
        # MS, AI, Costas, the SAT workload, and the three non-default
        # policies of the policy family (walksat shares the SAT entry).
        assert len(files) == 7
        stamps = [f.stat().st_mtime_ns for f in files]
        clear_observation_cache()
        assert main(["campaign", "--profile", "tiny", "--cache", str(tmp_path)]) == 0
        # A warm cache answers without re-running or re-writing any campaign.
        assert [f.stat().st_mtime_ns for f in sorted(tmp_path.glob("*.json"))] == stamps
        clear_observation_cache()
