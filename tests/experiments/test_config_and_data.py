"""Experiment configuration and campaign collection/caching."""

import numpy as np
import pytest

from repro.experiments.config import BENCHMARK_KEYS, SAT_KEY, ExperimentConfig
from repro.experiments.data import (
    CampaignSummary,
    clear_observation_cache,
    collect_benchmark_observations,
    collect_sat_observations,
)


class TestExperimentConfig:
    def test_profiles_are_valid(self):
        for config in (ExperimentConfig.tiny(), ExperimentConfig.quick(), ExperimentConfig.full()):
            assert config.n_sequential_runs >= 2
            assert set(config.benchmarks()) == set(BENCHMARK_KEYS)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_sequential_runs=1)
        with pytest.raises(ValueError):
            ExperimentConfig(cores=())
        with pytest.raises(ValueError):
            ExperimentConfig(cores=(0, 4))
        with pytest.raises(ValueError):
            ExperimentConfig(n_parallel_runs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(max_iterations=0)

    def test_benchmark_specs_build_solvers(self, tiny_config):
        for key, spec in tiny_config.benchmarks().items():
            solver = spec.make_solver(100)
            assert solver.config.max_iterations == 100
            assert spec.label
            assert spec.key == key

    def test_paper_families_and_shift_rules(self, tiny_config):
        assert tiny_config.paper_family("MS") == "shifted_lognormal"
        assert tiny_config.paper_family("AI") == "shifted_exponential"
        assert tiny_config.paper_family("Costas") == "shifted_exponential"
        assert tiny_config.paper_shift_rule("Costas") == "zero_if_negligible"

    def test_instance_sizes_affect_benchmarks(self):
        config = ExperimentConfig(magic_square_n=5, all_interval_n=20, costas_n=11,
                                  n_sequential_runs=2)
        specs = config.benchmarks()
        assert specs["MS"].problem_factory().size == 25
        assert specs["AI"].problem_factory().size == 20
        assert specs["Costas"].problem_factory().size == 11


class TestCampaignCollection:
    def test_all_benchmarks_collected(self, tiny_config, tiny_observations):
        assert set(tiny_observations) == set(BENCHMARK_KEYS)
        for key in BENCHMARK_KEYS:
            assert tiny_observations[key].n_runs == tiny_config.n_sequential_runs

    def test_in_process_cache_returns_same_data(self, tiny_config, tiny_observations):
        again = collect_benchmark_observations(tiny_config)
        for key in BENCHMARK_KEYS:
            np.testing.assert_array_equal(
                again[key].iterations, tiny_observations[key].iterations
            )

    def test_disk_cache_round_trip(self, tmp_path):
        config = ExperimentConfig(
            magic_square_n=3,
            all_interval_n=8,
            costas_n=6,
            n_sequential_runs=4,
            n_parallel_runs=5,
            cores=(2, 4),
            max_iterations=20_000,
            base_seed=7,
        )
        clear_observation_cache()
        first = collect_benchmark_observations(config, cache_dir=tmp_path)
        files = list(tmp_path.glob("observations-*.json"))
        assert len(files) == 3
        clear_observation_cache()
        second = collect_benchmark_observations(config, cache_dir=tmp_path)
        for key in BENCHMARK_KEYS:
            np.testing.assert_array_equal(first[key].iterations, second[key].iterations)
        clear_observation_cache()

    def test_campaign_summary(self, tiny_config, tiny_observations):
        summary = CampaignSummary.from_observations(tiny_config, tiny_observations)
        assert set(summary.n_runs) == set(BENCHMARK_KEYS)
        assert all(0.0 <= rate <= 1.0 for rate in summary.success_rates.values())


class TestSATConfig:
    def test_profiles_scale_the_sat_instance(self):
        tiny = ExperimentConfig.tiny()
        quick = ExperimentConfig.quick()
        full = ExperimentConfig.full()
        assert tiny.sat_n_variables < quick.sat_n_variables < full.sat_n_variables
        for config in (tiny, quick, full):
            assert config.sat_clause_ratio == 4.2
            assert config.sat_k == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(sat_n_variables=2, sat_k=3)
        with pytest.raises(ValueError):
            ExperimentConfig(sat_clause_ratio=0.0)
        with pytest.raises(ValueError):
            ExperimentConfig(sat_k=0)

    def test_sat_benchmark_spec_is_deterministic(self, tiny_config):
        a = tiny_config.sat_benchmark()
        b = tiny_config.sat_benchmark()
        assert a.key == SAT_KEY
        assert a.label == b.label
        # Same config -> the very same formula: this is what makes SAT
        # campaigns content-addressable in the engine cache.
        assert a.formula_factory().clauses == b.formula_factory().clauses

    def test_different_seed_changes_the_instance(self, tiny_config):
        import dataclasses

        other = dataclasses.replace(tiny_config, base_seed=tiny_config.base_seed + 1)
        assert (
            tiny_config.sat_benchmark().formula_factory().clauses
            != other.sat_benchmark().formula_factory().clauses
        )

    def test_spec_builds_walksat_solver(self, tiny_config):
        solver = tiny_config.sat_benchmark().make_solver(123)
        assert solver.config.max_flips == 123
        assert solver.formula.n_variables == tiny_config.sat_n_variables


class TestSATCampaignCollection:
    def test_collection_and_in_process_cache(self, tiny_config):
        first = collect_sat_observations(tiny_config)
        assert set(first) == {SAT_KEY}
        assert first[SAT_KEY].n_runs == tiny_config.n_sequential_runs
        again = collect_sat_observations(tiny_config)
        np.testing.assert_array_equal(first[SAT_KEY].iterations, again[SAT_KEY].iterations)

    def test_disk_cache_round_trip(self, tmp_path):
        config = ExperimentConfig(
            sat_n_variables=20,
            n_sequential_runs=4,
            max_iterations=50_000,
            base_seed=13,
        )
        clear_observation_cache()
        first = collect_sat_observations(config, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("observations-*.json"))) == 1
        clear_observation_cache()
        second = collect_sat_observations(config, cache_dir=tmp_path)
        np.testing.assert_array_equal(first[SAT_KEY].iterations, second[SAT_KEY].iterations)
        clear_observation_cache()

    def test_sat_campaign_is_backend_invariant(self, tiny_config):
        clear_observation_cache()
        serial = collect_sat_observations(tiny_config)[SAT_KEY]
        clear_observation_cache()
        threaded = collect_sat_observations(tiny_config, backend="thread", workers=2)[SAT_KEY]
        np.testing.assert_array_equal(serial.iterations, threaded.iterations)
        clear_observation_cache()
