"""SAT workload families and policies through the experiment layer."""

import dataclasses

import numpy as np
import pytest

from repro.experiments.config import SAT_FAMILIES, SAT_KEY, ExperimentConfig
from repro.experiments.data import (
    clear_observation_cache,
    collect_sat_observations,
    collect_sat_policy_observations,
)
from repro.experiments.sat import sat_flips_table, sat_policy_table
from repro.solvers.policies import POLICIES


@pytest.fixture(autouse=True)
def _fresh_campaign_cache():
    clear_observation_cache()
    yield
    clear_observation_cache()


def _tiny(**overrides):
    return dataclasses.replace(ExperimentConfig.tiny(), **overrides)


class TestFamilies:
    def test_family_validation(self):
        with pytest.raises(ValueError):
            _tiny(sat_family="satlib")
        with pytest.raises(ValueError):
            _tiny(sat_policy="gsat")

    @pytest.mark.parametrize("family", SAT_FAMILIES)
    def test_formula_factory_is_deterministic(self, family):
        config = _tiny(sat_family=family)
        a = config.sat_benchmark().formula_factory()
        b = config.sat_benchmark().formula_factory()
        assert a.clauses == b.clauses
        assert a.n_variables == b.n_variables

    def test_families_produce_distinct_instances(self):
        planted = _tiny(sat_family="planted").sat_benchmark().formula_factory()
        uniform = _tiny(sat_family="uniform").sat_benchmark().formula_factory()
        dimacs = _tiny(sat_family="dimacs").sat_benchmark().formula_factory()
        assert planted.clauses != uniform.clauses
        assert dimacs.n_variables != planted.n_variables or dimacs.clauses != planted.clauses

    def test_labels_name_family_and_policy(self):
        assert _tiny().sat_benchmark().label == "3-SAT 25@4.2"
        assert _tiny(sat_family="uniform").sat_benchmark().label == "uniform 3-SAT 25@4.2"
        assert _tiny(sat_family="dimacs").sat_benchmark().label.startswith("dimacs uf20")
        assert _tiny(sat_policy="novelty").sat_benchmark().label.endswith("[novelty]")

    def test_dimacs_instance_is_selectable(self):
        config = _tiny(sat_family="dimacs", sat_dimacs="uf50-218-s1")
        formula = config.sat_benchmark().formula_factory()
        assert (formula.n_variables, formula.n_clauses) == (50, 218)

    def test_unknown_dimacs_instance_fails_at_configuration_time(self):
        # Eager validation: a typo'd instance name must fail before any
        # campaign runs, not minutes in when the SAT formula is built.
        with pytest.raises(ValueError, match="bundled instances"):
            _tiny(sat_family="dimacs", sat_dimacs="missing-instance")

    def test_unknown_dimacs_name_is_ignored_by_other_families(self):
        # The name is only consulted by the dimacs family; a stale value
        # must not break planted/uniform configurations.
        config = _tiny(sat_family="planted", sat_dimacs="missing-instance")
        assert config.sat_benchmark().formula_factory().n_variables == 25

    def test_spec_policy_override_reaches_the_solver(self):
        solver = _tiny().sat_benchmark(policy="novelty+").make_solver(1000)
        assert solver.config.policy == "novelty+"
        assert solver.config.max_flips == 1000


class TestCampaignCollection:
    @pytest.mark.parametrize("family", SAT_FAMILIES)
    def test_collect_each_family_through_the_engine(self, family, tmp_path):
        config = _tiny(sat_family=family, n_sequential_runs=8)
        observations = collect_sat_observations(config, cache_dir=tmp_path)
        batch = observations[SAT_KEY]
        assert batch.n_runs == 8
        assert batch.label == config.sat_benchmark().label
        # Second collection must be a disk-cache hit producing equal data.
        clear_observation_cache()
        again = collect_sat_observations(config, cache_dir=tmp_path)[SAT_KEY]
        np.testing.assert_array_equal(batch.iterations, again.iterations)
        np.testing.assert_array_equal(batch.solved, again.solved)

    def test_families_and_policies_have_distinct_fingerprints(self, tmp_path):
        for family in SAT_FAMILIES:
            for policy in ("walksat", "novelty"):
                config = _tiny(sat_family=family, sat_policy=policy, n_sequential_runs=4)
                collect_sat_observations(config, cache_dir=tmp_path)
                clear_observation_cache()
        files = {p.name for p in tmp_path.glob("*.json")}
        assert len(files) == len(SAT_FAMILIES) * 2, files

    def test_policy_campaign_collects_every_policy(self):
        config = _tiny(n_sequential_runs=6)
        observations = collect_sat_policy_observations(config)
        assert set(observations) == {f"{SAT_KEY}/{p}" for p in POLICIES}
        labels = {observations[f"{SAT_KEY}/{p}"].label for p in POLICIES}
        assert len(labels) == len(POLICIES)  # one label per policy

    def test_policy_campaign_reuses_the_default_policy_batch_in_process(self):
        # Regression: without any disk cache, the default-policy batch must
        # not be collected twice — the policy campaign reuses the exact
        # object the single-policy campaign memoised.
        config = _tiny(n_sequential_runs=6)
        single = collect_sat_observations(config)[SAT_KEY]
        policies = collect_sat_policy_observations(config)
        assert policies[f"{SAT_KEY}/{config.sat_policy}"] is single

    def test_policy_campaign_shares_the_default_policy_cache_entry(self, tmp_path):
        config = _tiny(n_sequential_runs=6)
        collect_sat_observations(config, cache_dir=tmp_path)
        n_single = len(list(tmp_path.glob("*.json")))
        clear_observation_cache()
        collect_sat_policy_observations(config, cache_dir=tmp_path)
        n_all = len(list(tmp_path.glob("*.json")))
        # The walksat batch was reused from disk: only the three non-default
        # policies added files.
        assert n_single == 1
        assert n_all == 1 + (len(POLICIES) - 1)


class TestCensoringAwareFits:
    def test_uniform_runs_hitting_max_flips_flow_through_censored_fit(self):
        # Regression (ISSUE-5): a tight flip budget on the uniform family
        # censors part of the campaign; sat_flips must report the censored
        # exponential MLE mean instead of the naive solved-only mean.
        config = _tiny(sat_family="uniform", n_sequential_runs=30, max_iterations=60)
        observations = collect_sat_observations(config)
        batch = observations[SAT_KEY]
        assert 0 < batch.n_solved < batch.n_runs, "need a partially censored batch"
        table = sat_flips_table(config, observations)
        assert table.censored_mean is not None
        # The censoring correction adds the capped runs' exposure: it must
        # exceed the naive mean of the solved runs.
        assert table.censored_mean > table.summary.mean
        assert "censoring-aware mean" in table.format()

    def test_fully_observed_batch_reports_no_censored_mean(self):
        config = _tiny(n_sequential_runs=8)
        observations = collect_sat_observations(config)
        assert observations[SAT_KEY].n_solved == 8
        table = sat_flips_table(config, observations)
        assert table.censored_mean is None
        assert "censoring-aware" not in table.format()

    def test_fully_censored_batch_formats_without_crashing(self):
        config = _tiny(sat_family="uniform", n_sequential_runs=6, max_iterations=1)
        observations = collect_sat_observations(config)
        assert observations[SAT_KEY].n_solved == 0
        table = sat_flips_table(config, observations)
        assert table.summary is None
        assert "every run was censored" in table.format()

    def test_policy_table_reports_per_policy_censoring(self):
        config = _tiny(sat_family="uniform", n_sequential_runs=20, max_iterations=60)
        table = sat_policy_table(config)
        assert table.policies == POLICIES
        assert set(table.censored_means) == set(POLICIES)
        formatted = table.format()
        for policy in POLICIES:
            assert policy in formatted
