"""CLI configuration overrides (profile / --runs / --seed plumbing)."""

import pytest

from repro.cli import _config_from_args, build_parser


def parse(args):
    return build_parser().parse_args(args)


class TestConfigFromArgs:
    def test_profile_selection(self):
        tiny = _config_from_args(parse(["run", "figure3", "--profile", "tiny"]))
        quick = _config_from_args(parse(["run", "figure3", "--profile", "quick"]))
        full = _config_from_args(parse(["run", "figure3", "--profile", "full"]))
        assert tiny.n_sequential_runs < quick.n_sequential_runs < full.n_sequential_runs
        assert full.all_interval_n > quick.all_interval_n

    def test_runs_override_keeps_instance_sizes(self):
        config = _config_from_args(parse(["run", "table2", "--profile", "tiny", "--runs", "7"]))
        tiny = _config_from_args(parse(["run", "table2", "--profile", "tiny"]))
        assert config.n_sequential_runs == 7
        assert config.magic_square_n == tiny.magic_square_n
        assert config.costas_n == tiny.costas_n

    def test_seed_override(self):
        config = _config_from_args(parse(["run", "table2", "--profile", "tiny", "--seed", "42"]))
        assert config.base_seed == 42

    def test_runs_and_seed_override_together(self):
        config = _config_from_args(
            parse(["run", "table2", "--profile", "tiny", "--runs", "9", "--seed", "5"])
        )
        assert config.n_sequential_runs == 9
        assert config.base_seed == 5

    def test_campaign_subcommand_shares_overrides(self):
        config = _config_from_args(parse(["campaign", "--profile", "tiny", "--runs", "3"]))
        assert config.n_sequential_runs == 3

    def test_sat_family_and_policy_overrides(self):
        args = parse(
            [
                "campaign",
                "--profile",
                "tiny",
                "--sat-family",
                "uniform",
                "--sat-policy",
                "novelty+",
            ]
        )
        config = _config_from_args(args)
        assert config.sat_family == "uniform"
        assert config.sat_policy == "novelty+"

    def test_sat_dimacs_override(self):
        config = _config_from_args(
            parse(
                [
                    "run",
                    "sat_flips",
                    "--sat-family",
                    "dimacs",
                    "--sat-dimacs",
                    "uf50-218-s1",
                ]
            )
        )
        assert config.sat_family == "dimacs"
        assert config.sat_dimacs == "uf50-218-s1"

    def test_sat_flags_default_to_the_profile_values(self):
        config = _config_from_args(parse(["campaign", "--profile", "tiny"]))
        assert config.sat_family == "planted"
        assert config.sat_policy == "walksat"

    def test_unknown_sat_policy_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            parse(["campaign", "--sat-policy", "gsat"])
        with pytest.raises(SystemExit):
            parse(["campaign", "--sat-family", "satlib"])

    def test_overrides_keep_the_profile_sat_instance(self):
        # dataclasses.replace semantics: --runs/--seed must not reset the
        # profile's SAT workload parameters back to the class defaults.
        tiny = _config_from_args(parse(["run", "sat_flips", "--profile", "tiny"]))
        overridden = _config_from_args(
            parse(["run", "sat_flips", "--profile", "tiny", "--runs", "5", "--seed", "3"])
        )
        assert overridden.sat_n_variables == tiny.sat_n_variables
        assert overridden.n_sequential_runs == 5
        assert overridden.base_seed == 3


class TestParserShape:
    def test_predict_defaults(self):
        args = parse(["predict"])
        assert args.input == "-"
        assert args.cores == [16, 32, 64, 128, 256]
        assert args.family is None
        assert not args.empirical

    def test_predict_family_and_cores(self):
        args = parse(["predict", "--family", "shifted_lognormal", "--cores", "8", "16"])
        assert args.family == "shifted_lognormal"
        assert args.cores == [8, 16]

    def test_run_accepts_multiple_experiments(self):
        args = parse(["run", "table1", "table5", "figure9"])
        assert args.experiments == ["table1", "table5", "figure9"]

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            parse([])


class TestDistributedCliFlags:
    def test_medium_profile_sits_between_quick_and_full(self):
        quick = _config_from_args(parse(["campaign", "--profile", "quick"]))
        medium = _config_from_args(parse(["campaign", "--profile", "medium"]))
        full = _config_from_args(parse(["campaign", "--profile", "full"]))
        assert quick.n_sequential_runs < medium.n_sequential_runs < full.n_sequential_runs
        assert quick.all_interval_n < medium.all_interval_n < full.all_interval_n

    def test_distributed_requires_exactly_one_transport(self):
        from repro.cli import _validate_engine_args

        neither = parse(["campaign", "--backend", "distributed"])
        assert "exactly one" in _validate_engine_args(neither)
        both = parse(
            ["campaign", "--backend", "distributed", "--coordinator", "h:1", "--job-dir", "d"]
        )
        assert "exactly one" in _validate_engine_args(both)
        ok = parse(["campaign", "--backend", "distributed", "--coordinator", "h:1"])
        assert _validate_engine_args(ok) is None

    def test_distributed_rejects_workers(self):
        from repro.cli import _validate_engine_args

        args = parse(
            ["campaign", "--backend", "distributed", "--coordinator", "h:1", "--workers", "4"]
        )
        assert "worker" in _validate_engine_args(args)

    def test_transport_flags_require_distributed_backend(self):
        from repro.cli import _validate_engine_args

        args = parse(["campaign", "--backend", "process", "--coordinator", "h:1"])
        assert "--backend distributed" in _validate_engine_args(args)
        # Tuning flags are rejected too, not silently ignored.
        args = parse(["campaign", "--backend", "process", "--unit-size", "32"])
        assert "--backend distributed" in _validate_engine_args(args)
        args = parse(["campaign", "--batch-timeout", "60"])
        assert "--backend distributed" in _validate_engine_args(args)

    def test_engine_backend_builds_a_configured_instance(self, tmp_path):
        from repro.cli import _engine_backend
        from repro.engine.distributed import DistributedBackend

        args = parse(
            [
                "campaign",
                "--backend",
                "distributed",
                "--job-dir",
                str(tmp_path),
                "--unit-size",
                "7",
            ]
        )
        backend = _engine_backend(args)
        assert isinstance(backend, DistributedBackend)
        assert backend.unit_size == 7
        assert _engine_backend(parse(["campaign", "--backend", "process"])) == "process"

    def test_worker_subcommand_defaults(self):
        args = parse(["worker", "--connect", "127.0.0.1:7821"])
        assert args.connect == "127.0.0.1:7821"
        assert args.job_dir is None
        assert args.backend == "serial"
        assert args.cache_dir is None
        assert args.connect_timeout == 30.0

    def test_worker_command_requires_one_transport(self, capsys):
        from repro.cli import main

        assert main(["worker"]) == 2
        assert "exactly one" in capsys.readouterr().err
