"""Figures 1–14 experiment functions."""

import math

import numpy as np
import pytest

from repro.experiments.figures_experiments import (
    figure6_csplib_speedups,
    figure7_costas_speedups,
    figure14_costas_extended,
)
from repro.experiments.figures_fits import (
    figure8_all_interval_fit,
    figure9_all_interval_prediction,
    figure10_magic_square_fit,
    figure11_magic_square_prediction,
    figure12_costas_fit,
    figure13_costas_prediction,
)
from repro.experiments.figures_model import (
    figure1_gaussian_min,
    figure2_exponential_min,
    figure3_exponential_speedup,
    figure4_lognormal_min,
    figure5_lognormal_speedup,
)


class TestModelFigures:
    def test_figure1_min_distribution_moves_toward_origin(self):
        figure = figure1_gaussian_min()
        peaks = [figure.peak_location(n) for n in (1, 10, 100, 1000)]
        assert all(a >= b for a, b in zip(peaks, peaks[1:]))
        assert peaks[0] > 3 * peaks[-1] or peaks[-1] == figure.grid[0]
        assert "Figure 1" in figure.format()

    def test_figure2_exponential_min_distributions(self):
        figure = figure2_exponential_min()
        assert set(figure.densities) == {1, 2, 4, 8}
        # The mass captured by the plotted window matches the CDF of Z(n) at
        # the right edge of the grid (and grows with n as the distribution
        # concentrates near the shift).
        masses = {}
        for n, dens in figure.densities.items():
            mass = np.trapezoid(dens, figure.grid)
            expected = float(figure.base.min_of(n).cdf(figure.grid[-1]))
            # Trapezoid error at the density jump at x0 dominates the tolerance.
            assert mass == pytest.approx(expected, abs=0.03), n
            masses[n] = mass
        assert masses[1] < masses[2] < masses[4] < masses[8]

    def test_figure3_speedup_curve_limit_11(self):
        figure = figure3_exponential_speedup()
        assert figure.limit == pytest.approx(11.0)
        assert figure.curve.speedups[0] == pytest.approx(1.0)
        assert max(figure.curve.speedups) < 11.0
        assert "limit" in figure.format()

    def test_figure4_lognormal_min_distributions(self):
        figure = figure4_lognormal_min()
        peaks = [figure.peak_location(n) for n in (1, 2, 4, 8)]
        assert all(a >= b for a, b in zip(peaks, peaks[1:]))

    def test_figure5_lognormal_speedup_range(self):
        """Paper Figure 5: speed-up around 25 at 256 cores."""
        figure = figure5_lognormal_speedup()
        final = figure.curve.speedups[-1]
        assert 20.0 < final < 32.0
        assert math.isinf(figure.limit)


class TestFitFigures:
    def test_figure8_exponential_fit_for_all_interval(self, tiny_config, tiny_observations):
        figure = figure8_all_interval_fit(tiny_config, tiny_observations)
        assert figure.fit.family == "shifted_exponential"
        assert figure.histogram.fitted is not None
        assert figure.histogram.total_mass() == pytest.approx(1.0, abs=1e-6)
        assert "Figure 8" in figure.format()

    def test_figure10_lognormal_fit_for_magic_square(self, tiny_config, tiny_observations):
        figure = figure10_magic_square_fit(tiny_config, tiny_observations)
        assert figure.fit.family == "shifted_lognormal"
        assert figure.benchmark == "MS"

    def test_figure12_costas_fit_has_negligible_shift(self, tiny_config, tiny_observations):
        figure = figure12_costas_fit(tiny_config, tiny_observations)
        params = figure.fit.distribution.params()
        # Costas rule: the shift is either zero or tiny relative to the mean.
        assert params["x0"] <= 0.05 * figure.fit.distribution.mean()

    def test_prediction_figures_are_monotone_curves(self, tiny_config, tiny_observations):
        for builder in (
            figure9_all_interval_prediction,
            figure11_magic_square_prediction,
            figure13_costas_prediction,
        ):
            figure = builder(tiny_config, tiny_observations)
            speedups = list(figure.curve.speedups)
            assert speedups[0] == pytest.approx(1.0)
            assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))
            assert figure.limit > 1.0

    def test_figure13_costas_is_nearly_linear(self, tiny_config, tiny_observations):
        """The Costas fit predicts (near-)linear scaling (Section 6.3)."""
        figure = figure13_costas_prediction(tiny_config, tiny_observations)
        curve = dict(zip(figure.curve.cores, figure.curve.speedups))
        largest = max(curve)
        assert curve[largest] > 0.5 * largest


class TestMeasuredFigures:
    def test_figure6_includes_ideal_and_both_benchmarks(self, tiny_config, tiny_observations):
        figure = figure6_csplib_speedups(tiny_config, tiny_observations)
        assert "Ideal" in figure.series
        assert len(figure.series) == 3
        assert figure.cores == tiny_config.cores
        # The ideal reference is exactly the core count; measured curves are positive.
        top = tiny_config.cores[-1]
        assert figure.speedup("Ideal", top) == pytest.approx(float(top))
        assert all(
            figure.speedup(name, top) > 0.0 for name in figure.series if name != "Ideal"
        )

    def test_figure7_costas_scales_well(self, tiny_config, tiny_observations):
        figure = figure7_costas_speedups(tiny_config, tiny_observations)
        label = tiny_observations["Costas"].label
        top = tiny_config.cores[-1]
        assert figure.speedup(label, top) > 0.3 * top

    def test_figure14_extends_to_large_core_counts(self, tiny_config, tiny_observations):
        figure = figure14_costas_extended(tiny_config, tiny_observations)
        assert max(figure.cores) == max(tiny_config.extended_cores)
        assert len(figure.series) == 3
        assert "measured" in " ".join(figure.series)
        assert "predicted" in " ".join(figure.series)

    def test_format_renders_series_table(self, tiny_config, tiny_observations):
        text = figure6_csplib_speedups(tiny_config, tiny_observations).format()
        assert "cores" in text
        assert "Ideal" in text
