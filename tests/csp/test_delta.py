"""Delta kernels vs the batch oracle: exactness under random swap walks.

The incremental-evaluation subsystem promises *bit-identical* costs to the
``cost_many`` batch path — not approximate agreement — because the solver's
tie-breaking and plateau decisions compare floats for equality.  These tests
pin that promise for all five benchmark kernels with fixed-seed randomised
trials (hypothesis-style: many random swap walks, deterministic seeds), plus
the generic ``swap_costs`` interface invariants from the issue checklist.
"""

import numpy as np
import pytest

from repro.csp.permutation import CSPPermutationAdapter, DeltaEvaluator
from repro.csp.problems import (
    AllIntervalProblem,
    CostasArrayProblem,
    LangfordProblem,
    MagicSquareProblem,
    NQueensProblem,
)

PROBLEMS = [
    pytest.param(lambda: NQueensProblem(8), id="n-queens-8"),
    pytest.param(lambda: CostasArrayProblem(7), id="costas-7"),
    pytest.param(lambda: AllIntervalProblem(9), id="all-interval-9"),
    pytest.param(lambda: MagicSquareProblem(4), id="magic-square-4"),
    pytest.param(lambda: LangfordProblem(4), id="langford-4"),
]

#: Small sizes stress the boundary / adjacency special cases of the kernels.
SMALL_PROBLEMS = [
    pytest.param(lambda: NQueensProblem(4), id="n-queens-4"),
    pytest.param(lambda: CostasArrayProblem(3), id="costas-3"),
    pytest.param(lambda: AllIntervalProblem(3), id="all-interval-3"),
    pytest.param(lambda: MagicSquareProblem(3), id="magic-square-3"),
    pytest.param(lambda: LangfordProblem(3), id="langford-3"),
]


@pytest.mark.parametrize("factory", PROBLEMS)
class TestSwapCostInvariants:
    """Interface invariants of the batched swap_costs oracle itself."""

    def test_self_swap_is_current_cost(self, factory):
        problem = factory()
        rng = np.random.default_rng(0)
        for _ in range(5):
            perm = problem.random_configuration(rng)
            index = int(rng.integers(problem.size))
            costs = problem.swap_costs(perm, index)
            assert costs[index] == problem.cost(perm)

    def test_swap_symmetry(self, factory):
        """Swapping (i, j) and swapping (j, i) are the same move."""
        problem = factory()
        rng = np.random.default_rng(1)
        perm = problem.random_configuration(rng)
        for _ in range(10):
            i = int(rng.integers(problem.size))
            j = int(rng.integers(problem.size))
            assert problem.swap_costs(perm, i)[j] == problem.swap_costs(perm, j)[i]


@pytest.mark.parametrize("factory", PROBLEMS + SMALL_PROBLEMS)
class TestDeltaKernelExactness:
    def test_attach_cost_matches_oracle(self, factory):
        problem = factory()
        evaluator = problem.delta_evaluator()
        assert isinstance(evaluator, DeltaEvaluator)
        rng = np.random.default_rng(2)
        for _ in range(5):
            perm = problem.random_configuration(rng)
            state = evaluator.attach(perm)
            assert float(state.cost) == problem.cost(perm)
            # attach copies: mutating the input must not corrupt the state
            perm[0] = perm[0]
            assert state.perm is not perm

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_swap_walk_stays_bit_identical(self, factory, seed):
        """Random walk of committed swaps; at every step the deltas, the
        maintained cost and the variable errors must equal the batch oracle
        exactly (no tolerance)."""
        problem = factory()
        evaluator = problem.delta_evaluator()
        rng = np.random.default_rng(seed)
        state = evaluator.attach(problem.random_configuration(rng))
        for step in range(40):
            index = int(rng.integers(problem.size))
            deltas = evaluator.swap_deltas(state, index)
            assert deltas[index] == 0.0
            oracle = problem.swap_costs(state.perm, index)
            np.testing.assert_array_equal(
                float(state.cost) + deltas,
                oracle,
                err_msg=f"{problem.describe()} seed={seed} step={step} index={index}",
            )
            np.testing.assert_array_equal(
                evaluator.variable_errors(state),
                problem.variable_errors(state.perm),
            )
            j = int(rng.integers(problem.size))
            evaluator.commit_swap(state, index, j)
            assert float(state.cost) == problem.cost(state.perm)
            assert problem.check_permutation(state.perm)

    def test_reset_rebinds_state(self, factory):
        problem = factory()
        evaluator = problem.delta_evaluator()
        rng = np.random.default_rng(5)
        state = evaluator.attach(problem.random_configuration(rng))
        evaluator.commit_swap(state, 0, problem.size - 1)
        fresh = problem.random_configuration(rng)
        evaluator.reset(state, fresh)
        np.testing.assert_array_equal(state.perm, fresh)
        assert float(state.cost) == problem.cost(fresh)
        # and the reset state keeps producing exact deltas
        oracle = problem.swap_costs(state.perm, 0)
        np.testing.assert_array_equal(float(state.cost) + evaluator.swap_deltas(state, 0), oracle)

    def test_evaluator_is_cached_per_problem(self, factory):
        problem = factory()
        assert problem.delta_evaluator() is problem.delta_evaluator()


class TestFallback:
    def test_csp_adapter_has_no_delta_evaluator(self):
        direct = AllIntervalProblem(5)
        adapter = CSPPermutationAdapter(direct.to_csp(), values=np.arange(5))
        assert adapter.delta_evaluator() is None
