"""Benchmark problems: ALL-INTERVAL, MAGIC-SQUARE, COSTAS, N-Queens, Langford."""

import numpy as np
import pytest

from repro.csp.problems import (
    AllIntervalProblem,
    CostasArrayProblem,
    LangfordProblem,
    MagicSquareProblem,
    NQueensProblem,
)


class TestAllInterval:
    def test_paper_example_n8_is_solution(self):
        """(3, 6, 0, 7, 2, 4, 5, 1) is the solution printed in Section 5.1."""
        problem = AllIntervalProblem(8)
        assert problem.is_solution(np.array([3, 6, 0, 7, 2, 4, 5, 1]))

    def test_reference_solution_valid_for_many_sizes(self):
        for n in (3, 5, 8, 12, 20):
            problem = AllIntervalProblem(n)
            assert problem.is_solution(AllIntervalProblem.reference_solution(n))

    def test_identity_permutation_is_maximally_conflicting(self):
        problem = AllIntervalProblem(10)
        perm = np.arange(10)
        # All differences equal 1: only one distinct value out of n-1 required.
        assert problem.cost(perm) == pytest.approx(10 - 2)

    def test_variable_errors_zero_exactly_on_solutions(self):
        problem = AllIntervalProblem(8)
        solution = AllIntervalProblem.reference_solution(8)
        assert problem.variable_errors(solution).sum() == 0.0
        bad = np.arange(8)
        assert problem.variable_errors(bad).sum() > 0.0

    def test_interval_vector(self):
        problem = AllIntervalProblem(4)
        np.testing.assert_array_equal(problem.interval_vector([0, 3, 1, 2]), [3, 2, 1])

    def test_rejects_tiny_instances(self):
        with pytest.raises(ValueError):
            AllIntervalProblem(2)


class TestMagicSquare:
    def test_duerer_square_is_solution(self):
        """Albrecht Duerer's Melencolia square from Section 5.2."""
        problem = MagicSquareProblem(4)
        duerer = np.array([16, 3, 2, 13, 5, 10, 11, 8, 9, 6, 7, 12, 4, 15, 14, 1])
        assert problem.is_solution(duerer)
        assert problem.cost(duerer) == 0.0

    def test_siamese_reference_solution(self):
        for n in (3, 5, 7):
            problem = MagicSquareProblem(n)
            assert problem.is_solution(MagicSquareProblem.reference_solution(n))

    def test_magic_constant(self):
        assert MagicSquareProblem(4).magic_constant == 34
        assert MagicSquareProblem(200).magic_constant == 200 * (200 * 200 + 1) // 2

    def test_cost_counts_all_line_violations(self):
        problem = MagicSquareProblem(3)
        perm = np.arange(1, 10)  # rows 6, 15, 24 vs magic constant 15
        grid_cost = abs(6 - 15) + abs(15 - 15) + abs(24 - 15)  # rows
        col_cost = 3 * abs(12 - 15) + 0  # columns sums are 12, 15, 18
        col_cost = abs(12 - 15) + abs(15 - 15) + abs(18 - 15)
        diag_cost = abs((1 + 5 + 9) - 15) + abs((3 + 5 + 7) - 15)
        assert problem.cost(perm) == pytest.approx(grid_cost + col_cost + diag_cost)

    def test_variable_errors_vanish_on_solution(self):
        problem = MagicSquareProblem(5)
        solution = MagicSquareProblem.reference_solution(5)
        assert problem.variable_errors(solution).sum() == 0.0

    def test_as_grid_round_trip(self):
        problem = MagicSquareProblem(3)
        perm = MagicSquareProblem.reference_solution(3)
        grid = problem.as_grid(perm)
        assert grid.shape == (3, 3)
        np.testing.assert_array_equal(grid.reshape(-1), perm)

    def test_csp_model_agrees_on_solutions(self):
        problem = MagicSquareProblem(3)
        csp = problem.to_csp()
        solution = MagicSquareProblem.reference_solution(3)
        assignment = {f"c{i // 3}_{i % 3}": int(v) for i, v in enumerate(solution)}
        assert csp.is_solution(assignment)
        assert csp.cost(assignment) == 0.0

    def test_reference_solution_rejects_even_orders(self):
        with pytest.raises(ValueError):
            MagicSquareProblem.reference_solution(4)


class TestCostasArray:
    def test_paper_example_size5(self):
        """[3, 4, 2, 1, 5] is the Costas array drawn in Section 5.3."""
        problem = CostasArrayProblem(5)
        assert problem.is_solution(np.array([3, 4, 2, 1, 5]))

    def test_welch_construction_is_valid(self):
        # p = 11, primitive root 2 -> Costas array of order 10.
        problem = CostasArrayProblem(10)
        welch = CostasArrayProblem.welch_construction(11, 2)
        assert problem.check_permutation(welch)
        assert problem.is_solution(welch)

    def test_duplicate_vectors_are_counted(self):
        problem = CostasArrayProblem(4)
        perm = np.array([1, 2, 3, 4])  # arithmetic progression: many equal vectors
        assert problem.cost(perm) > 0.0

    def test_variable_errors_flag_involved_columns(self):
        problem = CostasArrayProblem(5)
        perm = np.array([1, 2, 3, 4, 5])
        errors = problem.variable_errors(perm)
        assert errors.shape == (5,)
        assert errors.sum() > 0.0
        solution = np.array([3, 4, 2, 1, 5])
        assert problem.variable_errors(solution).sum() == 0.0

    def test_displacement_table_contents(self):
        problem = CostasArrayProblem(4)
        table = problem.displacement_table(np.array([2, 1, 4, 3]))
        np.testing.assert_array_equal(table[1], [-1, 3, -1])
        np.testing.assert_array_equal(table[3], [1])

    def test_csp_model_agrees(self):
        problem = CostasArrayProblem(5)
        csp = problem.to_csp()
        solution = {f"v{i}": v for i, v in enumerate([3, 4, 2, 1, 5])}
        assert csp.is_solution(solution)


class TestNQueens:
    def test_known_solution(self):
        problem = NQueensProblem(8)
        solution = np.array([0, 4, 7, 5, 2, 6, 1, 3])
        assert problem.is_solution(solution)

    def test_all_queens_on_diagonal_is_worst_case(self):
        problem = NQueensProblem(6)
        assert problem.cost(np.arange(6)) == pytest.approx(5.0)  # one shared anti-diagonal? no: main diagonal

    def test_variable_errors_count_conflicting_columns(self):
        problem = NQueensProblem(5)
        errors = problem.variable_errors(np.arange(5))
        assert np.all(errors > 0)

    def test_rejects_unsolvable_sizes(self):
        with pytest.raises(ValueError):
            NQueensProblem(3)


class TestLangford:
    def test_reference_solutions(self):
        for n in (3, 4):
            problem = LangfordProblem(n)
            assert problem.is_solution(LangfordProblem.reference_solution(n))

    def test_multiset_values(self):
        problem = LangfordProblem(3)
        np.testing.assert_array_equal(np.sort(problem.values), [1, 1, 2, 2, 3, 3])

    def test_rejects_sizes_without_solutions(self):
        with pytest.raises(ValueError):
            LangfordProblem(5)
        with pytest.raises(ValueError):
            LangfordProblem(2)

    def test_cost_positive_for_bad_arrangement(self):
        problem = LangfordProblem(3)
        assert problem.cost(np.array([1, 1, 2, 2, 3, 3])) > 0.0

    def test_variable_errors_follow_value_errors(self):
        problem = LangfordProblem(3)
        perm = np.array([1, 1, 2, 2, 3, 3])
        errors = problem.variable_errors(perm)
        # Positions holding value 1 share value-1's error, etc.
        assert errors[0] == errors[1]
        assert errors[2] == errors[3]
        solution = LangfordProblem.reference_solution(3)
        assert problem.variable_errors(solution).sum() == 0.0
