"""PermutationProblem interface and the general-CSP adapter."""

import numpy as np
import pytest

from repro.csp.permutation import CSPPermutationAdapter, PermutationProblem
from repro.csp.problems import AllIntervalProblem, NQueensProblem


class TestSwapCosts:
    def test_swap_costs_match_explicit_recomputation(self):
        problem = NQueensProblem(6)
        rng = np.random.default_rng(0)
        perm = problem.random_configuration(rng)
        index = 2
        costs = problem.swap_costs(perm, index)
        for j in range(problem.size):
            swapped = perm.copy()
            swapped[index], swapped[j] = swapped[j], swapped[index]
            assert costs[j] == pytest.approx(problem.cost(swapped))

    def test_swap_cost_at_own_index_is_current_cost(self):
        problem = AllIntervalProblem(8)
        rng = np.random.default_rng(1)
        perm = problem.random_configuration(rng)
        costs = problem.swap_costs(perm, 3)
        assert costs[3] == pytest.approx(problem.cost(perm))

    def test_swap_costs_rejects_bad_index(self):
        problem = AllIntervalProblem(6)
        perm = problem.random_configuration(np.random.default_rng(2))
        with pytest.raises(IndexError):
            problem.swap_costs(perm, 17)


class TestRandomConfiguration:
    def test_random_configuration_is_permutation(self):
        problem = AllIntervalProblem(9)
        rng = np.random.default_rng(3)
        for _ in range(5):
            perm = problem.random_configuration(rng)
            assert problem.check_permutation(perm)

    def test_check_permutation_detects_corruption(self):
        problem = AllIntervalProblem(5)
        assert not problem.check_permutation(np.array([0, 0, 1, 2, 3]))
        assert not problem.check_permutation(np.array([0, 1, 2]))

    def test_size_validation(self):
        with pytest.raises(ValueError):
            NQueensProblem(2)


class TestDescribeAndCost:
    def test_describe_contains_name_and_size(self):
        assert "all-interval" in AllIntervalProblem(7).describe()
        assert "7" in AllIntervalProblem(7).describe()

    def test_cost_many_shape_validation(self):
        problem = AllIntervalProblem(6)
        with pytest.raises(ValueError):
            problem.cost_many(np.zeros((2, 5), dtype=np.int64))


class TestCSPAdapter:
    def test_adapter_matches_direct_implementation(self):
        """The general-CSP model of ALL-INTERVAL agrees with the fast implementation
        on solution membership (the error scales differ by construction)."""
        direct = AllIntervalProblem(6)
        adapter = CSPPermutationAdapter(direct.to_csp(), values=np.arange(6))
        rng = np.random.default_rng(5)
        for _ in range(20):
            perm = direct.random_configuration(rng)
            assert (direct.cost(perm) == 0.0) == (adapter.cost(perm) == 0.0)

    def test_adapter_variable_errors_flag_conflicts(self):
        direct = AllIntervalProblem(6)
        adapter = CSPPermutationAdapter(direct.to_csp(), values=np.arange(6))
        perm = np.array([0, 1, 2, 3, 4, 5])  # all differences equal: maximal conflict
        errors = adapter.variable_errors(perm)
        assert errors.shape == (6,)
        assert errors.max() > 0.0

    def test_adapter_solves_with_reference_solution(self):
        direct = AllIntervalProblem(8)
        adapter = CSPPermutationAdapter(direct.to_csp(), values=np.arange(8))
        solution = AllIntervalProblem.reference_solution(8)
        assert adapter.is_solution(solution)

    def test_adapter_is_a_permutation_problem(self):
        adapter = CSPPermutationAdapter(AllIntervalProblem(5).to_csp(), values=np.arange(5))
        assert isinstance(adapter, PermutationProblem)
