"""General CSP model: variables, constraints, error projection."""

import numpy as np
import pytest

from repro.csp.constraints import AllDifferentConstraint, LinearSumConstraint
from repro.csp.model import CSP, Variable


@pytest.fixture
def simple_csp():
    variables = [Variable(f"x{i}", (1, 2, 3)) for i in range(3)]
    constraints = [
        AllDifferentConstraint(["x0", "x1", "x2"]),
        LinearSumConstraint(["x0", "x1", "x2"], target=6.0),
    ]
    return CSP(variables, constraints)


class TestVariable:
    def test_rejects_empty_name_or_domain(self):
        with pytest.raises(ValueError):
            Variable("", (1,))
        with pytest.raises(ValueError):
            Variable("x", ())
        with pytest.raises(ValueError):
            Variable("x", (1, 1))


class TestCSPConstruction:
    def test_rejects_duplicate_variable_names(self):
        with pytest.raises(ValueError):
            CSP([Variable("x", (1,)), Variable("x", (2,))], [])

    def test_rejects_unknown_constraint_variables(self):
        with pytest.raises(ValueError):
            CSP([Variable("x", (1, 2))], [LinearSumConstraint(["y"], 1.0)])

    def test_rejects_no_variables(self):
        with pytest.raises(ValueError):
            CSP([], [])

    def test_variable_index_and_constraints_on(self, simple_csp):
        assert simple_csp.variable_index("x1") == 1
        assert len(simple_csp.constraints_on("x0")) == 2


class TestCostAndErrors:
    def test_solution_has_zero_cost(self, simple_csp):
        assignment = {"x0": 1, "x1": 2, "x2": 3}
        assert simple_csp.cost(assignment) == 0.0
        assert simple_csp.is_solution(assignment)

    def test_violations_add_up(self, simple_csp):
        assignment = {"x0": 1, "x1": 1, "x2": 1}
        # all-different error: 2 duplicates; sum error: |3 - 6| = 3.
        assert simple_csp.cost(assignment) == pytest.approx(5.0)
        assert not simple_csp.is_solution(assignment)

    def test_constraint_errors_vector(self, simple_csp):
        errors = simple_csp.constraint_errors({"x0": 1, "x1": 1, "x2": 1})
        np.testing.assert_allclose(errors, [2.0, 3.0])

    def test_variable_errors_projection(self, simple_csp):
        errors = simple_csp.variable_errors({"x0": 1, "x1": 1, "x2": 4})
        # all-different error 1 (x0=x1), sum error |6-6|=0.
        assert errors["x0"] == pytest.approx(1.0)
        assert errors["x1"] == pytest.approx(1.0)
        assert errors["x2"] == pytest.approx(1.0)  # alldiff involves every variable

    def test_weighted_constraints(self):
        variables = [Variable("a", (0, 1)), Variable("b", (0, 1))]
        heavy = LinearSumConstraint(["a", "b"], target=2.0, weight=10.0)
        csp = CSP(variables, [heavy])
        assert csp.cost({"a": 0, "b": 0}) == pytest.approx(20.0)

    def test_missing_variable_raises(self, simple_csp):
        with pytest.raises(KeyError):
            simple_csp.cost({"x0": 1})

    def test_domain_violation_is_not_a_solution(self):
        csp = CSP([Variable("x", (1, 2))], [])
        assert not csp.is_solution({"x": 5})

    def test_random_assignment_respects_domains(self, simple_csp, rng):
        for _ in range(10):
            assignment = simple_csp.random_assignment(rng)
            assert set(assignment) == {"x0", "x1", "x2"}
            assert all(v in (1, 2, 3) for v in assignment.values())
