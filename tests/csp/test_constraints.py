"""Constraint error functions."""

import pytest

from repro.csp.constraints import (
    AllDifferentConstraint,
    FunctionalAllDifferentConstraint,
    LinearSumConstraint,
)


class TestAllDifferent:
    def test_zero_error_when_all_distinct(self):
        constraint = AllDifferentConstraint(["a", "b", "c"])
        assert constraint.error({"a": 1, "b": 2, "c": 3}) == 0.0
        assert constraint.is_satisfied({"a": 1, "b": 2, "c": 3})

    def test_error_counts_duplicates(self):
        constraint = AllDifferentConstraint(["a", "b", "c", "d"])
        assert constraint.error({"a": 1, "b": 1, "c": 1, "d": 2}) == 2.0
        assert constraint.error({"a": 1, "b": 1, "c": 2, "d": 2}) == 2.0

    def test_rejects_degenerate_variable_lists(self):
        with pytest.raises(ValueError):
            AllDifferentConstraint(["a"])
        with pytest.raises(ValueError):
            AllDifferentConstraint(["a", "a"])

    def test_variable_names_exposed(self):
        constraint = AllDifferentConstraint(["a", "b"])
        assert constraint.variable_names == ("a", "b")


class TestLinearSum:
    def test_error_is_absolute_deviation(self):
        constraint = LinearSumConstraint(["a", "b"], target=10.0)
        assert constraint.error({"a": 4, "b": 6}) == 0.0
        assert constraint.error({"a": 4, "b": 2}) == 4.0
        assert constraint.error({"a": 10, "b": 6}) == 6.0

    def test_coefficients(self):
        constraint = LinearSumConstraint(["a", "b"], target=0.0, coefficients=[1.0, -1.0])
        assert constraint.error({"a": 5, "b": 5}) == 0.0
        assert constraint.error({"a": 7, "b": 5}) == 2.0

    def test_rejects_mismatched_coefficients(self):
        with pytest.raises(ValueError):
            LinearSumConstraint(["a", "b"], 1.0, coefficients=[1.0])
        with pytest.raises(ValueError):
            LinearSumConstraint([], 1.0)


class TestFunctionalAllDifferent:
    def test_derived_terms_error(self):
        """ALL-INTERVAL-style constraint on consecutive differences."""
        names = ["x0", "x1", "x2", "x3"]
        constraint = FunctionalAllDifferentConstraint(
            names,
            lambda a: [abs(a[names[i]] - a[names[i + 1]]) for i in range(3)],
        )
        # Solution-like assignment: differences 3, 2, 1 all distinct.
        assert constraint.error({"x0": 0, "x1": 3, "x2": 1, "x3": 2}) == 0.0
        # Differences 1, 1, 1: two duplicates.
        assert constraint.error({"x0": 0, "x1": 1, "x2": 2, "x3": 3}) == 2.0

    def test_rejects_empty_variable_list(self):
        with pytest.raises(ValueError):
            FunctionalAllDifferentConstraint([], lambda a: [])

    def test_weight_scales_in_csp_cost(self):
        from repro.csp.model import CSP, Variable

        names = ["a", "b"]
        constraint = FunctionalAllDifferentConstraint(
            names, lambda s: [s["a"] % 2, s["b"] % 2], weight=3.0
        )
        csp = CSP([Variable(n, (0, 1, 2, 3)) for n in names], [constraint])
        assert csp.cost({"a": 2, "b": 0}) == pytest.approx(3.0)
