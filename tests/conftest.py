"""Shared fixtures for the test suite.

Solver campaigns are by far the slowest part of testing, so a single tiny
campaign is collected once per session and shared by every experiment-layer
test through the ``tiny_observations`` fixture.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.data import collect_benchmark_observations


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator for each test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    """Smallest meaningful experiment configuration."""
    return ExperimentConfig.tiny()


@pytest.fixture(scope="session")
def tiny_observations(tiny_config):
    """One shared solver campaign for all experiment-layer tests."""
    return collect_benchmark_observations(tiny_config)
