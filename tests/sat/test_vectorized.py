"""Exactness of the lockstep kernel against the scalar WalkSAT oracle.

Two layers of pinning:

* End-to-end bit-identity: for every (instance family, restart schedule,
  batch width K) combination, ``run_lockstep`` must return exactly the
  ``RunResult`` sequence of the scalar incremental solver — same
  ``solved``/``iterations``/``restarts``/``seed`` and the same solution
  bits.  This is the contract that lets the engine's lockstep backend
  claim backend-invariance without re-proving determinism.
* State-level bookkeeping: a hypothesis random walk of flips and restarts
  over :class:`LockstepClauseState` must keep every walk's counts, break/
  make scores and — crucially — the *internal ordering* of the maintained
  unsatisfied set equal to the scalar :class:`ClauseEvaluator`'s, because
  the clause pick consumes an RNG rank into exactly that ordering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import (
    CNFFormula,
    LockstepEvaluator,
    load_bundled_instance,
    random_ksat,
    random_planted_ksat,
)
from repro.sat.vectorized import LOCKSTEP_POLICIES, restart_cutoff, run_lockstep
from repro.solvers.walksat import WalkSAT, WalkSATConfig

# -- instance families of the bit-identity matrix ------------------------

_INSTANCES = {
    "planted": lambda: random_planted_ksat(30, 126, rng=np.random.default_rng(5))[0],
    "uniform": lambda: random_ksat(25, 105, k=3, rng=np.random.default_rng(9)),
    "dimacs": lambda: load_bundled_instance("uf20-91-s1"),
}

_RESTARTS = {
    "norestart": dict(restart_after=None),
    "fixed": dict(restart_after=60, restart_schedule="fixed"),
    "luby": dict(restart_after=40, restart_schedule="luby"),
}


def _compare(formula: CNFFormula, config: WalkSATConfig, seeds: list[int]) -> None:
    solver = WalkSAT(formula, config)
    scalar = [solver.run(seed) for seed in seeds]
    lockstep = run_lockstep(formula, config, seeds)
    assert len(lockstep) == len(scalar)
    for seed, expect, got in zip(seeds, scalar, lockstep):
        assert (got.solved, got.iterations, got.restarts, got.seed) == (
            expect.solved,
            expect.iterations,
            expect.restarts,
            expect.seed,
        ), f"seed {seed} diverged under {config.policy}/{config.restart_schedule}"
        if expect.solved:
            np.testing.assert_array_equal(got.solution, expect.solution)
            assert formula.is_satisfied(got.solution)
        else:
            assert got.solution is None


class TestLockstepBitIdentity:
    """run_lockstep == scalar WalkSAT, walk by walk, bit for bit."""

    @pytest.mark.parametrize("restarts", sorted(_RESTARTS), ids=sorted(_RESTARTS))
    @pytest.mark.parametrize("family", sorted(_INSTANCES), ids=sorted(_INSTANCES))
    @pytest.mark.parametrize("n_walks", [1, 3, 64])
    def test_matches_scalar_walksat(self, family, restarts, n_walks):
        formula = _INSTANCES[family]()
        config = WalkSATConfig(max_flips=400, **_RESTARTS[restarts])
        _compare(formula, config, list(range(n_walks)))

    @pytest.mark.parametrize("restarts", ["norestart", "luby"])
    def test_adaptive_policy_matches_scalar(self, restarts):
        formula = _INSTANCES["planted"]()
        config = WalkSATConfig(max_flips=400, policy="adaptive", **_RESTARTS[restarts])
        _compare(formula, config, list(range(16)))

    def test_nonconsecutive_and_large_seeds(self):
        formula = _INSTANCES["uniform"]()
        config = WalkSATConfig(max_flips=300)
        _compare(formula, config, [0, 2**31 - 1, 12345, 7, 7])

    def test_mixed_clause_widths(self):
        # Non-uniform clause widths exercise the padded selection masks.
        formula = CNFFormula(
            6, [(1, -2), (2, 3, -4), (-1, 5, 6, -3), (4,), (-5, -6), (1, 2, 3)]
        )
        _compare(formula, WalkSATConfig(max_flips=200), list(range(12)))
        _compare(
            formula,
            WalkSATConfig(max_flips=200, restart_after=15, restart_schedule="luby"),
            list(range(12)),
        )

    def test_unsatisfiable_runs_are_censored_identically(self):
        formula = CNFFormula(1, [(1,), (-1,)])
        config = WalkSATConfig(max_flips=60, restart_after=4, restart_schedule="luby")
        _compare(formula, config, list(range(6)))

    def test_empty_seed_list(self):
        assert run_lockstep(_INSTANCES["planted"](), WalkSATConfig(), []) == []

    def test_rejects_unvectorised_policies(self):
        formula = _INSTANCES["planted"]()
        with pytest.raises(ValueError, match="lockstep kernel supports"):
            run_lockstep(formula, WalkSATConfig(policy="novelty+"), [0])

    def test_solver_entry_point_routes_and_falls_back(self):
        formula = _INSTANCES["planted"]()
        fast = WalkSAT(formula, WalkSATConfig(max_flips=400))
        assert fast.lockstep_supported()
        slow = WalkSAT(formula, WalkSATConfig(max_flips=400, policy="novelty+"))
        assert not slow.lockstep_supported()
        assert "novelty+" not in LOCKSTEP_POLICIES
        # The fallback still honours the contract: same results as run().
        seeds = [3, 1, 4]
        for solver in (fast, slow):
            batch = solver.run_lockstep(seeds)
            for seed, got in zip(seeds, batch):
                expect = solver.run(seed)
                assert (got.solved, got.iterations, got.seed) == (
                    expect.solved,
                    expect.iterations,
                    expect.seed,
                )


class TestRestartCutoff:
    def test_none_disables_restarts(self):
        assert restart_cutoff(None, "fixed", 0) is None
        assert restart_cutoff(None, "luby", 3) is None

    def test_fixed_is_constant(self):
        assert [restart_cutoff(50, "fixed", k) for k in range(5)] == [50] * 5

    def test_luby_scales_by_the_universal_sequence(self):
        # Luby terms: 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, ...
        expected = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2]
        assert [restart_cutoff(40, "luby", k) for k in range(10)] == [
            40 * term for term in expected
        ]


# -- hypothesis: state bookkeeping pinned against ClauseEvaluator --------

_formulas = st.sampled_from(
    [
        random_ksat(12, 50, k=3, rng=np.random.default_rng(0)),
        random_planted_ksat(15, 63, rng=np.random.default_rng(1))[0],
        CNFFormula(4, [(1, 1), (1, -1), (-2, -2, 1), (3, -4), (2,)]),
    ]
)


@settings(max_examples=40, deadline=None)
@given(
    formula=_formulas,
    n_walks=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    steps=st.lists(
        st.tuples(st.integers(min_value=0, max_value=10_000), st.booleans()),
        min_size=1,
        max_size=60,
    ),
)
def test_lockstep_state_matches_scalar_evaluator(formula, n_walks, seed, steps):
    """Random walk of flips/restarts: every maintained quantity — counts,
    break/make scores, and the unsatisfied set *in internal order* — must
    stay equal between LockstepClauseState and one ClauseEvaluator state
    per walk driven through the identical edit sequence."""
    rng = np.random.default_rng(seed)
    evaluator = LockstepEvaluator(formula)
    scalar = formula.clause_evaluator()
    assignments = np.stack([formula.random_assignment(rng) for _ in range(n_walks)])
    state = evaluator.attach(assignments)
    oracle = [scalar.attach(assignments[walk].copy()) for walk in range(n_walks)]

    def check() -> None:
        for walk in range(n_walks):
            np.testing.assert_array_equal(
                state.true_counts[walk, : formula.n_clauses], oracle[walk].true_counts
            )
            np.testing.assert_array_equal(
                state.assignment[walk], oracle[walk].assignment
            )
            assert state.unsat_list[walk] == oracle[walk].unsat_list
            assert state.n_unsat(walk) == oracle[walk].n_unsat
        walks = np.repeat(np.arange(n_walks), formula.n_variables)
        variables = np.tile(np.arange(formula.n_variables), n_walks)
        breaks = state.break_counts(walks, variables).reshape(n_walks, -1)
        makes = state.make_counts(walks, variables).reshape(n_walks, -1)
        for walk in range(n_walks):
            for variable in range(formula.n_variables):
                assert breaks[walk, variable] == scalar.break_count(
                    oracle[walk], variable
                )
                assert makes[walk, variable] == scalar.make_count(
                    oracle[walk], variable
                )

    check()
    for value, restart in steps:
        if restart:
            walk = value % n_walks
            fresh = formula.random_assignment(rng)
            state.reinit_walk(walk, fresh)
            scalar.reset(oracle[walk], fresh.copy())
        else:
            # One batched flip of a (possibly repeated) variable per walk.
            variables = np.array(
                [(value + 7 * walk) % formula.n_variables for walk in range(n_walks)],
                dtype=np.int64,
            )
            state.flip(np.arange(n_walks), variables)
            for walk in range(n_walks):
                scalar.flip(oracle[walk], int(variables[walk]))
        check()
