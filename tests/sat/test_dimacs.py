"""DIMACS serialisation: header validation, file parsing, round-trip property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sat import CNFFormula


def _formulas() -> st.SearchStrategy[CNFFormula]:
    """Random small CNF formulas, duplicates and tautologies included."""

    def build(n_variables: int, raw_clauses):
        clauses = []
        for clause in raw_clauses:
            literals = tuple(
                (variable % n_variables) + 1 if positive else -((variable % n_variables) + 1)
                for variable, positive in clause
            )
            clauses.append(literals)
        return CNFFormula(n_variables, clauses)

    return st.integers(min_value=1, max_value=9).flatmap(
        lambda n: st.builds(
            build,
            st.just(n),
            st.lists(
                st.lists(
                    st.tuples(st.integers(min_value=0, max_value=50), st.booleans()),
                    min_size=1,
                    max_size=5,
                ),
                min_size=1,
                max_size=12,
            ),
        )
    )


class TestRoundTripProperty:
    @settings(max_examples=60, deadline=None)
    @given(_formulas())
    def test_to_dimacs_then_from_dimacs_is_identity(self, formula):
        parsed = CNFFormula.from_dimacs(formula.to_dimacs())
        assert parsed.n_variables == formula.n_variables
        assert parsed.clauses == formula.clauses

    @settings(max_examples=20, deadline=None)
    @given(_formulas())
    def test_round_trip_preserves_satisfaction(self, formula):
        parsed = CNFFormula.from_dimacs(formula.to_dimacs())
        rng = np.random.default_rng(0)
        assignment = formula.random_assignment(rng)
        assert parsed.count_unsatisfied(assignment) == formula.count_unsatisfied(assignment)


class TestHeaderValidation:
    def test_declared_clause_count_mismatch_warns(self):
        text = "p cnf 2 3\n1 -2 0\n2 0\n"  # declares 3, provides 2
        with pytest.warns(UserWarning, match="declares 3 clauses but 2 were parsed"):
            formula = CNFFormula.from_dimacs(text)
        assert formula.n_clauses == 2

    def test_declared_clause_count_mismatch_raises_in_strict_mode(self):
        text = "p cnf 2 3\n1 -2 0\n2 0\n"
        with pytest.raises(ValueError, match="declares 3 clauses"):
            CNFFormula.from_dimacs(text, strict=True)

    def test_matching_header_is_silent(self, recwarn):
        formula = CNFFormula.from_dimacs("p cnf 2 2\n1 -2 0\n2 0\n")
        assert formula.n_clauses == 2
        assert not recwarn.list

    def test_trailing_clause_without_terminator_is_counted(self):
        # The final 0 is optional in the wild; the count check must see it.
        formula = CNFFormula.from_dimacs("p cnf 2 2\n1 -2 0\n2")
        assert formula.n_clauses == 2


class TestFileParsing:
    def test_from_dimacs_file_round_trip(self, tmp_path):
        formula = CNFFormula(3, [(1, -2, 3), (-1, 2), (3,)])
        path = tmp_path / "instance.cnf"
        path.write_text(formula.to_dimacs())
        parsed = CNFFormula.from_dimacs_file(path)
        assert parsed.clauses == formula.clauses
        assert parsed.n_variables == formula.n_variables

    def test_from_dimacs_file_accepts_str_paths_and_strict(self, tmp_path):
        path = tmp_path / "bad.cnf"
        path.write_text("p cnf 1 5\n1 0\n")
        with pytest.warns(UserWarning):
            CNFFormula.from_dimacs_file(str(path))
        with pytest.raises(ValueError):
            CNFFormula.from_dimacs_file(str(path), strict=True)
