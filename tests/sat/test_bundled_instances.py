"""Bundled DIMACS instances: catalogue, strict parsing, satisfiability."""

import numpy as np
import pytest

from repro.sat import (
    CNFFormula,
    bundled_instance_names,
    bundled_instance_path,
    load_bundled_instance,
)
from repro.sat.dimacs import DEFAULT_INSTANCE
from repro.solvers.walksat import WalkSAT, WalkSATConfig


class TestCatalogue:
    def test_expected_instances_are_bundled(self):
        names = bundled_instance_names()
        assert DEFAULT_INSTANCE in names
        assert {"uf20-91-s1", "uf20-91-s2", "uf50-218-s1", "uf100-430-s1"} <= set(names)

    def test_unknown_name_raises_with_catalogue(self):
        with pytest.raises(ValueError, match="bundled instances"):
            bundled_instance_path("uf9000-nope")
        with pytest.raises(ValueError):
            load_bundled_instance("uf9000-nope")

    def test_paths_point_at_cnf_files(self):
        for name in bundled_instance_names():
            path = bundled_instance_path(name)
            assert path.suffix == ".cnf"
            assert path.is_file()


class TestLoading:
    def test_headers_are_strict_clean(self):
        # Bundled headers are machine-generated: declared counts must match
        # exactly even under strict parsing (a mismatch is a corrupted
        # checkout, not a sloppy header).
        for name in bundled_instance_names():
            formula = CNFFormula.from_dimacs_file(bundled_instance_path(name), strict=True)
            assert formula.n_clauses >= 1

    def test_sizes_match_the_names(self):
        f20 = load_bundled_instance("uf20-91-s1")
        assert (f20.n_variables, f20.n_clauses) == (20, 91)
        f50 = load_bundled_instance("uf50-218-s1")
        assert (f50.n_variables, f50.n_clauses) == (50, 218)
        f100 = load_bundled_instance("uf100-430-s1")
        assert (f100.n_variables, f100.n_clauses) == (100, 430)

    def test_default_instance_loads_by_default(self):
        assert load_bundled_instance().n_variables == 20

    def test_uf20_satisfiable_by_exhaustion(self):
        # n=20 is small enough to check the bundled satisfiability claim
        # exactly, not just probabilistically.
        formula = load_bundled_instance("uf20-91-s1")
        n = formula.n_variables
        found = False
        for start in range(0, 2**n, 1 << 16):
            idx = np.arange(start, min(2**n, start + (1 << 16)), dtype=np.uint64)
            bits = ((idx[:, None] >> np.arange(n, dtype=np.uint64)) & 1).astype(bool)
            ok = np.ones(len(idx), dtype=bool)
            for clause in formula.clauses:
                vals = np.zeros(len(idx), dtype=bool)
                for lit in clause:
                    v = bits[:, abs(lit) - 1]
                    vals |= v if lit > 0 else ~v
                ok &= vals
                if not ok.any():
                    break
            if ok.any():
                found = True
                break
        assert found

    @pytest.mark.parametrize("name", ["uf20-91-s2", "uf50-218-s1", "uf100-430-s1"])
    def test_instances_are_walksat_solvable(self, name):
        formula = load_bundled_instance(name)
        result = WalkSAT(formula, WalkSATConfig(max_flips=2_000_000)).run(0)
        assert result.solved
        assert formula.is_satisfied(result.solution)
