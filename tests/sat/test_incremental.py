"""Exactness of the incremental clause state against the batch oracle.

Mirrors ``tests/csp/test_delta.py``: long random walks of flips and resets
(hypothesis-style, deterministic seeds) after which every maintained
quantity must equal its from-scratch recomputation — plus the ordering
invariant that makes the incremental and batch paths bit-identical inside
WalkSAT's hot loop.
"""

import numpy as np
import pytest

from repro.sat import (
    BatchClausePath,
    CNFFormula,
    IncrementalClausePath,
    random_ksat,
    random_planted_ksat,
)


def _random_formula(seed: int, n_variables: int = 20, n_clauses: int = 85) -> CNFFormula:
    return random_ksat(n_variables, n_clauses, k=3, rng=np.random.default_rng(seed))


class TestClauseEvaluatorExactness:
    @pytest.mark.parametrize("seed", range(4))
    def test_counts_exact_after_random_walk(self, seed):
        formula = _random_formula(seed)
        rng = np.random.default_rng(1000 + seed)
        evaluator = formula.clause_evaluator()
        assignment = formula.random_assignment(rng)
        state = evaluator.attach(assignment)
        for step in range(200):
            variable = int(rng.integers(formula.n_variables))
            evaluator.flip(state, variable)
            if step % 50 == 49:  # occasional reset, as restarts do
                evaluator.reset(state, formula.random_assignment(rng))
        np.testing.assert_array_equal(
            state.true_counts, formula.true_literal_counts(state.assignment)
        )
        assert sorted(state.unsat_list) == list(
            formula.unsatisfied_clauses(state.assignment)
        )
        assert state.cost == formula.count_unsatisfied(state.assignment)

    @pytest.mark.parametrize("seed", range(3))
    def test_break_and_make_counts_match_oracle(self, seed):
        formula = _random_formula(seed, n_variables=15, n_clauses=60)
        rng = np.random.default_rng(2000 + seed)
        evaluator = formula.clause_evaluator()
        state = evaluator.attach(formula.random_assignment(rng))
        for _ in range(40):
            evaluator.flip(state, int(rng.integers(formula.n_variables)))
            for variable in range(formula.n_variables):
                assert evaluator.break_count(state, variable) == formula.break_count(
                    state.assignment, variable
                )
                assert evaluator.make_count(state, variable) == formula.make_count(
                    state.assignment, variable
                )

    def test_duplicate_literals_and_tautologies(self):
        # (1 1), (1 -1), (-2 -2 1): duplicate and tautological clauses must
        # be counted per literal slot, exactly as true_literal_counts does.
        formula = CNFFormula(2, [(1, 1), (1, -1), (-2, -2, 1)])
        evaluator = formula.clause_evaluator()
        for bits in ((False, False), (False, True), (True, False), (True, True)):
            assignment = np.array(bits)
            state = evaluator.attach(assignment)
            np.testing.assert_array_equal(
                state.true_counts, formula.true_literal_counts(assignment)
            )
            for variable in range(2):
                assert evaluator.break_count(state, variable) == formula.break_count(
                    assignment, variable
                )
                assert evaluator.make_count(state, variable) == formula.make_count(
                    assignment, variable
                )
        # ... and stay exact across flips.
        state = evaluator.attach(np.array([False, False]))
        for variable in (0, 1, 0, 0, 1):
            evaluator.flip(state, variable)
            np.testing.assert_array_equal(
                state.true_counts, formula.true_literal_counts(state.assignment)
            )

    def test_evaluator_is_memoised_and_unpickled(self):
        import pickle

        formula = _random_formula(7)
        assert formula.clause_evaluator() is formula.clause_evaluator()
        clone = pickle.loads(pickle.dumps(formula))
        # The memo is derived state: dropped from pickles, rebuilt on demand.
        assert getattr(clone, "_clause_evaluator", None) is None
        assert clone.clause_evaluator().break_count(
            clone.clause_evaluator().attach(np.zeros(formula.n_variables, dtype=bool)), 0
        ) == formula.break_count(np.zeros(formula.n_variables, dtype=bool), 0)

    def test_pickle_unchanged_by_evaluator_memo(self):
        import pickle

        formula = _random_formula(8)
        before = pickle.dumps(formula)
        formula.clause_evaluator()  # touch the memo
        assert pickle.dumps(formula) == before  # engine-cache fingerprints stable


class TestPathOrderingInvariant:
    """Both paths keep bit-identical unsatisfied-set orderings."""

    @pytest.mark.parametrize("seed", range(3))
    def test_identical_internal_order_under_identical_flips(self, seed):
        formula, _ = random_planted_ksat(18, 76, rng=np.random.default_rng(seed))
        rng = np.random.default_rng(3000 + seed)
        incremental = IncrementalClausePath(formula.clause_evaluator())
        batch = BatchClausePath(formula)
        assignment = formula.random_assignment(rng)
        incremental.reinit(assignment)
        batch.reinit(assignment)
        assert incremental.n_unsat == batch.n_unsat
        for step in range(150):
            for rank in range(incremental.n_unsat):
                assert incremental.unsat_clause(rank) == batch.unsat_clause(rank)
            variable = int(rng.integers(formula.n_variables))
            assert incremental.break_count(variable) == batch.break_count(variable)
            incremental.flip(variable)
            batch.flip(variable)
            assert incremental.n_unsat == batch.n_unsat
            if step % 60 == 59:
                fresh = formula.random_assignment(rng)
                incremental.reinit(fresh)
                batch.reinit(fresh)
