"""Source-tree hygiene gates.

ISSUE-9 satellite: ``src/repro/kernels/`` sat in the tree for several PRs
containing nothing but a ``__pycache__`` — an importable name with no
code.  This module keeps that class of rot from coming back:

* no directory under ``src/`` may be empty once caches are ignored;
* every directory holding Python modules must be a package
  (``__init__.py``) — data-only directories (e.g. the bundled DIMACS
  instances) are exempt;
* no package may consist of a single zero-byte ``__init__.py``.
"""

from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: Cache droppings: never real content, never inspected.
_IGNORED = {"__pycache__", ".ipynb_checkpoints"}


def _source_dirs() -> list[Path]:
    out = []
    for path in sorted(SRC.rglob("*")):
        if path.is_dir() and path.name not in _IGNORED:
            if not any(part in _IGNORED for part in path.relative_to(SRC).parts):
                out.append(path)
    return out


def _real_contents(directory: Path) -> list[Path]:
    """Files and non-cache subdirectories directly inside ``directory``."""
    return [p for p in directory.iterdir() if p.name not in _IGNORED]


def test_no_empty_directories():
    """Every source directory holds real content, not just cache droppings."""
    empty = [
        str(d.relative_to(SRC)) for d in _source_dirs() if not _real_contents(d)
    ]
    assert empty == [], f"empty source directories (delete them): {empty}"


def test_python_directories_are_packages():
    """A directory shipping Python modules must be importable."""
    missing = [
        str(d.relative_to(SRC))
        for d in _source_dirs()
        if any(p.suffix == ".py" for p in d.iterdir() if p.is_file())
        and not (d / "__init__.py").exists()
    ]
    assert missing == [], f"module directories without __init__.py: {missing}"


def test_no_hollow_packages():
    """A package must carry code: a lone zero-byte ``__init__.py`` (plus
    caches) is the kernels-package failure mode in miniature."""
    hollow = []
    for directory in _source_dirs():
        contents = _real_contents(directory)
        if [p.name for p in contents] == ["__init__.py"]:
            if (directory / "__init__.py").stat().st_size == 0:
                hollow.append(str(directory.relative_to(SRC)))
    assert hollow == [], f"hollow packages (only an empty __init__.py): {hollow}"
