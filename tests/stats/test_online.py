"""Streaming censoring-aware fitters (repro.stats.online).

Two contracts matter: the censored-exponential edge-case policy is
*centralised* (``censored_mean_or_none`` is the single answer to
all-censored / none-censored / single-observation batches), and the
streaming fitters are *batch-exact* — after any prefix of the stream,
``StreamingCensoredExponential.fit()`` equals
``censored_exponential_fit`` applied to that prefix.
"""

import math

import numpy as np
import pytest

from repro.core.censoring import censored_exponential_fit
from repro.stats.online import (
    StreamingCensoredExponential,
    StreamingLognormal,
    StreamingMoments,
    censored_mean_or_none,
)


def _censored_stream(rng, n, censored_fraction, budget=400.0):
    """(values, flags): exponential draws, the requested fraction censored."""
    n_censored = int(round(n * censored_fraction))
    values = np.concatenate(
        [rng.exponential(120.0, size=n - n_censored) + 10.0, np.full(n_censored, budget)]
    )
    flags = np.concatenate(
        [np.zeros(n - n_censored, dtype=bool), np.ones(n_censored, dtype=bool)]
    )
    order = rng.permutation(n)
    return values[order], flags[order]


class TestCensoredMeanOrNone:
    """The centralized edge-case policy, parametrized over censoring levels."""

    @pytest.mark.parametrize("censored_fraction", [0.0, 0.5, 1.0])
    def test_censoring_levels(self, rng, censored_fraction):
        values, flags = _censored_stream(rng, 40, censored_fraction)
        mean = censored_mean_or_none(values, flags)
        if censored_fraction in (0.0, 1.0):
            # No censoring: the naive mean is already unbiased.  All
            # censored: the rate is not identifiable.  Both answer None.
            assert mean is None
        else:
            assert mean == censored_exponential_fit(values, flags).mean()
            # Censoring correction pushes the mean above the clipped average.
            assert mean > float(values.mean())

    def test_empty_input(self):
        assert censored_mean_or_none([], []) is None

    def test_single_uncensored_observation_stays_finite(self):
        mean = censored_mean_or_none([50.0, 400.0, 400.0], [False, True, True])
        assert mean is not None and math.isfinite(mean)

    def test_single_run_all_censored(self):
        assert censored_mean_or_none([400.0], [True]) is None


class TestStreamingCensoredExponential:
    @pytest.mark.parametrize("censored_fraction", [0.0, 0.5, 1.0])
    def test_matches_batch_fit_at_every_prefix(self, rng, censored_fraction):
        """The tentpole contract: exact agreement with the batch MLE after
        *any* prefix, at every censoring level."""
        values, flags = _censored_stream(rng, 30, censored_fraction)
        stream = StreamingCensoredExponential()
        for i, (value, censored) in enumerate(zip(values, flags), start=1):
            stream.update(value, censored)
            prefix_values, prefix_flags = values[:i], flags[:i]
            fit = stream.fit()
            if not (~prefix_flags).any():
                assert fit is None  # all censored so far: not identifiable
                assert stream.mean is None
                continue
            batch = censored_exponential_fit(prefix_values, prefix_flags)
            assert fit.x0 == batch.x0
            assert fit.lam == pytest.approx(batch.lam, rel=1e-12)
            assert stream.mean == pytest.approx(batch.mean(), rel=1e-12)

    def test_counts_and_censored_fraction(self):
        stream = StreamingCensoredExponential()
        assert stream.censored_fraction is None
        stream.update(10.0, censored=False)
        stream.update(99.0, censored=True)
        stream.update(99.0, censored=True)
        assert stream.count == 3
        assert stream.censored_fraction == pytest.approx(2 / 3)

    def test_retroactive_shift_lowering(self):
        """A later, smaller event lowers the shift; censored thresholds below
        the new shift clip to zero exposure, exactly as in the batch MLE."""
        values = [100.0, 5.0, 2.0]  # censored@100, event@5, event@2
        flags = [True, False, False]
        stream = StreamingCensoredExponential()
        for value, censored in zip(values, flags):
            stream.update(value, censored)
        batch = censored_exponential_fit(np.array(values), np.array(flags))
        assert stream.fit().x0 == batch.x0 == 2.0
        assert stream.fit().lam == pytest.approx(batch.lam, rel=1e-12)

    def test_rejects_bad_observations(self):
        stream = StreamingCensoredExponential()
        with pytest.raises(ValueError):
            stream.update(-1.0, censored=False)
        with pytest.raises(ValueError):
            stream.update(float("nan"), censored=True)

    def test_single_event_degenerate_sample_clamped(self):
        stream = StreamingCensoredExponential()
        stream.update(42.0, censored=False)
        fit = stream.fit()
        assert fit is not None and math.isfinite(fit.lam)
        assert fit.x0 == 42.0


class TestStreamingMoments:
    def test_matches_numpy(self, rng):
        values = rng.normal(5.0, 2.0, size=200)
        moments = StreamingMoments()
        moments.update_many(values)
        assert moments.count == 200
        assert moments.mean == pytest.approx(float(values.mean()), rel=1e-12)
        assert moments.variance == pytest.approx(float(values.var(ddof=1)), rel=1e-10)
        assert moments.minimum == float(values.min())
        assert moments.maximum == float(values.max())

    def test_below_two_observations(self):
        moments = StreamingMoments()
        assert moments.variance is None and moments.std is None
        moments.update(3.0)
        assert moments.variance is None


class TestStreamingLognormal:
    def test_matches_log_space_mle(self, rng):
        values = rng.lognormal(2.0, 0.7, size=150)
        stream = StreamingLognormal()
        for value in values:
            stream.update(value)
        logs = np.log(values)
        assert stream.mu == pytest.approx(float(logs.mean()), rel=1e-12)
        assert stream.sigma == pytest.approx(float(logs.std()), rel=1e-10)  # MLE: ddof=0
        assert stream.mean == pytest.approx(
            math.exp(logs.mean() + 0.5 * logs.std() ** 2), rel=1e-10
        )

    def test_censored_updates_count_separately(self):
        stream = StreamingLognormal()
        stream.update(10.0)
        stream.update(999.0, censored=True)
        assert stream.n_events == 1
        assert stream.n_censored == 1
        assert stream.count == 2
        assert stream.sigma is None  # shape needs two events

    def test_rejects_nonpositive_events(self):
        stream = StreamingLognormal()
        with pytest.raises(ValueError):
            stream.update(0.0)
