"""Descriptive summaries (Tables 1–2 material)."""

import math

import numpy as np
import pytest

from repro.stats.descriptive import RuntimeSummary, dispersion_ratio, summarize


class TestSummarize:
    def test_basic_statistics(self):
        summary = summarize([4.0, 1.0, 3.0, 2.0])
        assert summary.n_runs == 4
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_as_row_order_matches_paper_columns(self):
        summary = summarize([10.0, 20.0, 30.0])
        assert summary.as_row() == (10.0, 20.0, 20.0, 30.0)

    def test_single_observation(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.as_row() == (7.0, 7.0, 7.0, 7.0)

    def test_rejects_empty_and_non_finite(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            summarize([1.0, math.inf])

    def test_format_row_contains_label_and_values(self):
        text = summarize([1.0, 2.0]).format_row("AI 700")
        assert "AI 700" in text
        assert "2.0" in text


class TestDispersion:
    def test_ratio(self):
        assert dispersion_ratio([2.0, 10.0, 20.0]) == pytest.approx(10.0)

    def test_infinite_when_minimum_zero(self):
        assert math.isinf(dispersion_ratio([0.0, 5.0]))

    def test_paper_observation_large_dispersion(self, rng):
        """Las Vegas runtimes span orders of magnitude (Section 5.4)."""
        data = rng.exponential(1000.0, size=600) + 1.0
        assert dispersion_ratio(data) > 100.0

    def test_summary_dispersion_consistency(self):
        summary = summarize([5.0, 50.0])
        assert summary.dispersion() == pytest.approx(10.0)
        assert isinstance(summary, RuntimeSummary)
