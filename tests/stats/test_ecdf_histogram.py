"""Empirical CDF and histogram overlays."""

import numpy as np
import pytest

from repro.core.distributions import ShiftedExponential
from repro.stats.ecdf import empirical_cdf, empirical_cdf_function
from repro.stats.histogram import density_histogram, histogram_with_fit


class TestEmpiricalCdf:
    def test_sorted_values_and_step_heights(self):
        values, probs = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(probs, [1 / 3, 2 / 3, 1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            empirical_cdf([])
        with pytest.raises(ValueError):
            empirical_cdf_function([])

    def test_cdf_function_evaluation(self):
        cdf = empirical_cdf_function([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.0) == 0.0
        assert cdf(2.5) == 0.5
        assert cdf(10.0) == 1.0
        np.testing.assert_allclose(cdf(np.array([1.0, 4.0])), [0.25, 1.0])

    def test_cdf_function_is_right_continuous(self):
        cdf = empirical_cdf_function([1.0, 1.0, 2.0])
        assert cdf(1.0) == pytest.approx(2 / 3)

    def test_converges_to_true_cdf(self, rng):
        dist = ShiftedExponential(x0=0.0, lam=0.1)
        data = dist.sample(rng, 5000)
        cdf = empirical_cdf_function(data)
        grid = np.linspace(1.0, 40.0, 10)
        np.testing.assert_allclose(cdf(grid), dist.cdf(grid), atol=0.03)


class TestHistograms:
    def test_density_histogram_integrates_to_one(self, rng):
        data = rng.lognormal(3.0, 1.0, 400)
        overlay = density_histogram(data)
        assert overlay.total_mass() == pytest.approx(1.0, abs=1e-9)
        assert overlay.fitted is None
        assert overlay.bin_centers.size == overlay.densities.size

    def test_explicit_bin_count(self, rng):
        data = rng.uniform(0, 1, 100)
        overlay = density_histogram(data, bins=10)
        assert overlay.densities.size == 10

    def test_rejects_empty_or_bad_bins(self):
        with pytest.raises(ValueError):
            density_histogram([])
        with pytest.raises(ValueError):
            density_histogram([1.0, 2.0], bins=0)

    def test_histogram_with_fit_matches_density(self, rng):
        """Figure 8-style overlay: fitted curve tracks the histogram."""
        dist = ShiftedExponential(x0=100.0, lam=1e-2)
        data = dist.sample(rng, 2000)
        overlay = histogram_with_fit(data, dist, bins=30)
        assert overlay.fitted is not None
        # Average absolute deviation between histogram and fitted density is
        # small relative to the peak density.
        deviation = np.mean(np.abs(overlay.densities - overlay.fitted))
        assert deviation < 0.25 * overlay.densities.max()

    def test_ascii_rendering_mentions_bars(self, rng):
        data = rng.exponential(5.0, 200)
        overlay = histogram_with_fit(data, ShiftedExponential(x0=0.0, lam=0.2))
        art = overlay.to_ascii()
        assert "#" in art
        assert "|" in art

    def test_degenerate_data_single_value(self):
        overlay = density_histogram([5.0, 5.0, 5.0])
        assert overlay.total_mass() == pytest.approx(1.0, abs=1e-9)
