"""Bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.core.distributions import ShiftedExponential
from repro.stats.bootstrap import BootstrapInterval, bootstrap_ci, bootstrap_speedup_ci


class TestBootstrapCi:
    def test_interval_contains_point_estimate(self, rng):
        data = rng.exponential(10.0, 200)
        interval = bootstrap_ci(data, np.mean, rng=rng, n_resamples=300)
        assert interval.lower <= interval.point <= interval.upper
        assert interval.contains(interval.point)
        assert interval.width() > 0.0

    def test_interval_covers_true_mean_typically(self, rng):
        true_mean = 50.0
        data = rng.exponential(true_mean, 400)
        interval = bootstrap_ci(data, np.mean, rng=rng, n_resamples=400)
        assert interval.lower < true_mean < interval.upper

    def test_higher_confidence_wider_interval(self, rng):
        data = rng.exponential(10.0, 150)
        narrow = bootstrap_ci(data, np.mean, confidence=0.80, rng=np.random.default_rng(1))
        wide = bootstrap_ci(data, np.mean, confidence=0.99, rng=np.random.default_rng(1))
        assert wide.width() > narrow.width()

    def test_more_data_narrower_interval(self, rng):
        small = bootstrap_ci(rng.exponential(10.0, 30), np.mean, rng=np.random.default_rng(2))
        large = bootstrap_ci(rng.exponential(10.0, 3000), np.mean, rng=np.random.default_rng(2))
        assert large.width() < small.width()

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], np.mean, confidence=1.5)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], np.mean, n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean)

    def test_result_records_metadata(self, rng):
        interval = bootstrap_ci(rng.uniform(size=50), np.median, n_resamples=123, rng=rng)
        assert isinstance(interval, BootstrapInterval)
        assert interval.n_resamples == 123
        assert interval.confidence == 0.95


class TestBootstrapSpeedupCi:
    def test_covers_model_speedup_for_synthetic_data(self, rng):
        true = ShiftedExponential(x0=0.0, lam=1e-2)
        data = true.sample(rng, 500)
        interval = bootstrap_speedup_ci(data, n_cores=16, rng=rng, n_resamples=200)
        # Linear regime: the true speed-up is 16.
        assert interval.lower < 16.0 < interval.upper * 1.2
        assert interval.point > 1.0

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            bootstrap_speedup_ci([1.0, 2.0], n_cores=0)
