"""Time-to-target plots."""

import numpy as np
import pytest

from repro.core.distributions import ShiftedExponential
from repro.stats.ttt import TimeToTargetPlot, time_to_target


class TestTimeToTarget:
    def test_exponential_runtimes_give_small_deviation(self, rng):
        dist = ShiftedExponential(x0=50.0, lam=1e-2)
        runtimes = dist.sample(rng, 500)
        plot = time_to_target(runtimes, shift_rule="min")
        assert isinstance(plot, TimeToTargetPlot)
        assert plot.max_deviation() < 0.1

    def test_non_exponential_runtimes_give_larger_deviation(self, rng):
        """A bimodal runtime profile is poorly captured by one exponential."""
        runtimes = np.concatenate([rng.normal(10.0, 0.5, 300), rng.normal(1000.0, 5.0, 300)])
        runtimes = np.clip(runtimes, 0.1, None)
        plot = time_to_target(runtimes)
        exponential_like = time_to_target(ShiftedExponential(x0=0.0, lam=0.1).sample(rng, 600))
        assert plot.max_deviation() > exponential_like.max_deviation()

    def test_probabilities_are_sorted_and_bounded(self, rng):
        runtimes = rng.exponential(5.0, 100)
        plot = time_to_target(runtimes)
        assert np.all(np.diff(plot.sorted_times) >= 0.0)
        assert plot.empirical_probability[0] == pytest.approx(0.5 / 100)
        assert plot.empirical_probability[-1] == pytest.approx(1.0 - 0.5 / 100)
        assert np.all((plot.theoretical_probability >= 0) & (plot.theoretical_probability <= 1))

    def test_requires_two_runtimes(self):
        with pytest.raises(ValueError):
            time_to_target([5.0])

    def test_ascii_rendering(self, rng):
        plot = time_to_target(rng.exponential(3.0, 50))
        art = plot.to_ascii()
        assert "|" in art
        assert len(art.splitlines()) > 3
