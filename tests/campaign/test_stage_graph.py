"""Stage specs and DAG resolution (repro.campaign.stages) plus the
experiment-layer stage definitions (repro.experiments.stages)."""

import pytest

from repro.campaign.stages import StageGraphError, StageSpec, resolve_stage_order
from repro.experiments.config import BENCHMARK_KEYS, SAT_KEY, ExperimentConfig
from repro.experiments.stages import STAGE_KINDS, campaign_stages, canonical_emit_order
from repro.solvers.policies import POLICIES


def _stage(key, after=(), emit_keys=None, **kwargs):
    defaults = dict(
        label=key,
        kind="test",
        make_solver=lambda budget: None,
        quota=5,
        base_seed=1,
        budget=100,
        emit_keys=(key,) if emit_keys is None else emit_keys,
        after=tuple(after),
    )
    defaults.update(kwargs)
    return StageSpec(key=key, **defaults)


class TestStageSpecValidation:
    def test_accepts_a_sane_stage(self):
        stage = _stage("A")
        assert stage.required and not stage.supports_cutoff

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"quota": 0},
            {"budget": 0},
            {"emit_keys": ()},
        ],
    )
    def test_rejects_bad_numbers(self, kwargs):
        with pytest.raises(ValueError):
            _stage("A", **kwargs)

    def test_rejects_empty_key(self):
        with pytest.raises(ValueError):
            _stage("")


class TestResolveStageOrder:
    def test_keeps_declaration_order_when_independent(self):
        stages = [_stage("C"), _stage("A"), _stage("B")]
        assert [s.key for s in resolve_stage_order(stages)] == ["C", "A", "B"]

    def test_dependencies_run_first(self):
        stages = [_stage("B", after=("A",)), _stage("A")]
        assert [s.key for s in resolve_stage_order(stages)] == ["A", "B"]

    def test_diamond(self):
        stages = [
            _stage("D", after=("B", "C")),
            _stage("B", after=("A",)),
            _stage("C", after=("A",)),
            _stage("A"),
        ]
        order = [s.key for s in resolve_stage_order(stages)]
        assert order.index("A") < order.index("B") < order.index("D")
        assert order.index("A") < order.index("C") < order.index("D")

    def test_cycle_rejected(self):
        stages = [_stage("A", after=("B",)), _stage("B", after=("A",))]
        with pytest.raises(StageGraphError, match="cycle"):
            resolve_stage_order(stages)

    def test_self_dependency_rejected(self):
        with pytest.raises(StageGraphError):
            resolve_stage_order([_stage("A", after=("A",))])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(StageGraphError, match="unknown"):
            resolve_stage_order([_stage("A", after=("missing",))])

    def test_duplicate_keys_rejected(self):
        with pytest.raises(StageGraphError, match="duplicate"):
            resolve_stage_order([_stage("A"), _stage("A")])

    def test_duplicate_emit_keys_rejected(self):
        with pytest.raises(StageGraphError):
            resolve_stage_order([_stage("A", emit_keys=("X",)), _stage("B", emit_keys=("X",))])


class TestExperimentStages:
    """The declarative campaigns must match what the collectors always ran."""

    @pytest.fixture(scope="class")
    def config(self):
        return ExperimentConfig.tiny()

    def test_full_dag_stage_keys(self, config):
        stages = campaign_stages(config)
        keys = [stage.key for stage in stages]
        non_default = [p for p in POLICIES if p != config.sat_policy]
        assert keys == [
            *BENCHMARK_KEYS,
            SAT_KEY,
            *[f"{SAT_KEY}/{p}" for p in non_default],
        ]
        resolve_stage_order(stages)  # must be a valid DAG

    def test_seed_roots_match_the_collectors(self, config):
        stages = {stage.key: stage for stage in campaign_stages(config)}
        for offset, key in enumerate(BENCHMARK_KEYS):
            assert stages[key].base_seed == config.base_seed + offset
        sat_root = config.base_seed + len(BENCHMARK_KEYS)
        assert stages[SAT_KEY].base_seed == sat_root
        for policy in POLICIES:
            if policy == config.sat_policy:
                continue
            # Policy stages share the SAT seed stream: batches differ only
            # in the flip policy.
            assert stages[f"{SAT_KEY}/{policy}"].base_seed == sat_root
            assert stages[f"{SAT_KEY}/{policy}"].after == (SAT_KEY,)

    def test_sat_stage_doubles_as_default_policy_row(self, config):
        stages = {stage.key: stage for stage in campaign_stages(config)}
        assert stages[SAT_KEY].emit_keys == (
            SAT_KEY,
            f"{SAT_KEY}/{config.sat_policy}",
        )

    def test_kind_subsets(self, config):
        sat_only = campaign_stages(config, kinds=("sat",))
        assert [s.key for s in sat_only] == [SAT_KEY]
        assert sat_only[0].emit_keys == (SAT_KEY,)
        bench_only = campaign_stages(config, kinds=("benchmarks",))
        assert [s.key for s in bench_only] == list(BENCHMARK_KEYS)

    def test_unknown_kind_rejected(self, config):
        with pytest.raises(ValueError, match="unknown observation kinds"):
            campaign_stages(config, kinds=("benchmarks", "nope"))

    def test_canonical_emit_order(self, config):
        stages = campaign_stages(config)
        order = canonical_emit_order(stages)
        # Benchmarks, then SAT, then the policy family in POLICIES order —
        # the default policy at its *policy* position despite sharing the
        # SAT stage.
        assert order == [
            *BENCHMARK_KEYS,
            SAT_KEY,
            *[f"{SAT_KEY}/{p}" for p in POLICIES],
        ]

    def test_stage_kinds_are_the_registry_vocabulary(self):
        from repro.experiments.registry import OBSERVATION_KINDS

        assert OBSERVATION_KINDS == STAGE_KINDS
