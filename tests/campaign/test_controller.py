"""Controllers as pure functions of the observation stream.

These tests drive controllers by hand (no engine, no solvers): feed a
synthetic record stream through begin_stage/plan_round/observe and pin the
planning rules, the quota semantics, and the decision-log determinism the
replay gate relies on.
"""

import json

import numpy as np
import pytest

from repro.campaign.controller import (
    CONTROLLER_NAMES,
    AdaptiveController,
    DecisionLog,
    StageRunRecord,
    StaticController,
    make_controller,
)
from repro.campaign.stages import StageSpec


def _stage(quota=10, budget=1000, base_seed=7, supports_cutoff=True):
    return StageSpec(
        key="S",
        label="synthetic",
        kind="test",
        make_solver=lambda budget: None,
        quota=quota,
        base_seed=base_seed,
        budget=budget,
        emit_keys=("S",),
        supports_cutoff=supports_cutoff,
    )


def _drive(controller, stage, outcomes):
    """Run the plan/observe loop against a deterministic outcome oracle.

    ``outcomes(index, budget)`` returns (iterations, solved) for the run at
    the given stable index under the given per-run budget.
    """
    log = DecisionLog()
    controller.begin_stage(stage, log)
    records = []
    while (plan := controller.plan_round()) is not None:
        for offset in range(plan.n_runs):
            index = len(records)
            iterations, solved = outcomes(index, plan.budget)
            record = StageRunRecord(
                index=index,
                seed=1000 + index,
                iterations=iterations,
                solved=solved,
                budget=plan.budget,
            )
            controller.observe(record)
            records.append(record)
    return records, log


class TestMakeController:
    def test_off_is_none(self):
        assert make_controller("off") is None

    def test_off_rejects_params(self):
        with pytest.raises(ValueError, match="takes no parameters"):
            make_controller("off", {"probe_runs": 4})

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown controller"):
            make_controller("turbo")

    @pytest.mark.parametrize("name", [n for n in CONTROLLER_NAMES if n != "off"])
    def test_params_round_trip(self, name):
        controller = make_controller(name)
        rebuilt = make_controller(name, controller.params())
        assert rebuilt.params() == controller.params()

    def test_candidate_workers_list_from_json(self):
        controller = make_controller("adaptive", {"candidate_workers": [1, 2]})
        assert controller.candidate_workers == (1, 2)


class TestStaticController:
    def test_one_full_budget_round_of_exactly_the_quota(self):
        stage = _stage(quota=10, budget=500)
        records, log = _drive(
            StaticController(), stage, lambda i, b: (b, False)  # everything censored
        )
        # Classic batch semantics: censored runs count toward the quota,
        # one round, full budget — the same runs `off` executes.
        assert len(records) == 10
        assert all(r.budget == 500 for r in records)
        kinds = [d.kind for d in log.decisions]
        assert kinds == ["plan"]
        plan = log.decisions[0].detail
        assert plan["controller"] == "static"
        assert plan["cutoff"] == 500 and plan["schedule"] == "fixed"


class TestAdaptiveController:
    def test_probe_round_first_at_full_budget(self):
        stage = _stage(quota=20, budget=1000)
        controller = AdaptiveController(probe_runs=8)
        log = DecisionLog()
        controller.begin_stage(stage, log)
        plan = controller.plan_round()
        assert plan.round_index == 0
        assert plan.n_runs == 8
        assert plan.budget == 1000
        assert plan.note == "probe"

    def test_counts_solved_only_and_reissues(self):
        stage = _stage(quota=6, budget=1000)
        # Even indices solve quickly; odd ones censor at the issued budget.
        records, log = _drive(
            AdaptiveController(probe_runs=4, max_round_runs=8),
            stage,
            lambda i, b: (50, True) if i % 2 == 0 else (b, False),
        )
        solved = sum(1 for r in records if r.solved)
        assert solved >= stage.quota  # quota is solved runs, not issued runs
        assert len(records) > stage.quota  # censored runs were replaced

    def test_gives_up_at_the_issue_ceiling(self):
        stage = _stage(quota=4, budget=100)
        controller = AdaptiveController(probe_runs=4, max_issue_factor=3)
        records, log = _drive(controller, stage, lambda i, b: (b, False))  # hopeless
        assert len(records) == 3 * 4  # max_issue_factor * quota, then stop
        assert controller.counted == 0

    def test_cutoff_tie_goes_to_the_full_budget(self):
        """Constant runtimes make every candidate's cost-per-success equal;
        the tie must resolve to the full budget (no restarts bought)."""
        stage = _stage(quota=12, budget=10_000)
        records, log = _drive(
            AdaptiveController(probe_runs=8), stage, lambda i, b: (100, True)
        )
        assert [d for d in log.decisions if d.kind == "cutoff"] == []
        assert all(r.budget == stage.budget for r in records)

    def test_kills_the_tail_on_a_heavy_tailed_stream(self, rng):
        """A bimodal stream (fast mode + hopeless tail) should buy restarts:
        the cutoff drops below the stage budget and runs get killed."""
        stage = _stage(quota=12, budget=10_000)
        fast = rng.integers(10, 80, size=4096)
        slow_mask = rng.random(4096) < 0.4  # 40% hopeless tail

        def outcomes(i, budget):
            if slow_mask[i]:
                return (budget, False)  # never solves within any budget
            need = int(fast[i])
            return (need, True) if need <= budget else (budget, False)

        records, log = _drive(AdaptiveController(probe_runs=8), stage, outcomes)
        cutoff_decisions = [d for d in log.decisions if d.kind == "cutoff"]
        assert cutoff_decisions, "expected the cutoff to drop below the budget"
        assert cutoff_decisions[-1].detail["cutoff"] < stage.budget
        killed = [r for r in records if not r.solved and r.budget < stage.budget]
        assert killed, "expected censored-at-cutoff (killed) runs"
        assert sum(1 for r in records if r.solved) >= stage.quota

    def test_decisions_never_read_wall_clock(self):
        """Identical streams with different runtime_seconds ⇒ identical log."""
        stage = _stage(quota=6, budget=1000)

        def run(runtime):
            controller = AdaptiveController(probe_runs=4)
            log = DecisionLog()
            controller.begin_stage(stage, log)
            n = 0
            while (plan := controller.plan_round()) is not None:
                for _ in range(plan.n_runs):
                    controller.observe(
                        StageRunRecord(
                            index=n,
                            seed=n,
                            iterations=30 + 7 * (n % 5),
                            solved=True,
                            budget=plan.budget,
                            runtime_seconds=runtime * (n + 1),
                        )
                    )
                    n += 1
            return log.as_dicts()

        assert run(0.0) == run(123.456)

    def test_same_stream_same_log(self, rng):
        stage = _stage(quota=8, budget=5000)
        draws = (1.0 + rng.exponential(800.0, size=4096)).astype(int)

        def outcomes(i, budget):
            need = int(draws[i])
            return (need, True) if need <= budget else (budget, False)

        _, log_a = _drive(AdaptiveController(), stage, outcomes)
        _, log_b = _drive(AdaptiveController(), stage, outcomes)
        assert log_a.as_dicts() == log_b.as_dicts()


class TestDecisionLog:
    def test_normalises_numpy_and_tuples_on_append(self):
        log = DecisionLog()
        log.append(
            "S",
            "fit",
            mean=np.float64(3.5),
            runs=np.int64(7),
            flag=np.bool_(True),
            shape=(1, 2),
            nested={1: (np.int32(9),)},
        )
        detail = log.decisions[0].detail
        assert detail == {
            "mean": 3.5,
            "runs": 7,
            "flag": True,
            "shape": [1, 2],
            "nested": {"1": [9]},
        }
        # The whole point: a JSON round-trip is the identity.
        dumped = json.loads(json.dumps(log.as_dicts()))
        assert dumped == log.as_dicts()

    def test_seq_is_append_order(self):
        log = DecisionLog()
        log.append("A", "x")
        log.append("B", "y")
        assert [d.seq for d in log.decisions] == [0, 1]
        assert len(log) == 2
