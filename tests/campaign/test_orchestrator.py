"""The campaign orchestrator: execution, BUG-021, replay, determinism.

Synthetic solvers keep these fast; the solver's latent "iterations needed"
is a pure function of the seed, so kill-and-reseed rounds at different
budgets stay consistent and the decision log is a pure function of the
base seed — the property the cross-backend determinism tests pin.
"""

import numpy as np
import pytest

from repro.campaign import (
    AdaptiveController,
    CampaignError,
    CampaignReport,
    ReplayError,
    StageSpec,
    run_campaign,
    verify_report,
)
from repro.engine.core import collect_batch
from repro.solvers.base import LasVegasAlgorithm, RunResult


class GeometricSolver(LasVegasAlgorithm):
    """Latent cost = 1 + Exp(scale); solved iff it fits the budget.

    The first rng draw decides the run, so a given seed has one latent
    cost regardless of the issued budget — exactly how a real Las Vegas
    solver behaves under kill-and-reseed.
    """

    name = "geometric"

    def __init__(self, budget: int, scale: float = 100.0):
        self.budget = int(budget)
        self.scale = float(scale)

    def _run(self, rng: np.random.Generator) -> RunResult:
        need = 1 + int(rng.exponential(self.scale))
        if need <= self.budget:
            return RunResult(solved=True, iterations=need, runtime_seconds=0.0)
        return RunResult(solved=False, iterations=self.budget, runtime_seconds=0.0)


class NeverSolves(LasVegasAlgorithm):
    name = "never-solves"

    def _run(self, rng: np.random.Generator) -> RunResult:
        return RunResult(solved=False, iterations=self.budget, runtime_seconds=0.0)

    def __init__(self, budget: int):
        self.budget = int(budget)


def _stage(key="S", quota=10, budget=400, base_seed=7, scale=100.0, **kwargs):
    defaults = dict(
        label=f"geom-{key}",
        kind="test",
        make_solver=lambda budget: GeometricSolver(budget, scale),
        quota=quota,
        base_seed=base_seed,
        budget=budget,
        emit_keys=(key,),
        supports_cutoff=True,
    )
    defaults.update(kwargs)
    return StageSpec(key=key, **defaults)


class TestOffController:
    def test_matches_collect_batch(self):
        stage = _stage()
        report = run_campaign([stage])
        batch = report.observations()["S"]
        reference = collect_batch(
            GeometricSolver(400), 10, base_seed=7, label="geom-S"
        )
        np.testing.assert_array_equal(batch.iterations, reference.iterations)
        np.testing.assert_array_equal(batch.solved, reference.solved)
        np.testing.assert_array_equal(batch.seeds, reference.seeds)
        assert batch.label == reference.label

    def test_static_is_bit_identical_to_off(self):
        stages = [_stage("A", base_seed=1), _stage("B", base_seed=2, after=("A",))]
        off = run_campaign(stages).observations()
        static = run_campaign(stages, controller="static").observations()
        for key in off:
            np.testing.assert_array_equal(off[key].iterations, static[key].iterations)
            np.testing.assert_array_equal(off[key].seeds, static[key].seeds)
            np.testing.assert_array_equal(off[key].solved, static[key].solved)

    def test_emit_keys_fan_out(self):
        stage = _stage(emit_keys=("S", "S/alias"))
        observations = run_campaign([stage]).observations()
        assert set(observations) == {"S", "S/alias"}
        assert observations["S"] is observations["S/alias"]

    def test_precollected_skips_execution(self):
        calls = []

        def make_solver(budget):
            calls.append(budget)
            return GeometricSolver(budget)

        stage = _stage(make_solver=make_solver)
        batch = collect_batch(GeometricSolver(400), 10, base_seed=7, label="geom-S")
        report = run_campaign([stage], precollected={"S": batch})
        assert calls == []  # the solver factory was never invoked
        np.testing.assert_array_equal(
            report.observations()["S"].iterations, batch.iterations
        )


class TestBug021:
    """Regression for BUG-021: a required stage with zero solved
    observations must hard-fail the campaign, controller or not."""

    def _hopeless(self, **kwargs):
        return _stage(
            make_solver=lambda budget: NeverSolves(budget), quota=5, **kwargs
        )

    @pytest.mark.parametrize("controller", ["off", "static", "adaptive"])
    def test_required_stage_with_zero_solved_fails(self, controller):
        with pytest.raises(CampaignError, match="zero solved"):
            run_campaign([self._hopeless()], controller=controller)

    def test_partial_report_records_the_failure(self):
        with pytest.raises(CampaignError) as excinfo:
            run_campaign([self._hopeless()])
        report = excinfo.value.report
        assert report.failed_stage == "S"
        assert "zero solved" in report.failure_reason
        kinds = [d["kind"] for d in report.decision_dicts()]
        assert "stage-failed" in kinds

    def test_later_stages_are_not_executed_after_a_failure(self):
        calls = []

        def tracking_solver(budget):
            calls.append(budget)
            return GeometricSolver(budget)

        stages = [
            self._hopeless(),
            _stage("T", base_seed=9, make_solver=tracking_solver, after=("S",)),
        ]
        with pytest.raises(CampaignError):
            run_campaign(stages)
        assert calls == []

    def test_optional_stage_does_not_fail_the_campaign(self):
        report = run_campaign([self._hopeless(required=False)])
        assert report.failed_stage is None
        assert report.stage("S").n_solved == 0

    def test_enforce_required_false_is_the_collectors_mode(self):
        report = run_campaign([self._hopeless()], enforce_required=False)
        assert report.failed_stage is None
        batch = report.observations()["S"]
        assert not batch.solved.any()  # the all-censored batch is the answer


class TestAdaptiveOrchestration:
    def test_reaches_quota_in_solved_runs_with_reseeding(self):
        # scale 3x the budget: ~72% of runs censor at the full budget.
        stage = _stage(quota=8, budget=100, scale=300.0, base_seed=3)
        report = run_campaign([stage], controller="adaptive")
        stage_report = report.stage("S")
        assert stage_report.n_solved >= 8
        assert stage_report.n_issued > 8  # censored runs were replaced

    def test_decision_log_is_deterministic_across_runs_and_backends(self):
        stage = _stage(quota=8, budget=100, scale=300.0, base_seed=3)
        logs = [
            run_campaign([stage], controller="adaptive").decision_dicts(),
            run_campaign([stage], controller="adaptive").decision_dicts(),
            run_campaign(
                [stage], controller="adaptive", backend="thread", workers=4
            ).decision_dicts(),
        ]
        assert logs[0] == logs[1] == logs[2]

    def test_run_streams_are_deterministic_too(self):
        stage = _stage(quota=8, budget=100, scale=300.0, base_seed=3)
        a = run_campaign([stage], controller="adaptive").stage("S")
        b = run_campaign(
            [stage], controller="adaptive", backend="thread", workers=2
        ).stage("S")
        assert [r.as_dict() | {"runtime_seconds": 0.0} for r in a.stream] == [
            r.as_dict() | {"runtime_seconds": 0.0} for r in b.stream
        ]

    def test_controller_instance_passthrough(self):
        stage = _stage(quota=6, budget=400)
        controller = AdaptiveController(probe_runs=3, max_round_runs=6)
        report = run_campaign([stage], controller=controller)
        assert report.controller == "adaptive"
        assert report.controller_params["probe_runs"] == 3


class TestReplayAndReport:
    def _report(self, controller="adaptive"):
        stage = _stage(quota=8, budget=100, scale=300.0, base_seed=3)
        return run_campaign([stage], controller=controller)

    @pytest.mark.parametrize("controller", ["off", "static", "adaptive"])
    def test_save_load_verify_round_trip(self, controller, tmp_path):
        report = self._report(controller)
        path = report.save(tmp_path / "report.json")
        loaded = CampaignReport.load(path)
        assert loaded.as_dict() == report.as_dict()
        assert verify_report(loaded) == len(loaded.decisions)

    def test_failed_campaign_report_round_trips(self, tmp_path):
        stage = _stage(make_solver=lambda budget: NeverSolves(budget), quota=4)
        with pytest.raises(CampaignError) as excinfo:
            run_campaign([stage])
        path = excinfo.value.report.save(tmp_path / "failed.json")
        loaded = CampaignReport.load(path)
        assert loaded.failed_stage == "S"
        assert verify_report(loaded) == len(loaded.decisions)

    def test_tampered_stream_fails_verification(self, tmp_path):
        report = self._report()
        payload = report.as_dict()
        # Flip one observation: the re-driven controller must diverge.
        target = payload["stages"][0]["stream"]
        solved = next(r for r in target if r["solved"])
        solved["iterations"] = solved["iterations"] * 10 + 17
        tampered = CampaignReport.from_dict(payload)
        with pytest.raises(ReplayError):
            verify_report(tampered)

    def test_wrong_format_marker_rejected(self):
        with pytest.raises(ValueError, match="format"):
            CampaignReport.from_dict({"format": "something-else"})


class TestDryRun:
    def test_plans_without_executing(self):
        def exploding_solver(budget):
            raise AssertionError("dry run must not build solvers")

        stages = [
            _stage("A", base_seed=1, make_solver=exploding_solver),
            _stage("B", base_seed=2, make_solver=exploding_solver, after=("A",)),
        ]
        report = run_campaign(stages, controller="adaptive", dry_run=True)
        assert report.dry_run
        assert report.observations() == {}
        kinds = [d["kind"] for d in report.decision_dicts()]
        assert kinds == ["dry-run-plan", "dry-run-plan"]
        assert verify_report(report) == 2

    def test_dry_run_is_deterministic(self):
        stages = [_stage("A", base_seed=1), _stage("B", base_seed=2)]
        a = run_campaign(stages, dry_run=True).as_dict()
        b = run_campaign(stages, dry_run=True).as_dict()
        assert a == b
