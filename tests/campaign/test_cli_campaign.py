"""The campaign subcommand on top of the orchestrator.

``--controller off`` must keep the exact PR-era output (the byte-identity
gate lives in test_summary_format_is_stable and the off/static comparison);
the new flags — --dry-run, --stages, --report, --replay, --controller,
--max-iterations — get their behavioural contracts pinned here, including
the BUG-021 CLI regression.
"""

import json

import pytest

from repro.cli import main
from repro.experiments.data import clear_observation_cache


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_observation_cache()
    yield
    clear_observation_cache()


def _run(capsys, argv):
    rc = main(argv)
    captured = capsys.readouterr()
    return rc, captured.out, captured.err


SAT_ONLY = ["campaign", "--profile", "tiny", "--stages", "SAT"]


class TestOffController:
    def test_summary_format_is_stable(self, capsys):
        rc, out, _ = _run(capsys, SAT_ONLY)
        assert rc == 0
        # The historic line format, byte for byte: label, runs, success-rate.
        line = out.splitlines()[0]
        assert line == "3-SAT 25@4.2 runs=30    success-rate=100.00%"

    def test_static_prints_the_same_summary(self, capsys):
        rc_off, out_off, err_off = _run(capsys, SAT_ONLY)
        clear_observation_cache()
        rc_static, out_static, err_static = _run(
            capsys, SAT_ONLY + ["--controller", "static"]
        )
        assert (rc_off, rc_static) == (0, 0)
        assert out_off == out_static  # bit-identical observations
        assert err_off == ""
        assert "controller=static" in err_static  # decision note goes to stderr

    def test_full_campaign_prints_canonical_order(self, capsys):
        rc, out, _ = _run(capsys, ["campaign", "--profile", "tiny"])
        assert rc == 0
        labels = [line.split("  ")[0].strip() for line in out.splitlines()]
        assert labels[0].startswith("MS")
        assert labels[1].startswith("AI")
        assert labels[2].startswith("Costas")
        assert sum(1 for label in labels if label.startswith("3-SAT")) == 5


class TestDryRun:
    def test_prints_the_dag_deterministically(self, capsys):
        rc_a, out_a, _ = _run(capsys, ["campaign", "--profile", "tiny", "--dry-run"])
        rc_b, out_b, _ = _run(capsys, ["campaign", "--profile", "tiny", "--dry-run"])
        assert (rc_a, rc_b) == (0, 0)
        assert out_a == out_b
        assert out_a.startswith("dry run: 7 stages, controller=off")
        for key in ("MS", "AI", "Costas", "SAT", "SAT/novelty"):
            assert f"\n{key:<12s} " in "\n" + out_a or out_a.startswith(f"{key:<12s} ")
        assert "seeds[:4]=" in out_a
        assert "after=SAT" in out_a  # policy stages depend on the SAT stage

    def test_executes_nothing_and_writes_no_cache(self, capsys, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        rc, out, _ = _run(
            capsys,
            ["campaign", "--profile", "tiny", "--dry-run", "--cache", str(cache)],
        )
        assert rc == 0
        assert list(cache.iterdir()) == []  # nothing ran, nothing cached
        assert "runs=" not in out  # no summary lines, plan only

    def test_report_of_a_dry_run_replays(self, capsys, tmp_path):
        report = tmp_path / "plan.json"
        rc, _, _ = _run(
            capsys,
            ["campaign", "--profile", "tiny", "--dry-run", "--report", str(report)],
        )
        assert rc == 0
        rc, out, _ = _run(capsys, ["campaign", "--replay", str(report)])
        assert rc == 0
        assert "replay OK" in out


class TestStageSelection:
    def test_glob_selects_the_policy_family(self, capsys):
        rc, out, _ = _run(
            capsys, ["campaign", "--profile", "tiny", "--stages", "SAT/*", "--dry-run"]
        )
        assert rc == 0
        # SAT/* pulls the policy stages plus their SAT dependency.
        assert out.startswith("dry run: 4 stages")

    def test_unmatched_pattern_fails_fast(self, capsys):
        rc, _, err = _run(
            capsys, ["campaign", "--profile", "tiny", "--stages", "nope*"]
        )
        assert rc == 2
        assert "matches no stage" in err

    def test_selection_keeps_the_summary_format(self, capsys):
        rc, out, _ = _run(
            capsys, ["campaign", "--profile", "tiny", "--stages", "Costas"]
        )
        assert rc == 0
        assert out.splitlines() == ["Costas 7     runs=30    success-rate=100.00%"]


class TestBug021Cli:
    """The CLI face of the BUG-021 regression: an unsatisfiable-within-budget
    SAT stage must exit non-zero and record the failed stage in the report,
    with the controller off (the default)."""

    ARGS = [
        "campaign",
        "--profile",
        "tiny",
        "--sat-family",
        "uniform",
        "--max-iterations",
        "2",
        "--stages",
        "SAT",
    ]

    def test_exits_nonzero_and_reports_the_stage(self, capsys, tmp_path):
        report_path = tmp_path / "failed.json"
        rc, out, err = _run(capsys, self.ARGS + ["--report", str(report_path)])
        assert rc == 1
        assert out == ""  # no summary for a failed campaign
        assert "zero solved observations" in err
        payload = json.loads(report_path.read_text())
        assert payload["failed_stage"] == "SAT"
        assert "zero solved" in payload["failure_reason"]
        kinds = [d["kind"] for d in payload["decisions"]]
        assert "stage-failed" in kinds

    def test_controller_off_is_explicitly_covered(self, capsys):
        rc, _, err = _run(capsys, self.ARGS + ["--controller", "off"])
        assert rc == 1
        assert "campaign failed" in err


class TestReportAndReplay:
    def test_adaptive_report_replays_and_is_deterministic(self, capsys, tmp_path):
        args = SAT_ONLY + ["--controller", "adaptive"]
        path_a, path_b = tmp_path / "a.json", tmp_path / "b.json"
        rc_a, out_a, _ = _run(capsys, args + ["--report", str(path_a)])
        rc_b, out_b, _ = _run(capsys, args + ["--report", str(path_b)])
        assert (rc_a, rc_b) == (0, 0)
        assert out_a == out_b
        log_a = json.loads(path_a.read_text())["decisions"]
        log_b = json.loads(path_b.read_text())["decisions"]
        assert log_a == log_b  # the CI determinism gate, in-process
        rc, out, _ = _run(capsys, ["campaign", "--replay", str(path_a)])
        assert rc == 0
        assert "replay OK" in out and "controller=adaptive" in out

    def test_replaying_garbage_fails_cleanly(self, capsys, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "not-a-report"}')
        rc, _, err = _run(capsys, ["campaign", "--replay", str(path)])
        assert rc == 2
        assert "cannot load report" in err

    def test_replaying_a_tampered_report_fails(self, capsys, tmp_path):
        path = tmp_path / "report.json"
        rc, _, _ = _run(
            capsys, SAT_ONLY + ["--controller", "static", "--report", str(path)]
        )
        assert rc == 0
        payload = json.loads(path.read_text())
        payload["stages"][0]["stream"][0]["solved"] = False
        payload["stages"][0]["stream"][0]["iterations"] = 999999
        path.write_text(json.dumps(payload))
        rc, _, err = _run(capsys, ["campaign", "--replay", str(path)])
        assert rc == 1
        assert "replay FAILED" in err
