"""The recipe document format: lossless round-trips and strict rejection."""

import json

import pytest

from repro.recipes import (
    RECIPE_FORMAT,
    CampaignRecipe,
    FittedDistribution,
    InstanceMix,
    RecipeError,
    StageRecipe,
    bundled_recipe_names,
    load_bundled_recipe,
)


def make_stage(key="SAT", **overrides) -> StageRecipe:
    fields = dict(
        key=key,
        label="3-SAT 25@4.2",
        kind="sat",
        instance=InstanceMix(
            workload="sat",
            sat_family="planted",
            n_variables=25,
            clause_ratio=4.2,
            k=3,
            policy="walksat",
            instance_seed=20130813,
        ),
        runtime=FittedDistribution(
            family="censored_exponential",
            params={"x0": 5.0, "lam": 0.05},
            n_events=30,
            n_censored=0,
        ),
        censoring_rate=0.0,
        quota=30,
        budget=50_000,
        base_seed=20130816,
        budget_ratio=2000.0,
        supports_cutoff=True,
    )
    fields.update(overrides)
    return StageRecipe(**fields)


def make_recipe(*stages) -> CampaignRecipe:
    return CampaignRecipe(
        name="unit-test",
        description="hand-built recipe",
        source={"controller": "off"},
        stages=stages or (make_stage(),),
    )


class TestRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        recipe = make_recipe(
            make_stage("SAT"),
            make_stage("SAT/novelty", after=("SAT",)),
        )
        payload = json.loads(json.dumps(recipe.as_dict()))
        assert CampaignRecipe.from_dict(payload) == recipe

    def test_save_load_reproduces_bytes(self, tmp_path):
        recipe = make_recipe()
        path = recipe.save(tmp_path / "r.json")
        loaded = CampaignRecipe.load(path)
        assert loaded == recipe
        assert loaded.save(tmp_path / "r2.json").read_bytes() == path.read_bytes()

    def test_profiled_recipe_round_trips(self, tiny_sat_recipe, tmp_path):
        path = tiny_sat_recipe.save(tmp_path / "tiny.json")
        assert CampaignRecipe.load(path) == tiny_sat_recipe


class TestRejection:
    def test_unknown_format_version(self):
        payload = make_recipe().as_dict()
        payload["format"] = "repro-campaign-recipe-v999"
        with pytest.raises(RecipeError, match="format"):
            CampaignRecipe.from_dict(payload)
        assert RECIPE_FORMAT == "repro-campaign-recipe-v1"

    def test_unknown_top_level_field(self):
        payload = make_recipe().as_dict()
        payload["surprise"] = 1
        with pytest.raises(RecipeError, match="unknown fields"):
            CampaignRecipe.from_dict(payload)

    def test_unknown_stage_field(self):
        payload = make_recipe().as_dict()
        payload["stages"][0]["surprise"] = 1
        with pytest.raises(RecipeError, match="unknown fields"):
            CampaignRecipe.from_dict(payload)

    def test_missing_stage_field(self):
        payload = make_recipe().as_dict()
        del payload["stages"][0]["quota"]
        with pytest.raises(RecipeError, match="missing fields"):
            CampaignRecipe.from_dict(payload)

    def test_not_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(RecipeError, match="not valid JSON"):
            CampaignRecipe.load(path)

    @pytest.mark.parametrize(
        "family, params",
        [
            ("weibull", {"k": 1.0, "lam": 1.0}),
            ("censored_exponential", {"x0": 5.0}),
            ("censored_exponential", {"x0": 5.0, "lam": -1.0}),
            ("lognormal", {"mu": 1.0, "sigma": float("nan")}),
        ],
    )
    def test_malformed_distribution(self, family, params):
        with pytest.raises(RecipeError):
            FittedDistribution(family=family, params=params, n_events=10, n_censored=0)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"workload": "quantum"},
            {"workload": "csp", "problem": "TSP", "size": 5},
            {"workload": "csp", "problem": "MS"},  # no size
            {"workload": "sat"},  # no family
            {"workload": "sat", "sat_family": "uniform", "policy": "walksat"},  # no n/k/ratio
        ],
    )
    def test_malformed_instance(self, overrides):
        with pytest.raises(RecipeError):
            InstanceMix(**overrides)

    def test_csp_instance_rejects_sat_fields(self):
        with pytest.raises(RecipeError, match="forbids SAT fields"):
            InstanceMix(workload="csp", problem="MS", size=4, k=3)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"censoring_rate": 1.5},
            {"quota": 0},
            {"budget": -1},
            {"budget_ratio": 0.0},
            {"kind": "mystery"},
        ],
    )
    def test_malformed_stage(self, overrides):
        with pytest.raises(RecipeError):
            make_stage(**overrides)

    def test_bad_recipe_name(self):
        with pytest.raises(RecipeError, match="invalid recipe name"):
            CampaignRecipe(name="no spaces", description="", stages=(make_stage(),))

    def test_duplicate_stage_keys(self):
        with pytest.raises(RecipeError, match="duplicate stage keys"):
            make_recipe(make_stage("SAT"), make_stage("SAT"))

    def test_unknown_dependency(self):
        with pytest.raises(RecipeError, match="unknown stages"):
            make_recipe(make_stage("SAT", after=("ghost",)))

    def test_dependency_cycle(self):
        with pytest.raises(RecipeError, match="cycle"):
            make_recipe(
                make_stage("A", after=("B",)),
                make_stage("B", after=("A",)),
            )


class TestBundled:
    def test_bundled_recipes_exist_and_validate(self):
        names = bundled_recipe_names()
        assert len(names) >= 2
        for name in names:
            recipe = load_bundled_recipe(name)
            assert recipe.name == name
            assert recipe.stages

    def test_unknown_bundled_name(self):
        with pytest.raises(RecipeError, match="no bundled recipe"):
            load_bundled_recipe("does-not-exist")
