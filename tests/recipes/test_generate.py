"""Deterministic campaign generation, the round-trip invariant, and scale."""

import json

import pytest

from repro.campaign import resolve_stage_order, run_campaign
from repro.cli import main
from repro.recipes import (
    RecipeError,
    describe_campaign,
    generate_stages,
    generate_submission,
    profile_report,
)


def deterministic_stream(report):
    """A report's backend-invariant run content (everything but wall clock)."""
    return {
        stage.key: [(r.index, r.seed, r.iterations, r.solved, r.budget) for r in stage.stream]
        for stage in report.stages
    }


class TestDeterminism:
    def test_same_inputs_byte_identical_plans(self, tiny_sat_recipe):
        a = json.dumps(describe_campaign(tiny_sat_recipe, scale=3, base_seed=7), sort_keys=True)
        b = json.dumps(describe_campaign(tiny_sat_recipe, scale=3, base_seed=7), sort_keys=True)
        assert a == b

    def test_cli_generate_byte_identical(self, tiny_sat_recipe, tmp_path, capsys):
        """Two CLI invocations print byte-identical campaign plans."""
        path = tiny_sat_recipe.save(tmp_path / "r.json")
        outputs = []
        for _ in range(2):
            assert main(["recipe", "generate", str(path), "--scale", "2", "--seed", "9"]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]
        assert json.loads(outputs[0])["n_stages"] == 2

    def test_seed_override_changes_runs_deterministically(self, tiny_sat_recipe):
        base = run_campaign(generate_stages(tiny_sat_recipe, base_seed=123))
        again = run_campaign(generate_stages(tiny_sat_recipe, base_seed=123))
        other = run_campaign(generate_stages(tiny_sat_recipe, base_seed=124))
        assert deterministic_stream(base) == deterministic_stream(again)
        assert deterministic_stream(base) != deterministic_stream(other)


class TestRoundTrip:
    def test_scale_1_replays_profiled_campaign_exactly(self, tiny_sat_report, tiny_sat_recipe):
        """Profile → generate at scale 1 → run → refit equals the original.

        The documented tolerance is *zero*: replica 0 reuses the recorded
        seed roots and instance seeds, so the regenerated campaign replays
        the profiled one's runs bit for bit and the refit recovers the
        recipe's family and parameters exactly.
        """
        replay = run_campaign(generate_stages(tiny_sat_recipe, scale=1))
        assert deterministic_stream(replay) == deterministic_stream(tiny_sat_report)
        refit = profile_report(replay, name=tiny_sat_recipe.name)
        for original, again in zip(tiny_sat_recipe.stages, refit.stages):
            assert again.runtime == original.runtime
            assert again.instance == original.instance
            assert again.censoring_rate == original.censoring_rate


class TestScale:
    def test_scale_replicates_stages(self, tiny_sat_recipe):
        stages = generate_stages(tiny_sat_recipe, scale=3)
        assert [s.key for s in stages] == ["SAT", "SAT~1", "SAT~2"]
        quota = tiny_sat_recipe.stages[0].quota
        assert sum(s.quota for s in stages) == 3 * quota
        # Replicas are a valid DAG with distinct seed streams and labels.
        resolve_stage_order(stages)
        assert len({s.base_seed for s in stages}) == 3
        assert len({s.label for s in stages}) == 3

    def test_replica_dependencies_stay_within_replica(self, tiny_sat_report):
        import dataclasses

        base = tiny_sat_report.stages[0]
        dependent = dataclasses.replace(
            base,
            key="SAT/novelty",
            label=base.label + " [novelty]",
            kind="sat_policies",
            emit_keys=("SAT/novelty",),
            after=("SAT",),
        )
        report = dataclasses.replace(tiny_sat_report, stages=(base, dependent))
        recipe = profile_report(report, name="dag")
        stages = generate_stages(recipe, scale=2)
        after = {s.key: s.after for s in stages}
        assert after["SAT/novelty"] == ("SAT",)
        assert after["SAT/novelty~1"] == ("SAT~1",)

    def test_bad_scale_rejected(self, tiny_sat_recipe):
        with pytest.raises(RecipeError, match="scale"):
            generate_stages(tiny_sat_recipe, scale=0)


@pytest.mark.slow
class TestBackends:
    def test_scale_4_runs_through_process_backend(self, tiny_sat_recipe):
        """A scale-4 generated campaign runs on --backend process unchanged,
        byte-identical to its serial execution."""
        stages = generate_stages(tiny_sat_recipe, scale=4, base_seed=41)
        serial = run_campaign(stages)
        parallel = run_campaign(
            generate_stages(tiny_sat_recipe, scale=4, base_seed=41),
            backend="process",
            workers=2,
        )
        assert len(serial.stages) == 4
        assert deterministic_stream(parallel) == deterministic_stream(serial)


class TestServiceSubmission:
    def test_submission_validates_and_scales_quota(self, tiny_sat_recipe):
        submission = generate_submission(tiny_sat_recipe, scale=4)
        config = submission["config"]
        assert config["n_sequential_runs"] == 4 * tiny_sat_recipe.stages[0].quota
        assert config["base_seed"] == tiny_sat_recipe.stages[0].instance.instance_seed
        assert submission["stages"] == "SAT"

    def test_generated_submission_runs_through_http_service(self, tiny_sat_recipe, tmp_path):
        """End-to-end: a recipe-generated submission through the real server."""
        from repro.service import CampaignClient, CampaignServer, JobManager, TenantCacheStore

        submission = generate_submission(tiny_sat_recipe, scale=1)
        store = TenantCacheStore(tmp_path / "cache")
        manager = JobManager(backend="serial", store=store, max_queue=2)
        server = CampaignServer(manager, token="api-secret")
        server.start()
        try:
            client = CampaignClient(server.url, token="api-secret")
            job_id = client.submit(submission)
            assert client.wait(job_id, timeout=120.0)["state"] == "done"
            report = client.report(job_id)
        finally:
            server.stop()
        # The service ran the same workload the recipe describes: profiling
        # its report recovers the recipe's stage, instance mix and fit.
        refit = profile_report(report, name="via-service")
        assert refit.stages[0].instance == tiny_sat_recipe.stages[0].instance
        assert refit.stages[0].runtime == tiny_sat_recipe.stages[0].runtime
