"""Profiling campaign reports into recipes."""

import dataclasses
import math

import pytest

from repro.campaign import run_campaign
from repro.campaign.controller import StageRunRecord
from repro.campaign.report import CampaignReport, StageReport
from repro.experiments.config import ExperimentConfig
from repro.experiments.stages import campaign_stages
from repro.recipes import ProfileError, profile_report
from repro.recipes.profile import HEAVY_TAIL_LOG_SIGMA
from repro.stats.online import StreamingCensoredExponential


def make_report(stream, *, label="3-SAT 25@4.2", key="SAT", kind="sat", budget=50_000):
    stage = StageReport(
        key=key,
        label=label,
        kind=kind,
        quota=len(stream),
        base_seed=20130816,
        budget=budget,
        emit_keys=(key,),
        after=(),
        required=True,
        supports_cutoff=True,
        stream=tuple(stream),
    )
    return CampaignReport(controller="off", controller_params={}, stages=(stage,), decisions=())


def make_stream(iterations, solved=None, budget=50_000):
    solved = [True] * len(iterations) if solved is None else solved
    return [
        StageRunRecord(
            index=i,
            seed=1000 + i,
            iterations=int(it),
            solved=bool(ok),
            budget=budget,
            runtime_seconds=it * 1e-6,
        )
        for i, (it, ok) in enumerate(zip(iterations, solved))
    ]


class TestFitting:
    def test_refit_matches_streaming_estimator(self):
        iterations = [120, 340, 55, 900, 210, 80]
        recipe = profile_report(make_report(make_stream(iterations)), name="fit")
        expected = StreamingCensoredExponential()
        for value in iterations:
            expected.update(value, censored=False)
        fit = expected.fit()
        stage = recipe.stages[0]
        assert stage.runtime.family == "censored_exponential"
        assert stage.runtime.params == {"x0": fit.x0, "lam": fit.lam}
        assert stage.runtime.n_events == len(iterations)
        assert stage.censoring_rate == 0.0
        assert stage.budget_ratio == pytest.approx(50_000 / fit.mean())

    def test_censoring_rate_and_counts(self):
        stream = make_stream([100, 200, 50_000, 50_000], solved=[True, True, False, False])
        stage = profile_report(make_report(stream), name="cens").stages[0]
        assert stage.censoring_rate == 0.5
        assert stage.runtime.n_events == 2
        assert stage.runtime.n_censored == 2

    def test_heavy_tail_selects_lognormal(self):
        # Log-values dispersed far beyond the controller's Luby threshold.
        iterations = [10, 100_000, 12, 80_000, 9, 120_000, 11, 95_000]
        stage = profile_report(make_report(make_stream(iterations)), name="heavy").stages[0]
        assert stage.runtime.family == "lognormal"
        sigma = stage.runtime.params["sigma"]
        assert sigma > HEAVY_TAIL_LOG_SIGMA
        logs = [math.log(v) for v in iterations]
        mu = sum(logs) / len(logs)
        assert stage.runtime.params["mu"] == pytest.approx(mu)
        assert sigma == pytest.approx(
            math.sqrt(sum((v - mu) ** 2 for v in logs) / len(logs))
        )


class TestInstanceParsing:
    def test_all_campaign_stage_labels_parse(self, tmp_path):
        config = ExperimentConfig.tiny()
        report = run_campaign(campaign_stages(config))
        recipe = profile_report(report, name="all-kinds")
        by_key = {stage.key: stage for stage in recipe.stages}
        assert by_key["MS"].instance.problem == "MS"
        assert by_key["MS"].instance.size == config.magic_square_n
        assert by_key["AI"].instance.size == config.all_interval_n
        assert by_key["Costas"].instance.size == config.costas_n
        sat = by_key["SAT"].instance
        assert sat.sat_family == "planted"
        assert sat.n_variables == config.sat_n_variables
        assert sat.policy == "walksat"
        assert by_key["SAT/novelty"].instance.policy == "novelty"
        # Every stage recovers the configuration seed the instances drew from.
        assert {s.instance.instance_seed for s in recipe.stages} == {config.base_seed}

    @pytest.mark.parametrize(
        "label, family, policy",
        [
            ("uniform 3-SAT 150@4.2", "uniform", "walksat"),
            ("3-SAT 150@4.2 [novelty+]", "planted", "novelty+"),
            ("dimacs uf50-01 [adaptive]", "dimacs", "adaptive"),
        ],
    )
    def test_sat_label_variants(self, label, family, policy):
        stage = profile_report(
            make_report(make_stream([10, 20, 30]), label=label), name="lbl"
        ).stages[0]
        assert stage.instance.sat_family == family
        assert stage.instance.policy == policy

    def test_unparseable_label_is_rejected(self):
        with pytest.raises(ProfileError, match="cannot parse"):
            profile_report(make_report(make_stream([10, 20]), label="mystery"), name="bad")


class TestGuardrails:
    def test_all_censored_stage_is_rejected(self):
        stream = make_stream([50_000] * 4, solved=[False] * 4)
        with pytest.raises(ProfileError, match="all censored"):
            profile_report(make_report(stream), name="dead")

    def test_empty_report_is_rejected(self):
        report = make_report(make_stream([10, 20]))
        empty = CampaignReport(
            controller="off",
            controller_params={},
            stages=(dataclasses.replace(report.stages[0], stream=()),),
            decisions=(),
        )
        with pytest.raises(ProfileError, match="no executed stages"):
            profile_report(empty, name="empty")

    def test_dropped_dependencies_are_filtered(self, tiny_sat_report):
        # A dependent stage whose prerequisite never ran still profiles.
        base = tiny_sat_report.stages[0]
        dependent = dataclasses.replace(
            base,
            key="SAT/novelty",
            label=base.label + " [novelty]",
            kind="sat_policies",
            emit_keys=("SAT/novelty",),
            after=("SAT",),
        )
        report = CampaignReport(
            controller="off",
            controller_params={},
            stages=(dataclasses.replace(base, stream=()), dependent),
            decisions=(),
        )
        recipe = profile_report(report, name="partial")
        assert [stage.key for stage in recipe.stages] == ["SAT/novelty"]
        assert recipe.stages[0].after == ()

    def test_source_records_provenance(self, tiny_sat_recipe, tiny_sat_report):
        assert tiny_sat_recipe.source["controller"] == "off"
        assert tiny_sat_recipe.source["n_observations"] == tiny_sat_report.stages[0].n_issued
