"""Shared fixtures for the recipe tests.

One tiny SAT campaign is run once per session; every schema/profile/
generate test works from its report (or from the recipe profiled out of
it) instead of re-running solvers.
"""

from __future__ import annotations

import pytest

from repro.campaign import run_campaign
from repro.experiments.config import ExperimentConfig
from repro.experiments.stages import campaign_stages
from repro.recipes import profile_report


@pytest.fixture(scope="session")
def tiny_sat_report():
    """Report of a tiny single-stage SAT campaign (the fast profiling input)."""
    config = ExperimentConfig.tiny()
    return run_campaign(campaign_stages(config, ("sat",)))


@pytest.fixture(scope="session")
def tiny_sat_recipe(tiny_sat_report):
    return profile_report(
        tiny_sat_report, name="tiny-sat", description="tiny planted 3-SAT stage"
    )
