"""Wire-format contracts of the campaign service.

The submission envelope must be strict (bad input is a 400 at the door,
never a half-configured job) and lossless (a full serialised config
round-trips bit for bit, so HTTP campaigns reproduce CLI campaigns).
"""

import dataclasses

import pytest

from repro.experiments.config import ExperimentConfig
from repro.service.schema import (
    CampaignSubmission,
    config_from_dict,
    config_to_dict,
)


class TestConfigRoundTrip:
    @pytest.mark.parametrize("profile", ["tiny", "quick", "medium", "full"])
    def test_every_profile_round_trips(self, profile):
        config = getattr(ExperimentConfig, profile)()
        # A full dump overrides every field, so the starting profile of the
        # decode side must not matter.
        assert config_from_dict(config_to_dict(config), profile="quick") == config

    def test_tuples_survive_json_typing(self):
        config = ExperimentConfig.tiny()
        payload = config_to_dict(config)
        assert payload["cores"] == [4, 16, 64]  # JSON array, not tuple
        restored = config_from_dict(payload)
        assert restored.cores == (4, 16, 64)

    def test_paper_constants_never_cross_the_wire(self):
        payload = config_to_dict(ExperimentConfig.tiny())
        assert "PAPER_FAMILIES" not in payload
        assert "PAPER_SHIFT_RULES" not in payload

    def test_sparse_overrides_apply_over_profile(self):
        config = config_from_dict({"base_seed": 7}, profile="tiny")
        assert config.base_seed == 7
        assert config.magic_square_n == ExperimentConfig.tiny().magic_square_n

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown config fields"):
            config_from_dict({"bogus_knob": 1})

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            config_from_dict(None, profile="huge")

    def test_config_validation_still_applies(self):
        with pytest.raises(ValueError, match="sequential"):
            config_from_dict({"n_sequential_runs": 1})


class TestSubmission:
    def test_round_trip(self):
        submission = CampaignSubmission.from_dict(
            {
                "profile": "tiny",
                "controller": "adaptive",
                "stages": "SAT",
                "tenant": "team-a",
            }
        )
        restored = CampaignSubmission.from_dict(submission.as_dict())
        assert restored == dataclasses.replace(submission)

    def test_build_stages_resolves_selection(self):
        submission = CampaignSubmission.from_dict({"profile": "tiny", "stages": "SAT"})
        assert [stage.key for stage in submission.build_stages()] == ["SAT"]

    def test_default_is_full_quick_campaign(self):
        submission = CampaignSubmission.from_dict({})
        assert submission.controller == "off"
        assert submission.tenant == "default"
        assert len(submission.build_stages()) >= 4  # MS, AI, Costas, SAT, ...

    def test_bad_stage_pattern_fails_at_submission_time(self):
        with pytest.raises(ValueError, match="matches no stage"):
            CampaignSubmission.from_dict({"profile": "tiny", "stages": "NOPE"})

    def test_unknown_controller_rejected(self):
        with pytest.raises(ValueError, match="unknown controller"):
            CampaignSubmission.from_dict({"controller": "yolo"})

    @pytest.mark.parametrize("tenant", ["", "a/b", "x" * 65, "sp ace"])
    def test_bad_tenant_rejected(self, tenant):
        with pytest.raises(ValueError, match="invalid tenant"):
            CampaignSubmission.from_dict({"tenant": tenant})

    def test_unknown_submission_field_rejected(self):
        with pytest.raises(ValueError, match="unknown submission fields"):
            CampaignSubmission.from_dict({"controler": "off"})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            CampaignSubmission.from_dict([1, 2, 3])
