"""The multi-tenant observation store: sharing, eviction, read safety.

ISSUE-9 satellite: LRU eviction respects the byte bound, never evicts an
object mid-read, and a second tenant hitting the same content address is
served from the pool without recomputation.
"""

import threading
import time

import numpy as np
import pytest

from repro.engine.core import collect_batch
from repro.multiwalk.observations import RuntimeObservations
from repro.service.tenants import TenantCacheStore
from repro.solvers.base import LasVegasAlgorithm, RunResult


class CountingAlgorithm(LasVegasAlgorithm):
    """Counts executions so cache hits are distinguishable from re-runs."""

    name = "counting"
    calls = 0

    def _run(self, rng: np.random.Generator) -> RunResult:
        type(self).calls += 1
        return RunResult(solved=True, iterations=int(rng.integers(1, 100)), runtime_seconds=0.0)


def _batch(label: str, n: int = 64) -> RuntimeObservations:
    rng = np.random.default_rng(0)
    return RuntimeObservations(
        label=label,
        iterations=rng.integers(1, 1000, n).astype(float),
        runtimes=np.zeros(n),
        solved=np.ones(n, dtype=bool),
        seeds=np.arange(n, dtype=np.int64),
    )


class TestLRUEviction:
    def test_pool_stays_under_the_byte_bound(self, tmp_path):
        probe = TenantCacheStore(tmp_path / "probe")
        size = probe.store("t", "obj-0.json", _batch("probe")).stat().st_size
        store = TenantCacheStore(tmp_path / "store", max_bytes=3 * size)
        for i in range(8):
            store.store("t", f"obj-{i}.json", _batch(f"b{i}"))
            assert store.total_bytes() <= 3 * size
        assert store.evictions == 5
        # The survivors are the most recently stored.
        names = sorted(p.name for p in store.objects_dir.iterdir())
        assert names == ["obj-5.json", "obj-6.json", "obj-7.json"]

    def test_eviction_is_least_recently_used(self, tmp_path):
        probe = TenantCacheStore(tmp_path / "probe")
        size = probe.store("t", "obj.json", _batch("probe")).stat().st_size
        store = TenantCacheStore(tmp_path / "store", max_bytes=2 * size + size // 2)
        store.store("t", "a.json", _batch("a"))
        store.store("t", "b.json", _batch("b"))
        assert store.load("t", "a.json") is not None  # refresh a's recency
        store.store("t", "c.json", _batch("c"))  # must evict b, not a
        assert store.load("t", "a.json") is not None
        assert store.load("t", "b.json") is None
        assert store.load("t", "c.json") is not None

    def test_eviction_removes_tenant_markers(self, tmp_path):
        probe = TenantCacheStore(tmp_path / "probe")
        size = probe.store("t", "obj.json", _batch("probe")).stat().st_size
        store = TenantCacheStore(tmp_path / "store", max_bytes=size + size // 2)
        store.store("alpha", "a.json", _batch("a"))
        store.store("beta", "b.json", _batch("b"))  # evicts a
        assert not (store.tenant_dir("alpha") / "a.json").exists()

    def test_never_evicts_mid_read(self, tmp_path, monkeypatch):
        """An eviction racing a slow reader must wait for the pin."""
        probe = TenantCacheStore(tmp_path / "probe")
        size = probe.store("t", "obj.json", _batch("probe")).stat().st_size
        store = TenantCacheStore(tmp_path / "store", max_bytes=size + size // 2)
        store.store("t", "slow.json", _batch("slow"))

        in_read = threading.Event()
        release = threading.Event()
        original_load = RuntimeObservations.load

        def slow_load(path):
            in_read.set()
            assert release.wait(timeout=10.0)
            return original_load(path)

        monkeypatch.setattr(RuntimeObservations, "load", staticmethod(slow_load))
        result = {}
        reader = threading.Thread(
            target=lambda: result.update(batch=store.load("t", "slow.json")), daemon=True
        )
        reader.start()
        assert in_read.wait(timeout=10.0)
        monkeypatch.setattr(RuntimeObservations, "load", staticmethod(original_load))
        # Storing another object would evict slow.json (LRU) — but it is
        # pinned by the in-flight read, so the eviction must skip it.
        store.store("t", "new.json", _batch("new"))
        assert store.object_path("slow.json").exists()
        release.set()
        reader.join(timeout=10.0)
        assert result["batch"] is not None and result["batch"].label == "slow"
        # Once the pin is gone the next store may evict it as usual.
        store.store("t", "another.json", _batch("another"))
        assert not store.object_path("slow.json").exists()

    def test_restart_adopts_existing_objects(self, tmp_path):
        first = TenantCacheStore(tmp_path / "store")
        first.store("t", "kept.json", _batch("kept"))
        second = TenantCacheStore(tmp_path / "store")
        assert second.load("t", "kept.json") is not None
        assert second.hits == 1

    def test_rejects_nonpositive_bound(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            TenantCacheStore(tmp_path / "store", max_bytes=0)


class TestMultiTenancy:
    def test_cross_tenant_hit_without_recomputation(self, tmp_path):
        """ISSUE-9 satellite: same content address, different tenant — the
        batch is served from the shared pool, the solver never re-runs."""
        store = TenantCacheStore(tmp_path / "store")
        CountingAlgorithm.calls = 0
        first = collect_batch(
            CountingAlgorithm(), 10, base_seed=3, cache=store.tenant_cache("alpha")
        )
        assert CountingAlgorithm.calls == 10
        second = collect_batch(
            CountingAlgorithm(), 10, base_seed=3, cache=store.tenant_cache("beta")
        )
        assert CountingAlgorithm.calls == 10  # no recomputation
        np.testing.assert_array_equal(first.iterations, second.iterations)
        np.testing.assert_array_equal(first.seeds, second.seeds)
        stats = store.stats()
        assert stats["cross_tenant_hits"] == 1
        assert stats["stores"] == 1
        assert sorted(stats["tenants"]) == ["alpha", "beta"]

    def test_same_tenant_hit_is_not_cross_tenant(self, tmp_path):
        store = TenantCacheStore(tmp_path / "store")
        cache = store.tenant_cache("alpha")
        collect_batch(CountingAlgorithm(), 5, base_seed=9, cache=cache)
        collect_batch(CountingAlgorithm(), 5, base_seed=9, cache=cache)
        assert store.stats()["cross_tenant_hits"] == 0
        assert store.stats()["hits"] == 1

    def test_different_keys_are_different_objects(self, tmp_path):
        store = TenantCacheStore(tmp_path / "store")
        cache = store.tenant_cache("alpha")
        collect_batch(CountingAlgorithm(), 5, base_seed=1, cache=cache)
        collect_batch(CountingAlgorithm(), 5, base_seed=2, cache=cache)
        assert store.stats()["objects"] == 2

    def test_markers_record_attribution(self, tmp_path):
        store = TenantCacheStore(tmp_path / "store")
        store.store("alpha", "x.json", _batch("x"))
        store.load("beta", "x.json")
        assert (store.tenant_dir("alpha") / "x.json").exists()
        assert (store.tenant_dir("beta") / "x.json").exists()
        # One object backs both markers.
        assert store.stats()["objects"] == 1


def test_load_miss_is_none_and_counted(tmp_path):
    store = TenantCacheStore(tmp_path / "store")
    assert store.load("t", "absent.json") is None
    assert store.misses == 1
