"""The campaign service end to end: HTTP API, queue, auth, streaming.

Everything runs against a real :class:`CampaignServer` on a loopback port
through the bundled :class:`CampaignClient` — the same pairing the CI
service-smoke lane uses — with tiny single-stage campaigns so the whole
module stays fast.
"""

import threading

import numpy as np
import pytest

from repro.campaign import run_campaign, verify_report
from repro.experiments.data import clear_observation_cache
from repro.service import (
    CampaignClient,
    CampaignServer,
    CampaignSubmission,
    JobManager,
    QueueFull,
    ServiceError,
    TenantCacheStore,
)

TINY_SAT = {"profile": "tiny", "stages": "SAT"}


def deterministic_report(report) -> dict:
    """A report's backend-invariant content: everything but wall clock.

    ``runtime_seconds`` is the one field that legitimately varies between
    two executions of the same campaign; controllers never read it, so the
    decision log stays inside the deterministic part.
    """
    payload = report.as_dict()
    for stage in payload["stages"]:
        for record in stage["stream"]:
            record.pop("runtime_seconds")
    return payload


@pytest.fixture(autouse=True)
def fresh_memo():
    clear_observation_cache()
    yield
    clear_observation_cache()


@pytest.fixture
def service(tmp_path):
    """A running server + client (token-authenticated, bounded queue)."""
    store = TenantCacheStore(tmp_path / "cache")
    manager = JobManager(backend="serial", store=store, max_queue=2)
    server = CampaignServer(manager, token="api-secret")
    server.start()
    client = CampaignClient(server.url, token="api-secret")
    try:
        yield server, client, store
    finally:
        server.stop()


class TestSubmitAndReport:
    def test_http_campaign_matches_in_process_run(self, service):
        """The service is a transport, not a semantic layer: the fetched
        report's observations and decision log are byte-identical to an
        in-process run_campaign of the same submission."""
        server, client, _ = service
        submission = CampaignSubmission.from_dict(TINY_SAT)
        job_id = client.submit(submission)
        snapshot = client.wait(job_id, timeout=120.0)
        assert snapshot["state"] == "done"
        via_http = client.report(job_id)

        clear_observation_cache()
        reference = run_campaign(submission.build_stages(), controller="off")
        assert deterministic_report(via_http) == deterministic_report(reference)
        assert verify_report(via_http) >= 1

    def test_adaptive_controller_over_http(self, service):
        server, client, _ = service
        submission = CampaignSubmission.from_dict({**TINY_SAT, "controller": "adaptive"})
        job_id = client.submit(submission)
        assert client.wait(job_id, timeout=120.0)["state"] == "done"
        report = client.report(job_id)
        assert report.controller == "adaptive"
        assert verify_report(report) == len(report.decisions)

    def test_dry_run_executes_nothing(self, service):
        server, client, _ = service
        job_id = client.submit({**TINY_SAT, "dry_run": True})
        assert client.wait(job_id, timeout=30.0)["state"] == "done"
        report = client.report(job_id)
        assert report.dry_run and all(s.n_issued == 0 for s in report.stages)

    def test_status_snapshot_shape(self, service):
        server, client, _ = service
        job_id = client.submit(TINY_SAT)
        snapshot = client.wait(job_id, timeout=120.0)
        assert snapshot["job_id"] == job_id
        assert snapshot["tenant"] == "default"
        assert snapshot["summary"]["issued"] == 30
        assert job_id in [j["job_id"] for j in client.list_jobs()]

    def test_report_before_completion_is_409(self):
        manager = JobManager(backend="serial", max_queue=2)
        gate = threading.Event()
        original = JobManager._execute

        def blocked_execute(self, job):
            gate.wait(timeout=60.0)
            original(self, job)

        manager._execute = blocked_execute.__get__(manager)
        server = CampaignServer(manager, token="t")
        server.start()
        client = CampaignClient(server.url, token="t")
        try:
            job_id = client.submit({**TINY_SAT, "dry_run": True})
            with pytest.raises(ServiceError) as exc:
                client.report(job_id)
            assert exc.value.status == 409
            gate.set()
            client.wait(job_id, timeout=30.0)
            assert client.report(job_id).dry_run
        finally:
            gate.set()
            server.stop()

    def test_invalid_submission_is_400(self, service):
        server, client, _ = service
        with pytest.raises(ServiceError) as exc:
            client.submit({"profile": "huge"})
        assert exc.value.status == 400
        assert "unknown profile" in exc.value.detail

    def test_unknown_job_is_404(self, service):
        server, client, _ = service
        with pytest.raises(ServiceError) as exc:
            client.status("deadbeef")
        assert exc.value.status == 404


class TestAuth:
    def test_wrong_token_is_401(self, service):
        server, _, _ = service
        bad = CampaignClient(server.url, token="wrong")
        with pytest.raises(ServiceError) as exc:
            bad.list_jobs()
        assert exc.value.status == 401

    def test_missing_token_is_401(self, service):
        server, _, _ = service
        anon = CampaignClient(server.url)
        with pytest.raises(ServiceError) as exc:
            anon.submit(TINY_SAT)
        assert exc.value.status == 401

    def test_healthz_is_open(self, service):
        server, _, store = service
        anon = CampaignClient(server.url)
        health = anon.health()
        assert health["status"] == "ok"
        assert health["cache"]["objects"] == store.stats()["objects"]

    def test_tokenless_server_needs_no_auth(self, tmp_path):
        manager = JobManager(backend="serial", max_queue=1)
        with CampaignServer(manager) as server:
            client = CampaignClient(server.url)
            assert client.list_jobs() == []


class TestBackpressure:
    def test_full_queue_is_429_with_retry_after(self, tmp_path):
        """ISSUE-9 acceptance: submissions beyond the queue bound answer
        429 + Retry-After instead of buffering unboundedly."""
        manager = JobManager(backend="serial", max_queue=1, retry_after=7.5)
        # Wedge the executor so queued jobs stay queued.  The wedged job is
        # marked running first: only *waiting* jobs count against the bound.
        gate = threading.Event()
        original = JobManager._execute

        def blocked_execute(self, job):
            job.transition("running")
            gate.wait(timeout=60.0)
            original(self, job)

        manager._execute = blocked_execute.__get__(manager)
        server = CampaignServer(manager, token="t")
        server.start()
        client = CampaignClient(server.url, token="t")
        try:
            first = client.submit({**TINY_SAT, "dry_run": True})  # runs (wedged)
            second = client.submit({**TINY_SAT, "dry_run": True})  # queued: 1/1
            with pytest.raises(ServiceError) as exc:
                client.submit({**TINY_SAT, "dry_run": True})
            assert exc.value.status == 429
            assert exc.value.retry_after == 7.5
            gate.set()
            assert client.wait(first, timeout=30.0)["state"] == "done"
            assert client.wait(second, timeout=30.0)["state"] == "done"
        finally:
            gate.set()
            server.stop()

    def test_queue_full_carries_hint_in_process(self):
        manager = JobManager(backend="serial", max_queue=1, retry_after=3.0)
        manager.stop()
        with pytest.raises(QueueFull) as exc:
            manager.submit(CampaignSubmission.from_dict({**TINY_SAT, "dry_run": True}))
        assert exc.value.retry_after == 3.0


class TestEventStream:
    def test_stream_carries_observations_and_terminal_state(self, service):
        server, client, _ = service
        job_id = client.submit(TINY_SAT)
        events = list(client.stream_events(job_id))
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "state"
        observations = [e for e in events if e["kind"] == "observation"]
        assert len(observations) == 30
        assert sorted(e["index"] for e in observations) == list(range(30))
        assert events[-1]["kind"] == "state" and events[-1]["state"] == "done"

    def test_stream_decisions_match_report(self, service):
        server, client, _ = service
        job_id = client.submit({**TINY_SAT, "controller": "adaptive"})
        events = list(client.stream_events(job_id))
        streamed = [e["decision"] for e in events if e["kind"] == "decision"]
        report = client.report(job_id)
        assert streamed == report.decision_dicts()

    def test_stream_resumes_from_since(self, service):
        server, client, _ = service
        job_id = client.submit(TINY_SAT)
        all_events = list(client.stream_events(job_id))
        tail = list(client.stream_events(job_id, since=len(all_events) - 2))
        assert tail == all_events[-2:]

    def test_events_are_seq_numbered(self, service):
        server, client, _ = service
        job_id = client.submit({**TINY_SAT, "dry_run": True})
        events = list(client.stream_events(job_id))
        assert [e["seq"] for e in events] == list(range(len(events)))


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        manager = JobManager(backend="serial", max_queue=2)
        gate = threading.Event()
        original = JobManager._execute

        def blocked_execute(self, job):
            gate.wait(timeout=60.0)
            original(self, job)

        manager._execute = blocked_execute.__get__(manager)
        server = CampaignServer(manager, token="t")
        server.start()
        client = CampaignClient(server.url, token="t")
        try:
            running = client.submit({**TINY_SAT, "dry_run": True})
            queued = client.submit({**TINY_SAT, "dry_run": True})
            snapshot = client.cancel(queued)
            assert snapshot["state"] == "cancelled"
            gate.set()
            assert client.wait(running, timeout=30.0)["state"] == "done"
            # The cancelled job never ran.
            assert client.status(queued)["state"] == "cancelled"
        finally:
            gate.set()
            server.stop()

    def test_cancel_running_job_interrupts_at_observation_boundary(self, service):
        server, client, _ = service
        # A larger stage gives the cancel time to land mid-campaign.
        job_id = client.submit(
            {"profile": "tiny", "stages": "SAT", "config": {"n_sequential_runs": 30}}
        )
        for event in client.stream_events(job_id):
            if event["kind"] == "observation":
                client.cancel(job_id)
                break
        snapshot = client.wait(job_id, timeout=60.0)
        assert snapshot["state"] in ("cancelled", "done")  # may already have finished

    def test_cancel_unknown_job_is_404(self, service):
        server, client, _ = service
        with pytest.raises(ServiceError) as exc:
            client.cancel("deadbeef")
        assert exc.value.status == 404


class TestCacheIntegration:
    def test_resubmission_hits_the_tenant_store(self, service):
        server, client, store = service
        first = client.submit(TINY_SAT)
        client.wait(first, timeout=120.0)
        second = client.submit(TINY_SAT)
        client.wait(second, timeout=60.0)
        stats = store.stats()
        assert stats["stores"] == 1 and stats["hits"] >= 1
        r1, r2 = client.report(first), client.report(second)
        np.testing.assert_array_equal(
            r1.stage("SAT").observations().iterations,
            r2.stage("SAT").observations().iterations,
        )

    def test_second_tenant_served_cross_tenant(self, service):
        server, client, store = service
        a = client.submit({**TINY_SAT, "tenant": "alpha"})
        client.wait(a, timeout=120.0)
        b = client.submit({**TINY_SAT, "tenant": "beta"})
        client.wait(b, timeout=60.0)
        assert store.stats()["cross_tenant_hits"] >= 1
        assert store.stats()["stores"] == 1  # computed once, served twice
