"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
only so that ``pip install -e .`` keeps working on older offline toolchains
(setuptools without PEP 660 editable-wheel support and no ``wheel`` package
available).
"""

from setuptools import setup

setup()
