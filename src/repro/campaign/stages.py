"""Campaign stages: the unit of work the orchestrator schedules.

A campaign is a small DAG of :class:`StageSpec` nodes.  Each stage owns one
deterministic seed stream (rooted at ``base_seed``) and one observation
quota; the orchestrator decides *how* the stage's runs are issued (one
fixed batch under the ``off``/``static`` controllers, adaptive
kill-and-reseed rounds under ``adaptive``) but never *which* runs exist for
a given index — seeds are a pure function of ``(base_seed, index)`` through
the engine's prefix-stable :func:`repro.engine.seeding.spawn_seeds`, so the
stream can be extended indefinitely without disturbing already-issued runs.

``resolve_stage_order`` validates the DAG (unique keys, known dependencies,
acyclic) and returns a deterministic topological order: declaration order,
refined only as far as dependencies require — so two invocations of the
same campaign always execute, print and log stages identically.
"""

from __future__ import annotations

import dataclasses
import fnmatch
from typing import Callable, Sequence

from repro.solvers.base import LasVegasAlgorithm

__all__ = ["StageGraphError", "StageSpec", "resolve_stage_order", "select_stages"]


class StageGraphError(ValueError):
    """The stage list does not form a valid campaign DAG."""


@dataclasses.dataclass(frozen=True)
class StageSpec:
    """One campaign stage: a solver family, a seed stream and a quota.

    Attributes
    ----------
    key:
        Unique stage identifier (``"MS"``, ``"SAT"``, ``"SAT/novelty"`` …).
    label:
        Display/cache label of the collected batch (the engine's
        content-addressed disk cache keys on it, so it must match what the
        plain collectors use).
    kind:
        Observation kind the stage belongs to (``"benchmarks"``, ``"sat"``,
        ``"sat_policies"``) — experiment-registry vocabulary.
    make_solver:
        ``make_solver(budget)`` returns the stage's solver with the given
        per-run iteration/flip budget.  Controllers re-invoke it per round
        to issue reduced-cutoff (kill-and-reseed) runs.
    quota:
        Observation target.  Under ``off``/``static`` execution this is the
        classic batch size (every completed run counts, censored included);
        the adaptive controller counts *solved* observations and replaces
        killed runs from the same seed stream.
    base_seed:
        Root of the stage's seed stream.
    budget:
        Full per-run budget (the censoring threshold of an un-killed run).
    emit_keys:
        Keys under which the stage's batch appears in the campaign's
        observation mapping (one stage may serve several, e.g. the SAT
        stage doubling as the default policy row).
    after:
        Keys of stages that must complete first.
    required:
        BUG-021 guardrail: a required stage whose batch contains zero
        *solved* observations hard-fails the campaign.
    supports_cutoff:
        Whether the adaptive controller may issue reduced-budget rounds
        (kill-and-reseed).  Off for the CSP benchmarks — their quotas are
        calibrated to solve within budget — on for the SAT workloads.
    """

    key: str
    label: str
    kind: str
    make_solver: Callable[[int], LasVegasAlgorithm]
    quota: int
    base_seed: int
    budget: int
    emit_keys: tuple[str, ...]
    after: tuple[str, ...] = ()
    required: bool = True
    supports_cutoff: bool = False

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("stage key must be non-empty")
        if self.quota < 1:
            raise ValueError(f"stage {self.key!r}: quota must be >= 1, got {self.quota}")
        if self.budget < 1:
            raise ValueError(f"stage {self.key!r}: budget must be >= 1, got {self.budget}")
        if not self.emit_keys:
            raise ValueError(f"stage {self.key!r}: emit_keys must be non-empty")


def resolve_stage_order(stages: Sequence[StageSpec]) -> list[StageSpec]:
    """Validate the campaign DAG and return its deterministic execution order.

    Kahn's algorithm with a declaration-ordered frontier: among ready
    stages the earliest-declared runs first, so the order (and with it the
    decision log, the progress stream and the printed summary) cannot vary
    between invocations.
    """
    stages = list(stages)
    keys = [stage.key for stage in stages]
    duplicates = {key for key in keys if keys.count(key) > 1}
    if duplicates:
        raise StageGraphError(f"duplicate stage keys: {sorted(duplicates)}")
    emitted = [key for stage in stages for key in stage.emit_keys]
    emit_duplicates = {key for key in emitted if emitted.count(key) > 1}
    if emit_duplicates:
        raise StageGraphError(f"multiple stages emit the same keys: {sorted(emit_duplicates)}")
    known = set(keys)
    for stage in stages:
        unknown = [dep for dep in stage.after if dep not in known]
        if unknown:
            raise StageGraphError(f"stage {stage.key!r} depends on unknown stages {unknown}")
        if stage.key in stage.after:
            raise StageGraphError(f"stage {stage.key!r} depends on itself")

    order: list[StageSpec] = []
    done: set[str] = set()
    remaining = list(stages)
    while remaining:
        ready = [stage for stage in remaining if all(dep in done for dep in stage.after)]
        if not ready:
            cycle = sorted(stage.key for stage in remaining)
            raise StageGraphError(f"stage dependencies contain a cycle among {cycle}")
        nxt = ready[0]  # earliest declared among the ready set
        order.append(nxt)
        done.add(nxt.key)
        remaining.remove(nxt)
    return order


def select_stages(stages: Sequence[StageSpec], patterns_arg: str) -> list[StageSpec]:
    """Filter a stage DAG by comma-separated key globs, keeping dependencies.

    Returns the selected stages in their original declaration order.
    Dependencies of selected stages are pulled in transitively so the DAG
    stays resolvable.  Raises :class:`ValueError` (with a human-readable
    message) for an empty pattern list or a pattern matching nothing —
    both the CLI and the campaign service surface that message verbatim.
    """
    patterns = [p.strip() for p in patterns_arg.split(",") if p.strip()]
    if not patterns:
        raise ValueError("--stages got an empty pattern list")
    by_key = {stage.key: stage for stage in stages}
    selected: set[str] = set()
    for pattern in patterns:
        hits = fnmatch.filter(by_key, pattern)
        if not hits:
            known = ", ".join(by_key)
            raise ValueError(
                f"--stages pattern {pattern!r} matches no stage (stages: {known})"
            )
        selected.update(hits)
    frontier = list(selected)
    while frontier:  # dependency closure over `after`
        for dep in by_key[frontier.pop()].after:
            if dep not in selected:
                selected.add(dep)
                frontier.append(dep)
    return [stage for stage in stages if stage.key in selected]
