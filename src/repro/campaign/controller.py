"""Campaign controllers: the paper's predictor driving live decisions.

The orchestrator executes every stage as a sequence of *rounds*.  Before a
round it asks the controller for a :class:`RoundPlan` (how many runs, at
what per-run budget, on how many workers); after the round it feeds the
completed runs back — always in stable index order, never in the
backend-dependent completion order — so every decision is a pure function
of the observation stream.  Same ``base_seed`` ⇒ same stream ⇒ identical
decision log on any backend at any worker count, which is what makes the
log *replayable*: :func:`repro.campaign.orchestrator.replay_decisions`
re-drives a saved report's stream through a fresh controller and must
reproduce the log bit for bit.

Two controllers are provided:

* :class:`StaticController` — plans once up front: one full-budget round of
  exactly the stage quota, i.e. the same runs the plain (``off``) campaign
  executes, plus the recorded plan.  The baseline the adaptive controller
  is benchmarked against.
* :class:`AdaptiveController` — re-plans after every round from streaming
  censoring-aware fits (:mod:`repro.stats.online`): it picks the restart
  cutoff minimising the empirical cost per solved run (runs censored at a
  reduced cutoff are *killed* and replaced by fresh-seed runs — restarts by
  reseeding), chooses the fixed-vs-Luby cutoff schedule from the fitted
  log-space dispersion (Luby's universal sequence hedges heavy tails), and
  sizes the worker allocation with the paper's multi-walk speed-up
  predictor (:func:`repro.multiwalk.simulate.simulate_multiwalk_speedups`)
  on the solved runtimes observed so far.  It counts *solved* observations
  toward the quota, which is what makes it finish censoring-heavy stages
  in less wall-clock than the static plan.

All decisions consume iteration counts and solved flags only — never
wall-clock runtimes — so the log is deterministic across hosts.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.restarts import luby_sequence
from repro.multiwalk.simulate import simulate_multiwalk_speedups
from repro.stats.online import StreamingCensoredExponential, StreamingLognormal

__all__ = [
    "AdaptiveController",
    "CONTROLLER_NAMES",
    "Controller",
    "Decision",
    "DecisionLog",
    "RoundPlan",
    "StageRunRecord",
    "StaticController",
    "make_controller",
]

#: Controller names accepted by the orchestrator and the CLI.
CONTROLLER_NAMES: tuple[str, ...] = ("off", "static", "adaptive")


@dataclasses.dataclass(frozen=True)
class StageRunRecord:
    """One completed run as the controller (and the report stream) sees it.

    ``budget`` is the per-run cutoff the round was issued at; a censored
    record with ``budget`` below the stage's full budget is a *killed* run.
    ``runtime_seconds`` rides along for the report only — controllers must
    never read it (wall-clock would break cross-backend determinism).
    """

    index: int
    seed: int
    iterations: int
    solved: bool
    budget: int
    runtime_seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "index": int(self.index),
            "seed": int(self.seed),
            "iterations": int(self.iterations),
            "solved": bool(self.solved),
            "budget": int(self.budget),
            "runtime_seconds": float(self.runtime_seconds),
        }


@dataclasses.dataclass(frozen=True)
class RoundPlan:
    """What the controller wants executed next: ``n_runs`` at ``budget``.

    ``workers`` is an allocation *hint* — applied when the backend is an
    elastic pool (thread/process), recorded either way.  ``note`` names the
    schedule segment the budget came from (``"probe"``, ``"fixed"``,
    ``"luby"``, ``"static"``).
    """

    round_index: int
    n_runs: int
    budget: int
    workers: int | None = None
    note: str = ""


@dataclasses.dataclass(frozen=True)
class Decision:
    """One appended decision-log entry (``seq`` is campaign-global)."""

    seq: int
    stage: str
    kind: str
    detail: Mapping[str, object]

    def as_dict(self) -> dict:
        return {"seq": self.seq, "stage": self.stage, "kind": self.kind, "detail": dict(self.detail)}


def _jsonify(value):
    """Normalise a detail value to what a JSON round-trip would return."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


class DecisionLog:
    """Append-only, JSON-normalised campaign decision log.

    Entries are normalised on append (numpy scalars to Python, tuples to
    lists, mapping keys to strings) so an in-memory log compares equal to
    the same log after a save/load round-trip — the property the replay
    determinism gate relies on.

    ``listener``, when given, receives each decision right after it is
    appended — the seam the campaign service streams live decision events
    through.  Listeners observe; they must not influence the campaign (a
    listener exception would abort it, which is the safe direction).
    """

    def __init__(self, listener: "Callable[[Decision], None] | None" = None) -> None:
        self.decisions: list[Decision] = []
        self._listener = listener

    def append(self, stage: str, kind: str, **detail) -> Decision:
        decision = Decision(
            seq=len(self.decisions), stage=stage, kind=kind, detail=_jsonify(detail)
        )
        self.decisions.append(decision)
        if self._listener is not None:
            self._listener(decision)
        return decision

    def as_dicts(self) -> list[dict]:
        return [decision.as_dict() for decision in self.decisions]

    def __len__(self) -> int:
        return len(self.decisions)


class Controller:
    """Round-planning protocol shared by the static and adaptive controllers.

    Lifecycle per stage: :meth:`begin_stage`, then alternate
    :meth:`plan_round` / :meth:`observe` until ``plan_round`` returns
    ``None`` (quota reached, or the issue ceiling
    ``max_issue_factor * quota`` hit — the give-up bound that keeps
    hopeless stages from looping forever).
    """

    name: str = "abstract"

    def __init__(self, *, max_issue_factor: int = 8) -> None:
        if max_issue_factor < 1:
            raise ValueError(f"max_issue_factor must be >= 1, got {max_issue_factor}")
        self.max_issue_factor = max_issue_factor
        self._stage = None
        self._log: DecisionLog | None = None
        self._issued = 0
        self._counted = 0
        self._round = 0

    # -- subclass hooks -------------------------------------------------
    def _on_begin_stage(self) -> None:
        """Reset per-stage model state and log the opening plan."""

    def _counts_toward_quota(self, record: StageRunRecord) -> bool:
        raise NotImplementedError

    def _ingest(self, record: StageRunRecord) -> None:
        """Update streaming fits from one observation (index order)."""

    def _plan(self, remaining: int, headroom: int) -> RoundPlan:
        raise NotImplementedError

    # -- protocol -------------------------------------------------------
    def params(self) -> dict:
        """Constructor parameters, recorded in the report for replay."""
        return {"max_issue_factor": self.max_issue_factor}

    @property
    def counted(self) -> int:
        return self._counted

    @property
    def issued(self) -> int:
        return self._issued

    def begin_stage(self, stage, log: DecisionLog) -> None:
        """Start a stage.  ``stage`` needs ``key``/``quota``/``budget``/
        ``base_seed``/``supports_cutoff`` — both :class:`StageSpec` and a
        saved :class:`~repro.campaign.report.StageReport` qualify, which is
        what lets replay run without solvers."""
        self._stage = stage
        self._log = log
        self._issued = 0
        self._counted = 0
        self._round = 0
        self._on_begin_stage()

    def plan_round(self) -> RoundPlan | None:
        stage = self._stage
        assert stage is not None and self._log is not None, "begin_stage() first"
        remaining = stage.quota - self._counted
        if remaining <= 0:
            return None
        headroom = self.max_issue_factor * stage.quota - self._issued
        if headroom <= 0:
            return None
        plan = self._plan(remaining, headroom)
        self._round += 1
        return plan

    def observe(self, record: StageRunRecord) -> None:
        self._issued += 1
        if self._counts_toward_quota(record):
            self._counted += 1
        self._ingest(record)


class StaticController(Controller):
    """Plan once up front, then execute it: the non-adaptive baseline.

    The plan is a single full-budget round of exactly the stage quota —
    the same seeds, budgets and therefore bit-identical observations as
    the plain ``--controller off`` campaign — so the only difference off
    → static is that the plan and round outcomes are *recorded*.
    """

    name = "static"

    def _on_begin_stage(self) -> None:
        stage = self._stage
        self._log.append(
            stage.key,
            "plan",
            controller=self.name,
            quota=stage.quota,
            budget=stage.budget,
            base_seed=stage.base_seed,
            schedule="fixed",
            cutoff=stage.budget,
            max_runs=self.max_issue_factor * stage.quota,
        )

    def _counts_toward_quota(self, record: StageRunRecord) -> bool:
        return True  # classic batch semantics: censored runs count too

    def _plan(self, remaining: int, headroom: int) -> RoundPlan:
        return RoundPlan(
            round_index=self._round,
            n_runs=min(remaining, headroom),
            budget=self._stage.budget,
            workers=None,
            note="static",
        )


class AdaptiveController(Controller):
    """Re-plan every round from streaming censoring-aware fits.

    Parameters
    ----------
    probe_runs:
        Size of round 0, issued at the full budget so the first fit sees
        uncensored (or honestly budget-censored) runtimes.
    max_round_runs:
        Ceiling on any later round, bounding how far a bad success-rate
        estimate can over-issue.
    efficiency_floor:
        Minimum predicted parallel efficiency (speed-up / workers) a worker
        count must keep to be allocated.
    candidate_workers:
        Worker counts the allocation decision chooses among.
    heavy_tail_log_sigma:
        Fitted lognormal ``sigma`` above which the cutoff schedule switches
        from fixed to Luby (heavier tail ⇒ hedge the cutoff).
    allocation_min_events, allocation_sims:
        Solved-run count required before the multi-walk predictor is
        consulted, and resampled parallel executions per candidate.
    """

    name = "adaptive"

    def __init__(
        self,
        *,
        probe_runs: int = 8,
        max_round_runs: int = 32,
        efficiency_floor: float = 0.5,
        candidate_workers: Sequence[int] = (1, 2, 4, 8),
        heavy_tail_log_sigma: float = 1.0,
        allocation_min_events: int = 4,
        allocation_sims: int = 16,
        max_issue_factor: int = 8,
    ) -> None:
        super().__init__(max_issue_factor=max_issue_factor)
        if probe_runs < 1:
            raise ValueError(f"probe_runs must be >= 1, got {probe_runs}")
        if max_round_runs < 1:
            raise ValueError(f"max_round_runs must be >= 1, got {max_round_runs}")
        self.probe_runs = probe_runs
        self.max_round_runs = max_round_runs
        self.efficiency_floor = efficiency_floor
        self.candidate_workers = tuple(sorted(int(c) for c in candidate_workers))
        self.heavy_tail_log_sigma = heavy_tail_log_sigma
        self.allocation_min_events = allocation_min_events
        self.allocation_sims = allocation_sims

    def params(self) -> dict:
        return {
            **super().params(),
            "probe_runs": self.probe_runs,
            "max_round_runs": self.max_round_runs,
            "efficiency_floor": self.efficiency_floor,
            "candidate_workers": list(self.candidate_workers),
            "heavy_tail_log_sigma": self.heavy_tail_log_sigma,
            "allocation_min_events": self.allocation_min_events,
            "allocation_sims": self.allocation_sims,
        }

    def _on_begin_stage(self) -> None:
        stage = self._stage
        self._exponential = StreamingCensoredExponential()
        self._lognormal = StreamingLognormal()
        self._solved_values: list[float] = []
        self._all_costs: list[float] = []
        self._killed = 0
        self._cutoff = stage.budget
        self._schedule = "fixed"
        self._luby_step = 0
        self._workers: int | None = None
        self._log.append(
            stage.key,
            "plan",
            controller=self.name,
            quota=stage.quota,
            budget=stage.budget,
            base_seed=stage.base_seed,
            probe_runs=min(self.probe_runs, stage.quota),
            supports_cutoff=bool(stage.supports_cutoff),
            max_runs=self.max_issue_factor * stage.quota,
        )

    def _counts_toward_quota(self, record: StageRunRecord) -> bool:
        return record.solved  # killed/censored runs are replaced, not counted

    def _ingest(self, record: StageRunRecord) -> None:
        iterations = float(record.iterations)
        self._exponential.update(iterations, censored=not record.solved)
        if record.solved and iterations > 0:
            self._lognormal.update(iterations)
        if record.solved:
            self._solved_values.append(iterations)
        elif record.budget < self._stage.budget:
            self._killed += 1  # censored at a reduced cutoff: a killed run
        self._all_costs.append(min(iterations, float(record.budget)))

    # -- decision helpers ----------------------------------------------
    def _refit(self) -> None:
        fit = self._exponential.fit()
        self._log.append(
            self._stage.key,
            "fit",
            runs=self._exponential.count,
            events=self._exponential.n_events,
            censored=self._exponential.n_censored,
            mean=None if fit is None else fit.mean(),
            shift=None if fit is None else fit.x0,
            log_sigma=self._lognormal.sigma,
        )

    def _choose_cutoff(self) -> int:
        """Cutoff minimising the empirical cost per solved run.

        ``cost(c) = sum_i min(v_i, c) / #{solved i with v_i <= c}`` over
        every observation so far; candidates are quantiles of the solved
        runtimes plus the full budget.  For a memoryless (exponential)
        distribution this is flat in ``c`` and the full budget wins the
        tie, i.e. restarts are only bought when the tail actually pays for
        them.  Runs already censored below a candidate make its cost a
        slight underestimate; the probe round and every at-budget round
        keep feeding unclipped evidence, so the bias cannot lock in.
        """
        stage = self._stage
        solved = np.asarray(self._solved_values, dtype=float)
        quantiles = np.quantile(solved, (0.5, 0.75, 0.9))
        candidates = sorted(
            {int(max(1.0, math.ceil(q))) for q in quantiles} | {int(stage.budget)}
        )
        values = np.asarray(self._all_costs, dtype=float)
        best: tuple[float, float] | None = None
        best_cutoff = int(stage.budget)
        best_cost = None
        for candidate in candidates:
            successes = int(np.count_nonzero(solved <= candidate))
            if successes == 0:
                continue
            cost = float(np.minimum(values, float(candidate)).sum()) / successes
            rank = (cost, -candidate)  # ties go to the larger (safer) cutoff
            if best is None or rank < best:
                best = rank
                best_cutoff = candidate
                best_cost = cost
        if best_cutoff != self._cutoff:
            self._log.append(
                self._stage.key,
                "cutoff",
                cutoff=best_cutoff,
                cost_per_success=best_cost,
                previous=self._cutoff,
            )
        return best_cutoff

    def _choose_schedule(self) -> str:
        sigma = self._lognormal.sigma
        schedule = (
            "luby"
            if sigma is not None and sigma > self.heavy_tail_log_sigma
            else "fixed"
        )
        if schedule != self._schedule:
            self._log.append(
                self._stage.key, "schedule", schedule=schedule, log_sigma=sigma
            )
        return schedule

    def _choose_workers(self) -> int | None:
        if len(self._solved_values) < self.allocation_min_events:
            return self._workers
        # The paper's predictor: simulated multi-walk speed-ups over the
        # solved runtimes observed so far.  Seeded from (stage, round) so
        # the resampling — and with it the decision — is a pure function
        # of the observation stream.
        rng = np.random.default_rng(
            (abs(int(self._stage.base_seed)), self._round, len(self._solved_values))
        )
        measured = simulate_multiwalk_speedups(
            np.asarray(self._solved_values, dtype=float),
            self.candidate_workers,
            n_parallel_runs=self.allocation_sims,
            rng=rng,
        )
        workers = self.candidate_workers[0]
        speedups = {}
        for candidate in self.candidate_workers:
            speedup = float(measured.speedup(candidate))
            speedups[str(candidate)] = speedup
            if speedup / candidate >= self.efficiency_floor:
                workers = candidate
        if workers != self._workers:
            self._log.append(
                self._stage.key, "allocation", workers=workers, predicted=speedups
            )
        return workers

    def _success_probability(self, budget: int) -> float:
        fit = self._exponential.fit()
        if fit is None:
            return 0.25  # nothing solved yet: issue optimistically but boundedly
        return float(min(1.0, max(0.05, float(fit.cdf(float(budget))))))

    # -- planning -------------------------------------------------------
    def _plan(self, remaining: int, headroom: int) -> RoundPlan:
        stage = self._stage
        if self._round == 0:
            n = min(stage.quota, self.probe_runs, headroom)
            return RoundPlan(
                round_index=0, n_runs=n, budget=stage.budget, workers=None, note="probe"
            )
        self._refit()
        if stage.supports_cutoff and self._solved_values:
            self._cutoff = self._choose_cutoff()
        if stage.supports_cutoff and self._cutoff < stage.budget:
            self._schedule = self._choose_schedule()
        else:
            self._schedule = "fixed"
        if self._schedule == "luby":
            multiplier = float(luby_sequence(self._luby_step + 1)[-1])
            self._luby_step += 1
            budget = int(min(self._cutoff * multiplier, stage.budget))
        else:
            budget = int(self._cutoff)
        self._workers = self._choose_workers()
        probability = self._success_probability(budget)
        n = min(int(math.ceil(remaining / probability)), self.max_round_runs, headroom)
        return RoundPlan(
            round_index=self._round,
            n_runs=max(1, n),
            budget=budget,
            workers=self._workers,
            note=self._schedule,
        )


def make_controller(name: str, params: Mapping[str, object] | None = None) -> Controller | None:
    """Instantiate a controller by name (``"off"`` → ``None``).

    ``params`` is the :meth:`Controller.params` mapping a report recorded,
    so replay reconstructs the exact controller that produced the log.
    """
    if name == "off":
        if params:
            raise ValueError("controller 'off' takes no parameters")
        return None
    factories = {"static": StaticController, "adaptive": AdaptiveController}
    try:
        factory = factories[name]
    except KeyError:
        raise ValueError(
            f"unknown controller {name!r}; expected one of {CONTROLLER_NAMES}"
        ) from None
    kwargs = dict(params or {})
    if "candidate_workers" in kwargs:
        kwargs["candidate_workers"] = tuple(kwargs["candidate_workers"])
    return factory(**kwargs)
