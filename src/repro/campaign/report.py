"""Campaign reports: stages, observation streams and the decision log.

A :class:`CampaignReport` is the complete, JSON-serialisable record of one
orchestrated campaign: per stage the declared constants (quota, budget,
seed root, flags) plus the full run stream *in index order*, and the
campaign-wide decision log.  The stream is stored with exactly the fields
controllers may consume (index, seed, iterations, solved, budget — plus
wall-clock runtimes for humans), which is what makes a saved report
replayable: the controller logic can be re-driven offline from the report
alone and must reproduce the decision log bit for bit.

A failed campaign (BUG-021: a required stage with zero solved
observations) still produces a report — ``failed_stage`` and
``failure_reason`` record where and why it stopped.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.campaign.controller import Decision, StageRunRecord
from repro.multiwalk.observations import RuntimeObservations

__all__ = ["CampaignReport", "StageReport"]

#: Format tag of the report JSON (bump on incompatible layout changes).
REPORT_FORMAT = "repro-campaign-report-v1"


@dataclasses.dataclass(frozen=True)
class StageReport:
    """One executed (or planned) stage with its full run stream.

    Exposes the same planning attributes as
    :class:`~repro.campaign.stages.StageSpec` (``quota``, ``budget``,
    ``base_seed``, ``supports_cutoff``), so a controller can be re-driven
    from a report during replay without rebuilding any solver.
    """

    key: str
    label: str
    kind: str
    quota: int
    base_seed: int
    budget: int
    emit_keys: tuple[str, ...]
    after: tuple[str, ...]
    required: bool
    supports_cutoff: bool
    stream: tuple[StageRunRecord, ...]
    #: The original batch object when the stage was satisfied wholesale
    #: (off/static controllers, precollected warm starts).  Not serialised;
    #: preserves object identity for in-process memo reuse.
    batch: RuntimeObservations | None = dataclasses.field(
        default=None, compare=False, repr=False
    )

    @property
    def n_issued(self) -> int:
        return len(self.stream)

    @property
    def n_solved(self) -> int:
        return sum(1 for record in self.stream if record.solved)

    @property
    def n_killed(self) -> int:
        """Censored runs issued below the full budget (killed-and-reseeded)."""
        return sum(
            1 for record in self.stream if not record.solved and record.budget < self.budget
        )

    def observations(self) -> RuntimeObservations | None:
        """The stage's batch, reassembled from the stream (``None`` if empty)."""
        if self.batch is not None:
            return self.batch
        if not self.stream:
            return None
        return RuntimeObservations(
            label=self.label,
            iterations=np.array([r.iterations for r in self.stream], dtype=float),
            runtimes=np.array([r.runtime_seconds for r in self.stream], dtype=float),
            solved=np.array([r.solved for r in self.stream], dtype=bool),
            seeds=np.array([r.seed for r in self.stream], dtype=np.int64),
        )

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "label": self.label,
            "kind": self.kind,
            "quota": self.quota,
            "base_seed": self.base_seed,
            "budget": self.budget,
            "emit_keys": list(self.emit_keys),
            "after": list(self.after),
            "required": self.required,
            "supports_cutoff": self.supports_cutoff,
            "n_issued": self.n_issued,
            "n_solved": self.n_solved,
            "n_killed": self.n_killed,
            "stream": [record.as_dict() for record in self.stream],
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StageReport":
        return cls(
            key=payload["key"],
            label=payload["label"],
            kind=payload["kind"],
            quota=int(payload["quota"]),
            base_seed=int(payload["base_seed"]),
            budget=int(payload["budget"]),
            emit_keys=tuple(payload["emit_keys"]),
            after=tuple(payload["after"]),
            required=bool(payload["required"]),
            supports_cutoff=bool(payload["supports_cutoff"]),
            stream=tuple(
                StageRunRecord(
                    index=int(r["index"]),
                    seed=int(r["seed"]),
                    iterations=int(r["iterations"]),
                    solved=bool(r["solved"]),
                    budget=int(r["budget"]),
                    runtime_seconds=float(r["runtime_seconds"]),
                )
                for r in payload["stream"]
            ),
        )


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """Everything one orchestrated campaign did, decided and observed."""

    controller: str
    controller_params: Mapping[str, object]
    stages: tuple[StageReport, ...]
    decisions: tuple[Decision, ...]
    failed_stage: str | None = None
    failure_reason: str | None = None
    dry_run: bool = False

    def stage(self, key: str) -> StageReport:
        for stage in self.stages:
            if stage.key == key:
                return stage
        raise KeyError(f"no stage {key!r} in this report")

    def observations(self) -> dict[str, RuntimeObservations]:
        """Campaign observation mapping: stage order × emit keys.

        Stages without runs (dry runs, stages after a failure) are
        omitted; one stage may serve several keys (e.g. the SAT stage
        doubling as the default policy row) without re-running anything.
        """
        out: dict[str, RuntimeObservations] = {}
        for stage in self.stages:
            batch = stage.observations()
            if batch is None:
                continue
            for key in stage.emit_keys:
                out[key] = batch
        return out

    def decision_dicts(self) -> list[dict]:
        return [decision.as_dict() for decision in self.decisions]

    def summary(self) -> dict:
        """Campaign-level counts for status displays (service API, logs).

        Deliberately tiny and JSON-ready: a status poll must not drag the
        full run streams over the wire — that is what the report endpoint
        is for.
        """
        return {
            "controller": self.controller,
            "dry_run": self.dry_run,
            "stages": len(self.stages),
            "issued": sum(stage.n_issued for stage in self.stages),
            "solved": sum(stage.n_solved for stage in self.stages),
            "decisions": len(self.decisions),
            "failed_stage": self.failed_stage,
            "failure_reason": self.failure_reason,
        }

    def as_dict(self) -> dict:
        return {
            "format": REPORT_FORMAT,
            "controller": self.controller,
            "controller_params": dict(self.controller_params),
            "dry_run": self.dry_run,
            "failed_stage": self.failed_stage,
            "failure_reason": self.failure_reason,
            "stages": [stage.as_dict() for stage in self.stages],
            "decisions": self.decision_dicts(),
        }

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.as_dict(), indent=2) + "\n")
        return path

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CampaignReport":
        if payload.get("format") != REPORT_FORMAT:
            raise ValueError(
                f"not a campaign report (format={payload.get('format')!r}, "
                f"expected {REPORT_FORMAT!r})"
            )
        return cls(
            controller=payload["controller"],
            controller_params=dict(payload["controller_params"]),
            stages=tuple(StageReport.from_dict(s) for s in payload["stages"]),
            decisions=tuple(
                Decision(
                    seq=int(d["seq"]),
                    stage=d["stage"],
                    kind=d["kind"],
                    detail=dict(d["detail"]),
                )
                for d in payload["decisions"]
            ),
            failed_stage=payload.get("failed_stage"),
            failure_reason=payload.get("failure_reason"),
            dry_run=bool(payload.get("dry_run", False)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "CampaignReport":
        return cls.from_dict(json.loads(Path(path).read_text()))
