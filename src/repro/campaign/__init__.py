"""Streaming campaign orchestration with the paper's predictor in the loop.

The experiment campaigns used to be plain loops over
:func:`repro.engine.collect_batch`.  This package turns them into an
orchestrated DAG of stages with a live controller:

* :mod:`repro.campaign.stages` — :class:`StageSpec` and DAG validation.
* :mod:`repro.campaign.controller` — the ``static`` (plan once) and
  ``adaptive`` (streaming censoring-aware fits, kill-and-reseed cutoffs,
  fixed-vs-Luby schedule, predictor-driven worker allocation) controllers
  and the deterministic decision log.
* :mod:`repro.campaign.orchestrator` — :func:`run_campaign` (with the
  BUG-021 zero-observation guardrail), offline :func:`replay_decisions`
  and the :func:`verify_report` determinism gate.
* :mod:`repro.campaign.report` — the JSON-serialisable campaign report:
  per-stage run streams plus the replayable decision log.

The package's bit-identity invariant: controller decisions are a pure
function of the observation stream — controllers see only
``(index, seed, iterations, solved, budget)`` in stable index order, never
wall clock — so a given ``base_seed`` produces an identical decision log
on every engine backend at any worker count, and every saved report
replays bit for bit through :func:`verify_report`.
"""

from repro.campaign.controller import (
    AdaptiveController,
    CONTROLLER_NAMES,
    Controller,
    Decision,
    DecisionLog,
    RoundPlan,
    StageRunRecord,
    StaticController,
    make_controller,
)
from repro.campaign.orchestrator import (
    CampaignError,
    ReplayError,
    replay_decisions,
    run_campaign,
    verify_report,
)
from repro.campaign.report import CampaignReport, StageReport
from repro.campaign.stages import (
    StageGraphError,
    StageSpec,
    resolve_stage_order,
    select_stages,
)

__all__ = [
    "AdaptiveController",
    "CONTROLLER_NAMES",
    "CampaignError",
    "CampaignReport",
    "Controller",
    "Decision",
    "DecisionLog",
    "ReplayError",
    "RoundPlan",
    "StageGraphError",
    "StageReport",
    "StageRunRecord",
    "StageSpec",
    "StaticController",
    "make_controller",
    "replay_decisions",
    "resolve_stage_order",
    "run_campaign",
    "select_stages",
    "verify_report",
]
