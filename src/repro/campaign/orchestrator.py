"""The streaming campaign orchestrator.

:func:`run_campaign` executes a validated stage DAG on any engine backend
under one of three controllers:

* ``off`` — each stage is one classic :func:`repro.engine.collect_batch`
  call (same solver, seeds, label and disk cache as the plain collectors),
  so observations and summaries are byte-identical to the pre-orchestrator
  campaign command.
* ``static`` — the same runs, planned and recorded: one full-budget round
  of exactly the stage quota, with the plan in the decision log.
* ``adaptive`` — rounds planned live by
  :class:`repro.campaign.controller.AdaptiveController` from streaming
  censoring-aware fits: reduced-cutoff (kill-and-reseed) rounds, a
  fixed-vs-Luby cutoff schedule and predictor-driven worker allocation.

Two invariants hold regardless of controller:

* **BUG-021 guardrail** — a *required* stage whose executed runs contain
  zero solved observations hard-fails the campaign: the failure and its
  reason are appended to the decision log, recorded in the report
  (``failed_stage`` / ``failure_reason``) and surfaced as
  :class:`CampaignError` carrying that report.
* **Deterministic decisions** — controllers consume completed runs in
  stable index order (the orchestrator reassembles each round before
  feeding it), and only their iteration counts and solved flags.  The
  decision log is therefore a pure function of ``base_seed``, identical
  across runs, backends and worker counts — and :func:`replay_decisions`
  re-derives it offline from a saved report, which :func:`verify_report`
  turns into a determinism gate.
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.campaign.controller import (
    Controller,
    Decision,
    DecisionLog,
    RoundPlan,
    StageRunRecord,
    make_controller,
)
from repro.campaign.report import CampaignReport, StageReport
from repro.campaign.stages import StageSpec, resolve_stage_order
from repro.engine.backends import BatchExecutor
from repro.engine.cache import ObservationCache
from repro.engine.core import collect_batch, iter_runs
from repro.engine.progress import BatchProgress, ProgressCallback
from repro.engine.seeding import spawn_seeds
from repro.multiwalk.observations import RuntimeObservations
from repro.solvers.base import RunResult

__all__ = ["CampaignError", "ReplayError", "replay_decisions", "run_campaign", "verify_report"]


class CampaignError(RuntimeError):
    """A campaign hard-failed; ``report`` records how far it got and why."""

    def __init__(self, message: str, report: CampaignReport) -> None:
        super().__init__(message)
        self.report = report


class ReplayError(RuntimeError):
    """A saved report's decision log could not be reproduced from its stream."""


#: Backends whose worker count the controller's allocation decision can set.
_ELASTIC_BACKENDS = ("thread", "process")


def _seed_head(stage, n: int = 4) -> list[int]:
    """First few seeds of a stage's stream (prefix-stable, so independent
    of how far the stream is eventually extended)."""
    return [int(seed) for seed in spawn_seeds(stage.base_seed, min(n, stage.quota))]


def _log_dry_run_plan(log: DecisionLog, stage, controller_name: str) -> None:
    """The resolved static plan of one stage, recorded without executing."""
    log.append(
        stage.key,
        "dry-run-plan",
        controller=controller_name,
        quota=stage.quota,
        budget=stage.budget,
        base_seed=stage.base_seed,
        after=list(stage.after),
        emit_keys=list(stage.emit_keys),
        required=bool(stage.required),
        seed_head=_seed_head(stage),
        cutoff=stage.budget,
        schedule="fixed",
        rounds=1,
    )


def _drive_stage(
    stage,
    controller: Controller,
    log: DecisionLog,
    fetch_round: Callable[[RoundPlan, int], Sequence[StageRunRecord]],
) -> list[StageRunRecord]:
    """Alternate plan/observe until the controller is done.

    The single control loop shared by live execution and offline replay:
    ``fetch_round(plan, issued)`` either runs the planned round on the
    engine or slices it out of a saved stream.  Every completed round is
    fed to the controller in index order and summarised as a ``round``
    decision, so the log documents exactly what was issued, killed and
    solved.
    """
    controller.begin_stage(stage, log)
    records: list[StageRunRecord] = []
    while (plan := controller.plan_round()) is not None:
        chunk = list(fetch_round(plan, len(records)))
        for record in chunk:
            controller.observe(record)
        solved = sum(1 for r in chunk if r.solved)
        killed = sum(1 for r in chunk if not r.solved and r.budget < stage.budget)
        log.append(
            stage.key,
            "round",
            round=plan.round_index,
            n_runs=plan.n_runs,
            budget=plan.budget,
            workers=plan.workers,
            note=plan.note,
            solved=solved,
            killed=killed,
            censored=len(chunk) - solved - killed,
        )
        records.extend(chunk)
    return records


def _finish_stage(
    log: DecisionLog, stage, records: Sequence[StageRunRecord], counted: int
) -> str | None:
    """Append the stage epilogue decisions; return the failure reason, if any.

    The BUG-021 guardrail lives here: a required stage whose runs contain
    zero solved observations fails the campaign, controller or not.
    """
    solved = sum(1 for r in records if r.solved)
    if stage.required and solved == 0:
        reason = (
            f"required stage {stage.key!r} yielded zero solved observations "
            f"in {len(records)} runs (all censored at their budgets)"
        )
        log.append(stage.key, "stage-failed", reason=reason, issued=len(records), solved=0)
        return reason
    if counted < stage.quota:
        log.append(
            stage.key,
            "stage-shortfall",
            counted=counted,
            quota=stage.quota,
            issued=len(records),
        )
    log.append(
        stage.key,
        "stage-complete",
        issued=len(records),
        solved=solved,
        counted=counted,
        quota=stage.quota,
    )
    return None


def _records_from_batch(batch: RuntimeObservations, budget: int) -> tuple[StageRunRecord, ...]:
    return tuple(
        StageRunRecord(
            index=i,
            seed=int(batch.seeds[i]),
            iterations=int(batch.iterations[i]),
            solved=bool(batch.solved[i]),
            budget=budget,
            runtime_seconds=float(batch.runtimes[i]),
        )
        for i in range(batch.n_runs)
    )


def _stage_report(
    stage: StageSpec,
    records: Sequence[StageRunRecord],
    batch: RuntimeObservations | None = None,
) -> StageReport:
    return StageReport(
        batch=batch,
        key=stage.key,
        label=stage.label,
        kind=stage.kind,
        quota=stage.quota,
        base_seed=stage.base_seed,
        budget=stage.budget,
        emit_keys=stage.emit_keys,
        after=stage.after,
        required=stage.required,
        supports_cutoff=stage.supports_cutoff,
        stream=tuple(records),
    )


def run_campaign(
    stages: Sequence[StageSpec],
    *,
    controller: str | Controller | None = "off",
    backend: str | BatchExecutor | None = None,
    workers: int | None = None,
    progress: ProgressCallback | None = None,
    cache: ObservationCache | str | Path | None = None,
    dry_run: bool = False,
    enforce_required: bool = True,
    precollected: Mapping[str, RuntimeObservations] | None = None,
    decision_listener: Callable[[Decision], None] | None = None,
) -> CampaignReport:
    """Execute (or, with ``dry_run``, only plan) a campaign stage DAG.

    Parameters
    ----------
    stages:
        Stage specs; validated and topologically ordered before anything
        runs (declaration order wherever dependencies allow).
    controller:
        ``"off"`` (default, byte-identical to the plain collectors),
        ``"static"``, ``"adaptive"``, or a configured
        :class:`~repro.campaign.controller.Controller` instance.
    backend, workers, progress, cache:
        Engine plumbing, as for :func:`repro.engine.collect_batch`.  The
        disk cache serves the ``off`` controller only: controller-driven
        rounds are not classic fixed batches, so caching them under the
        batch content address would poison it.
    dry_run:
        Resolve the DAG, record every stage's static plan (seed blocks
        included) in the decision log and return — no solver runs, no
        cache touched.
    enforce_required:
        When false, required stages no longer hard-fail the campaign
        (the observation *collectors* use this: an all-censored batch is a
        valid answer for a table, only ``campaign`` invocations enforce
        BUG-021).
    precollected:
        Already-collected batches keyed by stage key; matching stages are
        reported from them instead of re-executing (the in-process memo
        path of the collectors).  Consulted by the ``off`` controller only.
    decision_listener:
        Optional callback receiving each decision as it is appended to the
        log (the campaign service streams decision events through it).
        Observational only: the campaign neither waits for nor consults it.

    Raises
    ------
    CampaignError
        BUG-021: a required stage yielded zero solved observations.  The
        exception carries the partial :class:`CampaignReport` (failed
        stage included) with ``failed_stage``/``failure_reason`` set.
    """
    order = resolve_stage_order(stages)
    if not enforce_required:
        order = [dataclasses.replace(stage, required=False) for stage in order]

    if isinstance(controller, Controller):
        prototype: Controller | None = controller
        controller_name = controller.name
    else:
        prototype = make_controller(controller if controller is not None else "off")
        controller_name = controller if controller is not None else "off"
    controller_params = {} if prototype is None else prototype.params()

    log = DecisionLog(listener=decision_listener)
    if dry_run:
        for stage in order:
            _log_dry_run_plan(log, stage, controller_name)
        return CampaignReport(
            controller=controller_name,
            controller_params=controller_params,
            stages=tuple(_stage_report(stage, ()) for stage in order),
            decisions=tuple(log.decisions),
            dry_run=True,
        )

    elastic = backend in _ELASTIC_BACKENDS
    stage_reports: list[StageReport] = []
    for stage in order:
        batch: RuntimeObservations | None = None
        if prototype is None:
            if precollected is not None and stage.key in precollected:
                batch = precollected[stage.key]
            else:
                batch = collect_batch(
                    stage.make_solver(stage.budget),
                    stage.quota,
                    base_seed=stage.base_seed,
                    label=stage.label,
                    backend=backend,
                    workers=workers,
                    progress=progress,
                    cache=cache,
                )
            records: Sequence[StageRunRecord] = _records_from_batch(batch, stage.budget)
            counted = len(records)
        else:
            start = time.perf_counter()

            def fetch_round(
                plan: RoundPlan, issued: int, stage=stage, start=start
            ) -> list[StageRunRecord]:
                seeds = spawn_seeds(stage.base_seed, issued + plan.n_runs)[issued:]
                solver = stage.make_solver(plan.budget)
                use_workers = (
                    plan.workers if elastic and plan.workers is not None else workers
                )
                results: list[RunResult | None] = [None] * plan.n_runs
                completed = 0
                for local, result in iter_runs(
                    solver, seeds, backend=backend, workers=use_workers
                ):
                    results[local] = result
                    completed += 1
                    if progress is not None:
                        progress(
                            BatchProgress(
                                index=issued + local,
                                completed=issued + completed,
                                total=issued + plan.n_runs,
                                result=result,
                                elapsed_seconds=time.perf_counter() - start,
                            )
                        )
                assert completed == plan.n_runs  # every backend delivers every run
                return [
                    StageRunRecord(
                        index=issued + offset,
                        seed=int(seeds[offset]),
                        iterations=int(result.iterations),
                        solved=bool(result.solved),
                        budget=plan.budget,
                        runtime_seconds=float(result.runtime_seconds),
                    )
                    for offset, result in enumerate(results)
                ]

            records = _drive_stage(stage, prototype, log, fetch_round)
            counted = prototype.counted

        failure = _finish_stage(log, stage, records, counted)
        stage_reports.append(_stage_report(stage, records, batch))
        if failure is not None:
            report = CampaignReport(
                controller=controller_name,
                controller_params=controller_params,
                stages=tuple(stage_reports),
                decisions=tuple(log.decisions),
                failed_stage=stage.key,
                failure_reason=failure,
            )
            raise CampaignError(failure, report)

    return CampaignReport(
        controller=controller_name,
        controller_params=controller_params,
        stages=tuple(stage_reports),
        decisions=tuple(log.decisions),
    )


def replay_decisions(report: CampaignReport) -> list[dict]:
    """Re-derive a report's decision log from its recorded run streams.

    No solver executes: a fresh controller (rebuilt from the recorded name
    and parameters) is driven by the saved per-stage streams through the
    same control loop as the live orchestrator.  Because controllers only
    ever see (index, iterations, solved, budget), the result must equal
    the recorded log — any divergence means the stream and the decisions
    disagree, surfaced as :class:`ReplayError`.
    """
    log = DecisionLog()
    if report.dry_run:
        for stage in report.stages:
            _log_dry_run_plan(log, stage, report.controller)
        return log.as_dicts()
    for stage in report.stages:
        records = list(stage.stream)
        if report.controller == "off":
            counted = len(records)
        else:
            controller = make_controller(report.controller, report.controller_params)

            def fetch_round(
                plan: RoundPlan, issued: int, stage=stage, records=records
            ) -> list[StageRunRecord]:
                chunk = records[issued : issued + plan.n_runs]
                if len(chunk) != plan.n_runs or any(
                    r.budget != plan.budget for r in chunk
                ):
                    raise ReplayError(
                        f"stage {stage.key!r}: recorded stream diverges from the "
                        f"replayed plan at run {issued} "
                        f"(planned {plan.n_runs} runs at budget {plan.budget})"
                    )
                return chunk

            driven = _drive_stage(stage, controller, log, fetch_round)
            if len(driven) != len(records):
                raise ReplayError(
                    f"stage {stage.key!r}: {len(records) - len(driven)} recorded "
                    "runs left over after the replayed controller finished"
                )
            counted = controller.counted
        _finish_stage(log, stage, records, counted)
    return log.as_dicts()


def verify_report(report: CampaignReport) -> int:
    """Determinism gate: assert the decision log replays bit for bit.

    Returns the number of verified decisions; raises :class:`ReplayError`
    naming the first diverging entry otherwise.
    """
    replayed = replay_decisions(report)
    recorded = report.decision_dicts()
    if replayed == recorded:
        return len(recorded)
    for position, (new, old) in enumerate(zip(replayed, recorded)):
        if new != old:
            raise ReplayError(
                f"decision {position} diverges on replay:\n"
                f"  recorded: {old}\n  replayed: {new}"
            )
    raise ReplayError(
        f"decision count diverges on replay: recorded {len(recorded)}, "
        f"replayed {len(replayed)}"
    )
