"""repro — Prediction of parallel speed-ups for Las Vegas algorithms.

This package is a from-scratch reproduction of

    C. Truchet, F. Richoux, P. Codognet,
    "Prediction of Parallel Speed-ups for Las Vegas Algorithms", ICPP 2013.

It provides four layers:

``repro.core``
    The paper's primary contribution: runtime-distribution models, the
    minimum-of-``n``-draws (first order statistic) transform describing an
    independent multi-walk execution, and speed-up prediction from either a
    fitted parametric distribution or raw empirical observations.

``repro.csp`` and ``repro.solvers``
    The substrate the paper evaluates on: a constraint-based local-search
    framework (error functions over permutation CSPs) with an Adaptive
    Search solver, plus additional Las Vegas algorithms (WalkSAT, randomized
    quicksort) used to demonstrate the generality of the model.

``repro.engine``
    The unified execution engine every layer launches runs through:
    pluggable serial/thread/process backends, deterministic seed streaming,
    first-finisher-wins cancellation, structured progress callbacks and an
    on-disk observation cache.  A given base seed yields bit-identical
    iteration counts on every backend.

``repro.multiwalk``
    The parallel-execution substrate: sequential batch runners, the
    simulated independent multi-walk (minimum over blocks of independent
    runs) and a real first-finisher-wins multi-walk executor, all routed
    through ``repro.engine``.

``repro.experiments``
    The harness regenerating every table and figure of the paper's
    evaluation section.

Quickstart
----------
>>> import numpy as np
>>> from repro import ShiftedExponential, predict_speedup_curve
>>> rng = np.random.default_rng(0)
>>> observations = ShiftedExponential(x0=100.0, lam=1e-3).sample(rng, 500)
>>> result = predict_speedup_curve(observations, cores=[16, 64, 256])
>>> result.family
'shifted_exponential'
"""

from __future__ import annotations

from repro.core.distributions import (
    EmpiricalDistribution,
    GammaRuntime,
    LogNormalRuntime,
    ParetoRuntime,
    RuntimeDistribution,
    ShiftedExponential,
    TruncatedGaussian,
    UniformRuntime,
    WeibullRuntime,
    distribution_registry,
)
from repro.core.minimum import MinDistribution
from repro.core.prediction import (
    PredictionResult,
    predict_speedup_curve,
    predict_speedup_from_distribution,
)
from repro.core.speedup import SpeedupModel
from repro.core.fitting import FitResult, fit_distribution, select_best_fit
from repro.engine import collect_batch, run_race
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.simulate import simulate_multiwalk_speedups

__version__ = "1.0.0"

__all__ = [
    "EmpiricalDistribution",
    "FitResult",
    "GammaRuntime",
    "LogNormalRuntime",
    "MinDistribution",
    "ParetoRuntime",
    "PredictionResult",
    "RuntimeDistribution",
    "RuntimeObservations",
    "ShiftedExponential",
    "SpeedupModel",
    "TruncatedGaussian",
    "UniformRuntime",
    "WeibullRuntime",
    "collect_batch",
    "distribution_registry",
    "fit_distribution",
    "predict_speedup_curve",
    "predict_speedup_from_distribution",
    "run_race",
    "select_best_fit",
    "simulate_multiwalk_speedups",
    "__version__",
]
