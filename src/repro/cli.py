"""Command-line interface: ``repro-lasvegas`` / ``python -m repro.cli``.

Subcommands
-----------
``list``
    Show every reproducible table/figure with a one-line description.
``run <experiment> [...]``
    Run one or more experiments (``all`` runs everything) and print the
    rows/series the paper reports.
``predict --input FILE``
    Fit a distribution to newline-separated runtimes read from a file (or
    stdin) and print the predicted multi-walk speed-ups — the library's
    end-user workflow.
``campaign``
    Collect (and optionally persist) the sequential solver campaigns used by
    the solver-backed experiments.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from pathlib import Path

import numpy as np

from repro.core.prediction import predict_speedup_curve, predict_speedup_empirical
from repro.engine.core import BACKENDS
from repro.engine.progress import BatchProgress
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import CampaignSummary
from repro.experiments.registry import (
    EXPERIMENTS,
    OBSERVATION_KINDS,
    collect_observations_for,
    list_experiments,
    run_experiment,
)

__all__ = ["build_parser", "main"]


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    profiles = {
        "quick": ExperimentConfig.quick,
        "full": ExperimentConfig.full,
        "tiny": ExperimentConfig.tiny,
    }
    config = profiles[args.profile]()
    overrides = {}
    if getattr(args, "runs", None):
        overrides["n_sequential_runs"] = args.runs
    if getattr(args, "seed", None) is not None:
        overrides["base_seed"] = args.seed
    # dataclasses.replace keeps every other profile field (instance sizes,
    # SAT workload parameters, core counts) exactly as the profile set it.
    return dataclasses.replace(config, **overrides) if overrides else config


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by every run-collecting subcommand."""
    parser.add_argument(
        "--backend",
        choices=tuple(BACKENDS),
        default="serial",
        help="execution backend for solver campaigns (default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backends (default: one per CPU)",
    )
    parser.add_argument(
        "--cache",
        "--cache-dir",
        dest="cache_dir",
        type=str,
        default=None,
        help="directory of the on-disk observation cache (repeat campaigns are free)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lasvegas",
        description="Prediction of parallel speed-ups for Las Vegas algorithms (ICPP 2013 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the reproducible tables and figures")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table5 figure9) or 'all'",
    )
    run_parser.add_argument("--profile", choices=("tiny", "quick", "full"), default="quick")
    run_parser.add_argument("--runs", type=int, default=None, help="override sequential run count")
    run_parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    _add_engine_arguments(run_parser)

    predict_parser = subparsers.add_parser(
        "predict", help="predict multi-walk speed-ups from observed runtimes"
    )
    predict_parser.add_argument(
        "--input", type=str, default="-", help="file of newline-separated runtimes ('-' = stdin)"
    )
    predict_parser.add_argument(
        "--cores", type=int, nargs="+", default=[16, 32, 64, 128, 256], help="core counts to predict"
    )
    predict_parser.add_argument(
        "--family",
        type=str,
        default=None,
        help="force a distribution family (default: automatic selection)",
    )
    predict_parser.add_argument(
        "--empirical", action="store_true", help="use the nonparametric (empirical) predictor"
    )

    campaign_parser = subparsers.add_parser(
        "campaign", help="collect the sequential solver campaigns used by the experiments"
    )
    campaign_parser.add_argument("--profile", choices=("tiny", "quick", "full"), default="quick")
    campaign_parser.add_argument("--runs", type=int, default=None)
    campaign_parser.add_argument("--seed", type=int, default=None)
    campaign_parser.add_argument("--progress", action="store_true", help="print per-run progress")
    _add_engine_arguments(campaign_parser)

    return parser


def _command_list() -> int:
    for name, description in list_experiments():
        print(f"{name:<10s} {description}")
    return 0


def _validate_engine_args(args: argparse.Namespace) -> str | None:
    """Reject flag combinations the engine would refuse, with a CLI-style error."""
    if args.backend == "serial" and args.workers not in (None, 1):
        return "--workers requires a parallel backend; add --backend thread or --backend process"
    if args.workers is not None and args.workers < 1:
        return f"--workers must be >= 1, got {args.workers}"
    return None


def _command_run(args: argparse.Namespace) -> int:
    error = _validate_engine_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    # Collect each observation campaign at most once, with the engine flags.
    campaigns: dict[str, object] = {}
    for kind in OBSERVATION_KINDS:
        if any(EXPERIMENTS[n].observations == kind for n in names):
            campaigns[kind] = collect_observations_for(
                kind,
                config,
                cache_dir=args.cache_dir,
                backend=args.backend,
                workers=args.workers,
            )
    for name in names:
        kind = EXPERIMENTS[name].observations
        if kind is not None:
            result = run_experiment(name, config, observations=campaigns[kind])
        else:
            result = run_experiment(name, config)
        print(result.format())
        print()
    return 0


def _read_values(source: str) -> np.ndarray:
    if source == "-":
        text = sys.stdin.read()
    else:
        text = Path(source).read_text()
    values = [float(token) for token in text.split()]
    if not values:
        raise SystemExit("no runtime values found in the input")
    return np.asarray(values, dtype=float)


def _command_predict(args: argparse.Namespace) -> int:
    values = _read_values(args.input)
    if args.empirical:
        result = predict_speedup_empirical(values, args.cores)
    else:
        result = predict_speedup_curve(values, args.cores, family=args.family)
    print(result.summary())
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    error = _validate_engine_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    progress = None
    if args.progress:

        def progress(event: BatchProgress) -> None:
            status = "solved" if event.result.solved else "censored"
            print(
                f"  run {event.completed}/{event.total} ({event.fraction:.0%}) "
                f"{status} after {event.result.iterations} iterations",
                file=sys.stderr,
            )

    # Every observation kind rides the same engine/cache plumbing — one
    # campaign command warms every solver-backed experiment (CSP + SAT).
    observations: dict = {}
    for kind in OBSERVATION_KINDS:
        observations.update(
            collect_observations_for(
                kind,
                config,
                cache_dir=args.cache_dir,
                backend=args.backend,
                workers=args.workers,
                progress=progress,
            )
        )
    summary = CampaignSummary.from_observations(config, observations)
    for key, batch in observations.items():
        print(
            f"{batch.label:<12s} runs={summary.n_runs[key]:<5d} "
            f"success-rate={summary.success_rates[key]:.2%}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-lasvegas`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "predict":
        return _command_predict(args)
    if args.command == "campaign":
        return _command_campaign(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
