"""Command-line interface: ``repro-lasvegas`` / ``python -m repro.cli``.

Subcommands
-----------
``list``
    Show every reproducible table/figure with a one-line description.
``run <experiment> [...]``
    Run one or more experiments (``all`` runs everything) and print the
    rows/series the paper reports.
``predict --input FILE``
    Fit a distribution to newline-separated runtimes read from a file (or
    stdin) and print the predicted multi-walk speed-ups — the library's
    end-user workflow.
``campaign``
    Collect (and optionally persist) the sequential solver campaigns used by
    the solver-backed experiments.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.core.prediction import predict_speedup_curve, predict_speedup_empirical
from repro.experiments.config import ExperimentConfig
from repro.experiments.data import CampaignSummary, collect_benchmark_observations
from repro.experiments.registry import EXPERIMENTS, list_experiments, run_experiment

__all__ = ["build_parser", "main"]


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    profiles = {
        "quick": ExperimentConfig.quick,
        "full": ExperimentConfig.full,
        "tiny": ExperimentConfig.tiny,
    }
    config = profiles[args.profile]()
    if getattr(args, "runs", None):
        config = ExperimentConfig(
            magic_square_n=config.magic_square_n,
            all_interval_n=config.all_interval_n,
            costas_n=config.costas_n,
            n_sequential_runs=args.runs,
            n_parallel_runs=config.n_parallel_runs,
            cores=config.cores,
            extended_cores=config.extended_cores,
            max_iterations=config.max_iterations,
            base_seed=config.base_seed if args.seed is None else args.seed,
        )
    elif getattr(args, "seed", None) is not None:
        config = ExperimentConfig(
            magic_square_n=config.magic_square_n,
            all_interval_n=config.all_interval_n,
            costas_n=config.costas_n,
            n_sequential_runs=config.n_sequential_runs,
            n_parallel_runs=config.n_parallel_runs,
            cores=config.cores,
            extended_cores=config.extended_cores,
            max_iterations=config.max_iterations,
            base_seed=args.seed,
        )
    return config


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lasvegas",
        description="Prediction of parallel speed-ups for Las Vegas algorithms (ICPP 2013 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the reproducible tables and figures")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table5 figure9) or 'all'",
    )
    run_parser.add_argument("--profile", choices=("tiny", "quick", "full"), default="quick")
    run_parser.add_argument("--runs", type=int, default=None, help="override sequential run count")
    run_parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    run_parser.add_argument("--cache-dir", type=str, default=None, help="persist solver campaigns")

    predict_parser = subparsers.add_parser(
        "predict", help="predict multi-walk speed-ups from observed runtimes"
    )
    predict_parser.add_argument(
        "--input", type=str, default="-", help="file of newline-separated runtimes ('-' = stdin)"
    )
    predict_parser.add_argument(
        "--cores", type=int, nargs="+", default=[16, 32, 64, 128, 256], help="core counts to predict"
    )
    predict_parser.add_argument(
        "--family",
        type=str,
        default=None,
        help="force a distribution family (default: automatic selection)",
    )
    predict_parser.add_argument(
        "--empirical", action="store_true", help="use the nonparametric (empirical) predictor"
    )

    campaign_parser = subparsers.add_parser(
        "campaign", help="collect the sequential solver campaigns used by the experiments"
    )
    campaign_parser.add_argument("--profile", choices=("tiny", "quick", "full"), default="quick")
    campaign_parser.add_argument("--runs", type=int, default=None)
    campaign_parser.add_argument("--seed", type=int, default=None)
    campaign_parser.add_argument("--cache-dir", type=str, default=None)

    return parser


def _command_list() -> int:
    for name, description in list_experiments():
        print(f"{name:<10s} {description}")
    return 0


def _command_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    observations = None
    if any(EXPERIMENTS[n][1] for n in names):
        observations = collect_benchmark_observations(config, cache_dir=args.cache_dir)
    for name in names:
        needs_observations = EXPERIMENTS[name][1]
        if needs_observations:
            result = run_experiment(name, config, observations=observations)
        else:
            result = run_experiment(name, config)
        print(result.format())
        print()
    return 0


def _read_values(source: str) -> np.ndarray:
    if source == "-":
        text = sys.stdin.read()
    else:
        text = Path(source).read_text()
    values = [float(token) for token in text.split()]
    if not values:
        raise SystemExit("no runtime values found in the input")
    return np.asarray(values, dtype=float)


def _command_predict(args: argparse.Namespace) -> int:
    values = _read_values(args.input)
    if args.empirical:
        result = predict_speedup_empirical(values, args.cores)
    else:
        result = predict_speedup_curve(values, args.cores, family=args.family)
    print(result.summary())
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    observations = collect_benchmark_observations(config, cache_dir=args.cache_dir)
    summary = CampaignSummary.from_observations(config, observations)
    for key, batch in observations.items():
        print(
            f"{batch.label:<12s} runs={summary.n_runs[key]:<5d} "
            f"success-rate={summary.success_rates[key]:.2%}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-lasvegas`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "predict":
        return _command_predict(args)
    if args.command == "campaign":
        return _command_campaign(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
