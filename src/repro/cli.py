"""Command-line interface: ``repro-lasvegas`` / ``python -m repro.cli``.

Subcommands
-----------
``list``
    Show every reproducible table/figure with a one-line description.
``run <experiment> [...]``
    Run one or more experiments (``all`` runs everything) and print the
    rows/series the paper reports.
``predict --input FILE``
    Fit a distribution to newline-separated runtimes read from a file (or
    stdin) and print the predicted multi-walk speed-ups — the library's
    end-user workflow.
``campaign``
    Run the experiment campaigns through the streaming orchestrator.  The
    default ``--controller off`` collects exactly the classic batches
    (byte-identical observations and summary); ``--controller static``
    additionally records the plan, and ``--controller adaptive`` re-plans
    every round live (kill-and-reseed cutoffs, fixed-vs-Luby schedule,
    predictor-driven worker allocation).  ``--dry-run`` prints the resolved
    stage DAG and plan without executing; ``--report FILE`` saves the full
    campaign report (run streams + decision log); ``--replay FILE``
    re-derives a saved report's decision log offline and verifies it
    matches bit for bit.  With ``--backend distributed`` the process acts
    as the coordinator (``--coordinator HOST:PORT`` or ``--job-dir DIR``)
    and the runs execute on connected workers.
``worker``
    Join a distributed campaign: connect to a coordinator (``--connect``) or
    watch a job directory (``--job-dir``), pull work units, run them on a
    local backend, and stream results back until the coordinator shuts down.
    ``--token`` authenticates against a coordinator started with a worker
    token.
``serve``
    Run the long-lived campaign service: an HTTP/JSON API (submit, status,
    live event streaming, report fetch, cancel) in front of a bounded job
    queue, a multi-tenant observation cache and any engine backend —
    including ``--backend distributed``, where the service doubles as the
    coordinator for an authenticated worker fleet (``--worker-token``).
``recipe``
    Workload recipes (see ``docs/recipes.md``): ``recipe profile`` refits a
    saved campaign report into a recipe, ``recipe validate`` /
    ``recipe describe`` check and summarise recipe files, and
    ``recipe generate`` deterministically expands a recipe into a synthetic
    campaign at any ``--scale`` — printing the JSON plan by default,
    writing a service submission with ``--submission``, or executing the
    campaign with ``--run`` on any backend/controller.
"""

from __future__ import annotations

import argparse
import dataclasses
import signal
import sys
from pathlib import Path

import numpy as np

from repro.campaign import (
    CONTROLLER_NAMES,
    CampaignError,
    CampaignReport,
    ReplayError,
    run_campaign,
    select_stages,
    verify_report,
)
from repro.core.prediction import predict_speedup_curve, predict_speedup_empirical
from repro.engine.backends import BatchExecutor
from repro.engine.core import BACKENDS, resolve_backend
from repro.engine.distributed import DistributedBackend, ProtocolError, run_worker
from repro.engine.lockstep import LockstepBackend
from repro.engine.progress import BatchProgress
from repro.experiments.config import SAT_FAMILIES, ExperimentConfig
from repro.experiments.data import (
    CampaignSummary,
    campaign_precollected,
    memoize_campaign,
)
from repro.experiments.stages import canonical_emit_order
from repro.sat.dimacs import bundled_instance_names
from repro.solvers.policies import POLICIES
from repro.experiments.registry import (
    EXPERIMENTS,
    OBSERVATION_KINDS,
    campaign_stages_for,
    collect_observations_for,
    list_experiments,
    run_experiment,
)

__all__ = ["build_parser", "main"]


#: Profile names accepted by every campaign-running subcommand.
PROFILES: tuple[str, ...] = ("tiny", "quick", "medium", "full")


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    profiles = {
        "quick": ExperimentConfig.quick,
        "medium": ExperimentConfig.medium,
        "full": ExperimentConfig.full,
        "tiny": ExperimentConfig.tiny,
    }
    config = profiles[args.profile]()
    overrides = {}
    if getattr(args, "runs", None):
        overrides["n_sequential_runs"] = args.runs
    if getattr(args, "seed", None) is not None:
        overrides["base_seed"] = args.seed
    if getattr(args, "sat_family", None) is not None:
        overrides["sat_family"] = args.sat_family
    if getattr(args, "sat_policy", None) is not None:
        overrides["sat_policy"] = args.sat_policy
    if getattr(args, "sat_dimacs", None) is not None:
        overrides["sat_dimacs"] = args.sat_dimacs
    if getattr(args, "max_iterations", None) is not None:
        overrides["max_iterations"] = args.max_iterations
    # dataclasses.replace keeps every other profile field (instance sizes,
    # SAT workload parameters, core counts) exactly as the profile set it.
    return dataclasses.replace(config, **overrides) if overrides else config


def _add_sat_workload_arguments(parser: argparse.ArgumentParser) -> None:
    """SAT-workload flags shared by the ``run`` and ``campaign`` subcommands."""
    parser.add_argument(
        "--sat-family",
        choices=SAT_FAMILIES,
        default=None,
        help="SAT instance family: planted (satisfiable by construction, default), "
        "uniform (ratio-controlled draw, censoring-heavy near 4.27), or "
        "dimacs (a bundled DIMACS file, see --sat-dimacs)",
    )
    parser.add_argument(
        "--sat-policy",
        choices=POLICIES,
        default=None,
        help="WalkSAT flip policy of the SAT workload (default: walksat/SKC)",
    )
    parser.add_argument(
        "--sat-dimacs",
        choices=bundled_instance_names(),
        default=None,
        metavar="NAME",
        help="bundled DIMACS instance used with --sat-family dimacs "
        f"(one of: {', '.join(bundled_instance_names())})",
    )


def _add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """Execution-engine flags shared by every run-collecting subcommand."""
    parser.add_argument(
        "--backend",
        choices=tuple(BACKENDS),
        default="serial",
        help="execution backend for solver campaigns (default: serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process backends (default: one per CPU)",
    )
    parser.add_argument(
        "--lockstep-width",
        type=int,
        default=None,
        metavar="K",
        help="with --backend lockstep: walks per vectorised kernel call "
        "(default: each whole seed-block as one call)",
    )
    parser.add_argument(
        "--cache",
        "--cache-dir",
        dest="cache_dir",
        type=str,
        default=None,
        help="directory of the on-disk observation cache (repeat campaigns are free)",
    )
    parser.add_argument(
        "--coordinator",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="with --backend distributed: bind the coordinator socket here "
        "and serve work units to connected 'worker' processes",
    )
    parser.add_argument(
        "--job-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="with --backend distributed: use a shared job directory instead "
        "of a socket (for queue/HPC settings)",
    )
    parser.add_argument(
        "--unit-size",
        type=int,
        default=None,
        help="runs per distributed work unit (the work-stealing granule, default: 4)",
    )
    parser.add_argument(
        "--batch-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="with --backend distributed: fail if no unit completes for this long "
        "(default: wait forever)",
    )
    parser.add_argument(
        "--worker-token",
        type=str,
        default=None,
        metavar="TOKEN",
        help="with --backend distributed --coordinator: shared secret workers "
        "must present in their handshake (unauthenticated workers are refused)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lasvegas",
        description="Prediction of parallel speed-ups for Las Vegas algorithms (ICPP 2013 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the reproducible tables and figures")

    run_parser = subparsers.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (e.g. table5 figure9) or 'all'",
    )
    run_parser.add_argument("--profile", choices=PROFILES, default="quick")
    run_parser.add_argument("--runs", type=int, default=None, help="override sequential run count")
    run_parser.add_argument("--seed", type=int, default=None, help="override the base seed")
    _add_sat_workload_arguments(run_parser)
    _add_engine_arguments(run_parser)

    predict_parser = subparsers.add_parser(
        "predict", help="predict multi-walk speed-ups from observed runtimes"
    )
    predict_parser.add_argument(
        "--input", type=str, default="-", help="file of newline-separated runtimes ('-' = stdin)"
    )
    predict_parser.add_argument(
        "--cores", type=int, nargs="+", default=[16, 32, 64, 128, 256], help="core counts to predict"
    )
    predict_parser.add_argument(
        "--family",
        type=str,
        default=None,
        help="force a distribution family (default: automatic selection)",
    )
    predict_parser.add_argument(
        "--empirical", action="store_true", help="use the nonparametric (empirical) predictor"
    )

    campaign_parser = subparsers.add_parser(
        "campaign", help="collect the sequential solver campaigns used by the experiments"
    )
    campaign_parser.add_argument("--profile", choices=PROFILES, default="quick")
    campaign_parser.add_argument("--runs", type=int, default=None)
    campaign_parser.add_argument("--seed", type=int, default=None)
    campaign_parser.add_argument("--progress", action="store_true", help="print per-run progress")
    campaign_parser.add_argument(
        "--controller",
        choices=CONTROLLER_NAMES,
        default="off",
        help="campaign controller: off (classic batches, default), static "
        "(same runs, plan recorded) or adaptive (live re-planning from "
        "streaming censoring-aware fits)",
    )
    campaign_parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved stage DAG, per-stage seed blocks and the "
        "static plan without executing anything",
    )
    campaign_parser.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="FILE",
        help="write the campaign report (run streams + decision log) as JSON",
    )
    campaign_parser.add_argument(
        "--replay",
        type=str,
        default=None,
        metavar="FILE",
        help="replay a saved report's decision log offline and verify it "
        "matches bit for bit (no solver runs)",
    )
    campaign_parser.add_argument(
        "--stages",
        type=str,
        default=None,
        metavar="PATTERNS",
        help="comma-separated stage keys or globs to run (e.g. 'SAT' or "
        "'SAT/*,Costas'); dependencies are included automatically",
    )
    campaign_parser.add_argument(
        "--max-iterations",
        type=int,
        default=None,
        metavar="N",
        help="override the per-run iteration/flip budget (censoring threshold)",
    )
    _add_sat_workload_arguments(campaign_parser)
    _add_engine_arguments(campaign_parser)

    worker_parser = subparsers.add_parser(
        "worker", help="join a distributed campaign and execute its work units"
    )
    worker_parser.add_argument(
        "--connect",
        type=str,
        default=None,
        metavar="HOST:PORT",
        help="coordinator address to pull work units from",
    )
    worker_parser.add_argument(
        "--job-dir",
        type=str,
        default=None,
        metavar="DIR",
        help="shared job directory to pull work units from (instead of a socket)",
    )
    worker_parser.add_argument(
        "--backend",
        choices=("serial", "thread", "process"),
        default="serial",
        help="local backend each work unit runs on (default: serial; 'process' "
        "pays spawn-pool startup per unit, so pair it with a larger "
        "coordinator --unit-size)",
    )
    worker_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the local thread/process backend",
    )
    worker_parser.add_argument(
        "--cache",
        "--cache-dir",
        dest="cache_dir",
        type=str,
        default=None,
        help="shared observation-cache directory (unit results are reused across the fleet)",
    )
    worker_parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.2,
        help="seconds between polls while idle (default: 0.2)",
    )
    worker_parser.add_argument(
        "--connect-timeout",
        type=float,
        default=30.0,
        help="seconds to keep retrying the initial connection (default: 30)",
    )
    worker_parser.add_argument(
        "--max-units", type=int, default=None, help="exit after completing this many units"
    )
    worker_parser.add_argument(
        "--name", type=str, default=None, help="worker name announced to the coordinator"
    )
    worker_parser.add_argument(
        "--token",
        type=str,
        default=None,
        metavar="TOKEN",
        help="shared secret presented to the coordinator's handshake (required "
        "when the coordinator was started with --worker-token)",
    )
    worker_parser.add_argument(
        "--heartbeat-seconds",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="cadence of lease-refreshing heartbeats while a unit executes "
        "(socket mode; 0 disables, default: 5)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived campaign service (HTTP/JSON submit/stream/report API)",
    )
    serve_parser.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321, help="bind port (0 picks a free port; default: 8321)"
    )
    serve_parser.add_argument(
        "--token",
        type=str,
        default=None,
        metavar="TOKEN",
        help="shared API token clients must send as 'Authorization: Bearer ...' "
        "(default: no HTTP authentication; /healthz is always open)",
    )
    serve_parser.add_argument(
        "--max-queue",
        type=int,
        default=8,
        metavar="N",
        help="queued-job bound; a full queue answers 429 + Retry-After (default: 8)",
    )
    serve_parser.add_argument(
        "--retry-after",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="Retry-After hint sent with 429 responses (default: 5)",
    )
    serve_parser.add_argument(
        "--max-cache-bytes",
        type=int,
        default=None,
        metavar="BYTES",
        help="LRU byte bound of the multi-tenant observation store rooted at "
        "--cache (least-recently-used batches are evicted beyond it)",
    )
    serve_parser.add_argument(
        "--drain-seconds",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="on shutdown, let the running job (and distributed workers) finish "
        "for up to this long before cancelling (default: 10)",
    )
    _add_engine_arguments(serve_parser)

    recipe_parser = subparsers.add_parser(
        "recipe",
        help="profile campaign reports into workload recipes and generate "
        "synthetic campaigns from them (see docs/recipes.md)",
    )
    recipe_sub = recipe_parser.add_subparsers(dest="recipe_command", required=True)

    recipe_profile = recipe_sub.add_parser(
        "profile", help="refit a saved campaign report (--report FILE) into a recipe"
    )
    recipe_profile.add_argument("report", metavar="REPORT", help="campaign report JSON file")
    recipe_profile.add_argument(
        "--out", type=str, default=None, metavar="FILE", help="write the recipe here (default: stdout)"
    )
    recipe_profile.add_argument(
        "--name", type=str, required=True, help="recipe name (filename-safe slug)"
    )
    recipe_profile.add_argument(
        "--description", type=str, default="", help="one-line description stored in the recipe"
    )

    recipe_validate = recipe_sub.add_parser(
        "validate", help="strictly validate recipe files (or bundled recipe names)"
    )
    recipe_validate.add_argument(
        "recipes", nargs="+", metavar="RECIPE", help="recipe file paths or bundled recipe names"
    )

    recipe_describe = recipe_sub.add_parser(
        "describe", help="summarise a recipe's stages, fitted families and instance mix"
    )
    recipe_describe.add_argument(
        "recipe", metavar="RECIPE", help="recipe file path or bundled recipe name"
    )

    recipe_generate = recipe_sub.add_parser(
        "generate",
        help="deterministically expand a recipe into a synthetic campaign "
        "(prints the JSON plan; --run executes it)",
    )
    recipe_generate.add_argument(
        "recipe", metavar="RECIPE", help="recipe file path or bundled recipe name"
    )
    recipe_generate.add_argument(
        "--scale", type=int, default=1, metavar="N", help="replicas per recipe stage (default: 1)"
    )
    recipe_generate.add_argument(
        "--seed",
        type=int,
        default=None,
        help="re-root every seed stream and instance draw (default: the "
        "recipe's recorded seeds — at --scale 1 an exact replay)",
    )
    recipe_generate.add_argument(
        "--out", type=str, default=None, metavar="FILE", help="write the JSON plan here instead of stdout"
    )
    recipe_generate.add_argument(
        "--submission",
        type=str,
        default=None,
        metavar="FILE",
        help="also write a campaign-service submission body (POST it to /jobs)",
    )
    recipe_generate.add_argument(
        "--run", action="store_true", help="execute the generated campaign now"
    )
    recipe_generate.add_argument(
        "--controller",
        choices=CONTROLLER_NAMES,
        default="off",
        help="campaign controller used with --run / --submission (default: off)",
    )
    recipe_generate.add_argument(
        "--report",
        type=str,
        default=None,
        metavar="FILE",
        help="with --run: write the campaign report (profile it again to close the loop)",
    )
    _add_engine_arguments(recipe_generate)

    return parser


def _command_list() -> int:
    for name, description in list_experiments():
        print(f"{name:<10s} {description}")
    return 0


def _validate_engine_args(args: argparse.Namespace) -> str | None:
    """Reject flag combinations the engine would refuse, with a CLI-style error."""
    if args.backend == "serial" and args.workers not in (None, 1):
        return "--workers requires a parallel backend; add --backend thread or --backend process"
    if args.workers is not None and args.workers < 1:
        return f"--workers must be >= 1, got {args.workers}"
    if args.backend == "lockstep":
        if args.workers is not None:
            return (
                "--workers does not apply to --backend lockstep (it runs "
                "in-process); size the batch axis with --lockstep-width"
            )
        if args.lockstep_width is not None and args.lockstep_width < 1:
            return f"--lockstep-width must be >= 1, got {args.lockstep_width}"
    elif args.lockstep_width is not None:
        return "--lockstep-width requires --backend lockstep"
    if args.backend == "distributed":
        if args.workers is not None:
            return (
                "--workers does not apply to --backend distributed; worker count "
                "is however many 'worker' processes connect"
            )
        if (args.coordinator is None) == (args.job_dir is None):
            return "--backend distributed needs exactly one of --coordinator or --job-dir"
        if args.unit_size is not None and args.unit_size < 1:
            return f"--unit-size must be >= 1, got {args.unit_size}"
        if args.batch_timeout is not None and args.batch_timeout <= 0:
            return f"--batch-timeout must be positive, got {args.batch_timeout:g}"
        if args.worker_token is not None and args.coordinator is None:
            return (
                "--worker-token requires --coordinator (the job directory's "
                "trust boundary is its filesystem permissions)"
            )
    elif (
        args.coordinator is not None
        or args.job_dir is not None
        or args.unit_size is not None
        or args.batch_timeout is not None
        or args.worker_token is not None
    ):
        # Silently ignoring tuning flags would hide misconfiguration (e.g. a
        # user expecting --batch-timeout to bound a process-backend campaign).
        return (
            "--coordinator/--job-dir/--unit-size/--batch-timeout/--worker-token "
            "require --backend distributed"
        )
    return None


def _engine_backend(args: argparse.Namespace) -> str | BatchExecutor:
    """Build the backend spec passed to the engine from validated CLI flags.

    Distributed campaigns need one *configured instance* shared by every
    batch of the invocation, so the coordinator socket (or job directory)
    persists across batches and workers stay connected in between.
    """
    if args.backend == "lockstep" and args.lockstep_width is not None:
        return LockstepBackend(width=args.lockstep_width)
    if args.backend != "distributed":
        return args.backend
    return DistributedBackend(
        coordinator=args.coordinator,
        job_dir=args.job_dir,
        unit_size=args.unit_size if args.unit_size is not None else 4,
        batch_timeout=args.batch_timeout,
        auth_token=args.worker_token,
    )


def _command_run(args: argparse.Namespace) -> int:
    error = _validate_engine_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}", file=sys.stderr)
        return 2
    backend = _engine_backend(args)
    # Collect each observation campaign at most once, with the engine flags.
    campaigns: dict[str, object] = {}
    try:
        for kind in OBSERVATION_KINDS:
            if any(EXPERIMENTS[n].observations == kind for n in names):
                campaigns[kind] = collect_observations_for(
                    kind,
                    config,
                    cache_dir=args.cache_dir,
                    backend=backend,
                    workers=args.workers if isinstance(backend, str) else None,
                )
    finally:
        if isinstance(backend, DistributedBackend):
            backend.shutdown()  # lets connected workers exit cleanly
    for name in names:
        kind = EXPERIMENTS[name].observations
        if kind is not None:
            result = run_experiment(name, config, observations=campaigns[kind])
        else:
            result = run_experiment(name, config)
        print(result.format())
        print()
    return 0


def _read_values(source: str) -> np.ndarray:
    if source == "-":
        text = sys.stdin.read()
    else:
        text = Path(source).read_text()
    values = [float(token) for token in text.split()]
    if not values:
        raise SystemExit("no runtime values found in the input")
    return np.asarray(values, dtype=float)


def _command_predict(args: argparse.Namespace) -> int:
    values = _read_values(args.input)
    if args.empirical:
        result = predict_speedup_empirical(values, args.cores)
    else:
        result = predict_speedup_curve(values, args.cores, family=args.family)
    print(result.summary())
    return 0


def _print_dry_run(report: CampaignReport) -> None:
    """Render the dry-run plan: stage DAG, seed blocks and the static plan."""
    plans = [d for d in report.decision_dicts() if d["kind"] == "dry-run-plan"]
    print(f"dry run: {len(plans)} stages, controller={report.controller}")
    for entry in plans:
        detail = entry["detail"]
        after = ",".join(detail["after"]) if detail["after"] else "-"
        seeds = ",".join(str(seed) for seed in detail["seed_head"])
        print(
            f"{entry['stage']:<12s} quota={detail['quota']:<5d} "
            f"budget={detail['budget']:<8d} after={after} "
            f"emit={','.join(detail['emit_keys'])}"
        )
        print(
            f"{'':<12s} base_seed={detail['base_seed']} seeds[:4]={seeds} "
            f"schedule={detail['schedule']} cutoff={detail['cutoff']} "
            f"rounds={detail['rounds']}"
        )


def _command_campaign(args: argparse.Namespace) -> int:
    if args.replay is not None:
        try:
            report = CampaignReport.load(args.replay)
            verified = verify_report(report)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load report: {exc}", file=sys.stderr)
            return 2
        except ReplayError as exc:
            print(f"replay FAILED: {exc}", file=sys.stderr)
            return 1
        print(
            f"replay OK: {verified} decisions reproduced "
            f"(controller={report.controller}, {len(report.stages)} stages)"
        )
        return 0

    error = _validate_engine_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    config = _config_from_args(args)
    stages = campaign_stages_for(config)
    if args.stages is not None:
        try:
            stages = select_stages(stages, args.stages)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.dry_run:
        report = run_campaign(stages, controller=args.controller, dry_run=True)
        _print_dry_run(report)
        if args.report is not None:
            report.save(args.report)
        return 0

    progress = None
    if args.progress:

        def progress(event: BatchProgress) -> None:
            status = "solved" if event.result.solved else "censored"
            print(
                f"  run {event.completed}/{event.total} ({event.fraction:.0%}) "
                f"{status} after {event.result.iterations} iterations",
                file=sys.stderr,
            )

    backend = _engine_backend(args)
    try:
        report = run_campaign(
            stages,
            controller=args.controller,
            backend=backend,
            workers=args.workers if isinstance(backend, str) else None,
            progress=progress,
            cache=args.cache_dir,
            # Classic campaigns reuse batches the collectors already memoised
            # in this process; controllers plan their own run streams.
            precollected=campaign_precollected(config) if args.controller == "off" else None,
        )
    except CampaignError as exc:
        print(f"error: campaign failed: {exc}", file=sys.stderr)
        if args.report is not None:
            exc.report.save(args.report)
            print(f"partial report written to {args.report}", file=sys.stderr)
        return 1
    finally:
        if isinstance(backend, DistributedBackend):
            backend.shutdown()  # lets connected workers exit cleanly

    observations = report.observations()
    if args.controller == "off":
        # Seed the in-process memo so experiments run later in this process
        # (tests, notebooks) reuse the batches the campaign just collected.
        memoize_campaign(config, observations)
    else:
        print(
            f"controller={args.controller}: {len(report.decisions)} decisions "
            f"recorded across {len(report.stages)} stages",
            file=sys.stderr,
        )
    summary = CampaignSummary.from_observations(config, observations)
    for key in canonical_emit_order(stages):
        if key not in observations:
            continue
        batch = observations[key]
        print(
            f"{batch.label:<12s} runs={summary.n_runs[key]:<5d} "
            f"success-rate={summary.success_rates[key]:.2%}"
        )
    if args.report is not None:
        report.save(args.report)
    return 0


def _command_worker(args: argparse.Namespace) -> int:
    if (args.connect is None) == (args.job_dir is None):
        print("error: worker needs exactly one of --connect or --job-dir", file=sys.stderr)
        return 2
    if args.backend == "serial" and args.workers not in (None, 1):
        print("error: --workers requires --backend thread or --backend process", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.token is not None and args.connect is None:
        print("error: --token requires --connect (socket transport)", file=sys.stderr)
        return 2
    executor = resolve_backend(args.backend, args.workers)
    try:
        stats = run_worker(
            coordinator=args.connect,
            job_dir=args.job_dir,
            executor=executor,
            cache_dir=args.cache_dir,
            poll_interval=args.poll_interval,
            connect_timeout=args.connect_timeout,
            max_units=args.max_units,
            name=args.name,
            token=args.token,
            heartbeat_seconds=args.heartbeat_seconds,
        )
    except ProtocolError as exc:
        # Version mismatch or a refused handshake (e.g. bad --token): a
        # worker that cannot join must exit loudly, not crash-loop.
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(
        f"worker done: units={stats.units_completed} runs={stats.runs_completed} "
        f"cache-hits={stats.cache_hits}",
        file=sys.stderr,
    )
    return 0


def _load_recipe_arg(value: str):
    """Resolve a recipe CLI argument: a file path or a bundled recipe name."""
    from repro.recipes import CampaignRecipe, RecipeError, bundled_recipe_names, load_bundled_recipe

    path = Path(value)
    if path.exists():
        return CampaignRecipe.load(path)
    if value in bundled_recipe_names():
        return load_bundled_recipe(value)
    raise RecipeError(
        f"no recipe file {value!r} (bundled recipes: {', '.join(bundled_recipe_names())})"
    )


def _command_recipe(args: argparse.Namespace) -> int:
    import json

    from repro.recipes import (
        ProfileError,
        RecipeError,
        describe_campaign,
        generate_stages,
        generate_submission,
        profile_report,
    )

    if args.recipe_command == "profile":
        try:
            report = CampaignReport.load(args.report)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load report: {exc}", file=sys.stderr)
            return 2
        try:
            recipe = profile_report(report, name=args.name, description=args.description)
        except ProfileError as exc:
            print(f"error: cannot profile report: {exc}", file=sys.stderr)
            return 1
        if args.out is not None:
            recipe.save(args.out)
            print(
                f"recipe {recipe.name!r} written to {args.out} "
                f"({len(recipe.stages)} stages, "
                f"{recipe.source['n_observations']} observations profiled)",
                file=sys.stderr,
            )
        else:
            print(json.dumps(recipe.as_dict(), indent=2, sort_keys=True))
        return 0

    if args.recipe_command == "validate":
        failures = 0
        for value in args.recipes:
            try:
                recipe = _load_recipe_arg(value)
            except RecipeError as exc:
                print(f"{value}: INVALID: {exc}")
                failures += 1
                continue
            print(f"{value}: ok ({recipe.name!r}, {len(recipe.stages)} stages)")
        return 1 if failures else 0

    try:
        recipe = _load_recipe_arg(args.recipe)
    except RecipeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.recipe_command == "describe":
        print(f"recipe {recipe.name}: {recipe.description or '(no description)'}")
        for field, value in sorted(recipe.source.items()):
            print(f"  source.{field} = {value}")
        for stage in recipe.stages:
            instance = stage.instance
            if instance.workload == "csp":
                what = f"{instance.problem} size={instance.size}"
            elif instance.sat_family == "dimacs":
                what = f"dimacs {instance.dimacs} [{instance.policy}]"
            else:
                what = (
                    f"{instance.sat_family} {instance.k}-SAT "
                    f"{instance.n_variables}@{instance.clause_ratio:g} [{instance.policy}]"
                )
            params = ", ".join(
                f"{name}={value:.4g}" for name, value in sorted(stage.runtime.params.items())
            )
            after = ",".join(stage.after) if stage.after else "-"
            print(
                f"{stage.key:<14s} {what:<36s} {stage.runtime.family}({params}) "
                f"censoring={stage.censoring_rate:.0%} quota={stage.quota} "
                f"budget={stage.budget} after={after}"
            )
        return 0

    # recipe generate
    error = _validate_engine_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        plan = describe_campaign(recipe, scale=args.scale, base_seed=args.seed)
    except RecipeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    plan_text = json.dumps(plan, indent=2, sort_keys=True) + "\n"
    if args.out is not None:
        Path(args.out).write_text(plan_text)
        print(f"campaign plan written to {args.out}", file=sys.stderr)
    elif not args.run:
        sys.stdout.write(plan_text)
    if args.submission is not None:
        try:
            submission = generate_submission(
                recipe, scale=args.scale, base_seed=args.seed, controller=args.controller
            )
        except RecipeError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        Path(args.submission).write_text(json.dumps(submission, indent=2, sort_keys=True) + "\n")
        print(f"service submission written to {args.submission}", file=sys.stderr)
    if not args.run:
        return 0

    stages = generate_stages(recipe, scale=args.scale, base_seed=args.seed)
    backend = _engine_backend(args)
    try:
        report = run_campaign(
            stages,
            controller=args.controller,
            backend=backend,
            workers=args.workers if isinstance(backend, str) else None,
            cache=args.cache_dir,
        )
    except CampaignError as exc:
        print(f"error: generated campaign failed: {exc}", file=sys.stderr)
        if args.report is not None:
            exc.report.save(args.report)
            print(f"partial report written to {args.report}", file=sys.stderr)
        return 1
    finally:
        if isinstance(backend, DistributedBackend):
            backend.shutdown()  # lets connected workers exit cleanly
    for stage in report.stages:
        print(
            f"{stage.label:<20s} issued={stage.n_issued:<5d} solved={stage.n_solved:<5d} "
            f"killed={stage.n_killed}"
        )
    if args.report is not None:
        report.save(args.report)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    error = _validate_engine_args(args)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.max_queue < 1:
        print(f"error: --max-queue must be >= 1, got {args.max_queue}", file=sys.stderr)
        return 2
    if args.max_cache_bytes is not None and args.cache_dir is None:
        print("error: --max-cache-bytes requires --cache DIR", file=sys.stderr)
        return 2
    # Imported lazily: every other subcommand works without the service
    # package's HTTP machinery ever loading.
    from repro.service import CampaignServer, JobManager, TenantCacheStore

    store = None
    if args.cache_dir is not None:
        store = TenantCacheStore(args.cache_dir, max_bytes=args.max_cache_bytes)
    backend = _engine_backend(args)
    if isinstance(backend, DistributedBackend):
        # Bind the coordinator before announcing readiness so workers can
        # connect the moment the address is printed.
        coordinator_address = backend.start()
        print(f"coordinator listening on {coordinator_address}", file=sys.stderr, flush=True)
    manager = JobManager(
        backend=backend,
        workers=args.workers if isinstance(backend, str) else None,
        store=store,
        max_queue=args.max_queue,
        retry_after=args.retry_after,
    )
    server = CampaignServer(manager, host=args.host, port=args.port, token=args.token)
    auth = "token required" if args.token is not None else "no auth"
    print(
        f"campaign service listening on {server.url} ({auth}, queue<={args.max_queue})",
        file=sys.stderr,
        flush=True,
    )

    # SIGTERM (and SIGINT even when the process was started in the
    # background, where the shell leaves it SIG_IGN) must trigger the same
    # graceful drain as ^C at a terminal.
    def _graceful_exit(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _graceful_exit)
    signal.signal(signal.SIGINT, _graceful_exit)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down (draining)...", file=sys.stderr, flush=True)
    finally:
        server.stop(drain_seconds=args.drain_seconds)
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for the ``repro-lasvegas`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "list":
        return _command_list()
    if args.command == "run":
        return _command_run(args)
    if args.command == "predict":
        return _command_predict(args)
    if args.command == "campaign":
        return _command_campaign(args)
    if args.command == "worker":
        return _command_worker(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "recipe":
        return _command_recipe(args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
