"""Normalised histograms with fitted-density overlays (Figures 8, 10, 12).

The paper's per-problem figures show the histogram of observed iteration
counts (normalised to integrate to one) overlaid with the density of the
fitted distribution.  Since plotting libraries are unavailable offline, the
overlay is returned as plain arrays plus an ASCII rendering, which is what
the experiment harness prints.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["HistogramOverlay", "density_histogram", "histogram_with_fit"]


@dataclasses.dataclass(frozen=True)
class HistogramOverlay:
    """Histogram of observations plus a fitted density sampled at bin centres."""

    bin_edges: np.ndarray
    densities: np.ndarray
    fitted: np.ndarray | None

    @property
    def bin_centers(self) -> np.ndarray:
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    def total_mass(self) -> float:
        """Integral of the histogram (should be ~1 for a density histogram)."""
        widths = np.diff(self.bin_edges)
        return float(np.dot(self.densities, widths))

    def to_ascii(self, width: int = 60, height: int = 12) -> str:
        """Plain-text rendering: one row per bin, '#' bars, '*' marks the fit."""
        if self.densities.size == 0:
            return "(empty histogram)"
        step = max(1, self.densities.size // height)
        rows = []
        scale_source = [self.densities.max()]
        if self.fitted is not None and self.fitted.size:
            scale_source.append(float(np.nanmax(self.fitted)))
        scale = max(max(scale_source), 1e-300)
        for idx in range(0, self.densities.size, step):
            dens = float(self.densities[idx])
            bar = "#" * int(round(width * dens / scale))
            line = f"{self.bin_centers[idx]:>14.4g} |{bar:<{width}s}|"
            if self.fitted is not None:
                pos = int(round(width * float(self.fitted[idx]) / scale))
                pos = min(max(pos, 0), width - 1)
                line = line[: 17 + pos] + "*" + line[18 + pos :]
            rows.append(line)
        return "\n".join(rows)


def _bin_count(data: np.ndarray, bins: int | None) -> int:
    if bins is not None:
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        return bins
    # Freedman–Diaconis with a square-root fallback, capped for readability.
    iqr = float(np.subtract(*np.percentile(data, [75, 25])))
    span = float(data.max() - data.min())
    if iqr > 0.0 and span > 0.0:
        width = 2.0 * iqr / data.size ** (1.0 / 3.0)
        count = int(math.ceil(span / width))
    else:
        count = int(math.ceil(math.sqrt(data.size)))
    return min(max(count, 1), 200)


def density_histogram(
    observations: Sequence[float] | np.ndarray, bins: int | None = None
) -> HistogramOverlay:
    """Histogram normalised to unit area (no fitted overlay)."""
    data = np.asarray(observations, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("histogram needs at least one observation")
    densities, edges = np.histogram(data, bins=_bin_count(data, bins), density=True)
    return HistogramOverlay(bin_edges=edges, densities=densities, fitted=None)


def histogram_with_fit(
    observations: Sequence[float] | np.ndarray,
    distribution: RuntimeDistribution,
    bins: int | None = None,
) -> HistogramOverlay:
    """Histogram of the observations overlaid with a fitted density."""
    base = density_histogram(observations, bins)
    fitted = np.asarray(distribution.pdf(base.bin_centers), dtype=float)
    return HistogramOverlay(bin_edges=base.bin_edges, densities=base.densities, fitted=fitted)
