"""Time-to-target (TTT) plots.

Aiex, Resende and Ribeiro's TTT plots — cited by the paper as references
[2, 3] and the historical reason exponential runtime models are expected for
GRASP/local-search algorithms — display the empirical probability of having
found a solution as a function of elapsed time, overlaid with a fitted
shifted exponential.  A straight TTT plot in the exponential probability
scale is the visual signature of linear multi-walk scalability.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.core.distributions.exponential import ShiftedExponential
from repro.core.fitting.selection import fit_distribution

__all__ = ["TimeToTargetPlot", "time_to_target"]


@dataclasses.dataclass(frozen=True)
class TimeToTargetPlot:
    """Data backing a time-to-target plot."""

    sorted_times: np.ndarray
    empirical_probability: np.ndarray
    fitted: ShiftedExponential
    theoretical_probability: np.ndarray

    def max_deviation(self) -> float:
        """Largest gap between the empirical and fitted probabilities."""
        return float(np.max(np.abs(self.empirical_probability - self.theoretical_probability)))

    def to_ascii(self, width: int = 60, rows: int = 15) -> str:
        """Plain-text TTT plot ('#' empirical, '*' fitted exponential)."""
        n = self.sorted_times.size
        idx = np.unique(np.linspace(0, n - 1, num=min(rows, n)).astype(int))
        lines = []
        for i in idx:
            emp = int(round(width * self.empirical_probability[i]))
            fit = int(round(width * self.theoretical_probability[i]))
            bar = [" "] * (width + 1)
            bar[min(emp, width)] = "#"
            bar[min(fit, width)] = "*" if bar[min(fit, width)] == " " else "@"
            lines.append(f"{self.sorted_times[i]:>14.4g} |{''.join(bar)}|")
        return "\n".join(lines)


def time_to_target(
    runtimes: Sequence[float] | np.ndarray,
    *,
    shift_rule: str = "zero_if_negligible",
) -> TimeToTargetPlot:
    """Build a TTT plot from runtimes of independent runs reaching a target.

    The classical TTT methodology uses plotting positions
    ``p_i = (i - 0.5) / m`` for the ``i``-th sorted runtime; a shifted
    exponential is fitted with the library's standard estimator and sampled
    at the same abscissae.
    """
    data = np.sort(np.asarray(runtimes, dtype=float).ravel())
    if data.size < 2:
        raise ValueError("a TTT plot needs at least two runtimes")
    positions = (np.arange(1, data.size + 1, dtype=float) - 0.5) / data.size
    fit = fit_distribution(data, "shifted_exponential", shift_rule=shift_rule)
    assert isinstance(fit.distribution, ShiftedExponential)
    theoretical = np.asarray(fit.distribution.cdf(data), dtype=float)
    return TimeToTargetPlot(
        sorted_times=data,
        empirical_probability=positions,
        fitted=fit.distribution,
        theoretical_probability=theoretical,
    )
