"""Empirical cumulative distribution function utilities."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = ["empirical_cdf", "empirical_cdf_function"]


def empirical_cdf(observations: Sequence[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted_values, cumulative_probabilities)``.

    The probabilities are the right-continuous step heights ``i / m`` at the
    ``i``-th sorted observation — the convention used by the
    Kolmogorov–Smirnov machinery in :mod:`repro.core.fitting.ks`.
    """
    data = np.sort(np.asarray(observations, dtype=float).ravel())
    if data.size == 0:
        raise ValueError("empirical CDF needs at least one observation")
    probs = np.arange(1, data.size + 1, dtype=float) / data.size
    return data, probs


def empirical_cdf_function(
    observations: Sequence[float] | np.ndarray,
) -> Callable[[np.ndarray | float], np.ndarray | float]:
    """Return a vectorised callable evaluating the empirical CDF anywhere."""
    data = np.sort(np.asarray(observations, dtype=float).ravel())
    if data.size == 0:
        raise ValueError("empirical CDF needs at least one observation")
    m = data.size

    def cdf(t: np.ndarray | float) -> np.ndarray | float:
        t_arr = np.asarray(t, dtype=float)
        out = np.searchsorted(data, t_arr, side="right") / m
        return out if out.ndim else float(out)

    return cdf
