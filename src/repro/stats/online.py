"""Censoring-aware *streaming* fitters for live campaign control.

The batch pipeline fits runtime distributions after a campaign has fully
returned (:mod:`repro.core.fitting`, :mod:`repro.core.censoring`).  The
streaming campaign orchestrator (:mod:`repro.campaign`) instead observes
runs *as they finish* and must refresh its fitted model after every
observation at O(1) cost.  This module provides the incremental
counterparts, exact where a closed form exists:

* :class:`StreamingMoments` — Welford's online mean/variance (numerically
  stable; no running sum of squares).
* :class:`StreamingCensoredExponential` — the censored shifted-exponential
  MLE of :func:`repro.core.censoring.censored_exponential_fit`, maintained
  incrementally.  After any prefix of the stream its fit equals the batch
  fit of that prefix *exactly* (same shift rule, same exposure clamp), so
  online decisions and offline reports can never disagree about the model.
* :class:`StreamingLognormal` — running lognormal MLE over the *uncensored*
  observations (Welford on logs; the censored lognormal MLE has no closed
  form, so censored runs contribute to the censoring ratio only).

It is also the single home of the censored-exponential-MLE edge cases that
previously needed ad-hoc guards at every call site (all-censored batches,
single-observation batches): :func:`censored_mean_or_none` returns ``None``
instead of raising when no fit is identifiable, and every streaming class
degrades the same way through ``None``-valued properties.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.core.censoring import censored_exponential_fit
from repro.core.distributions.exponential import ShiftedExponential

__all__ = [
    "StreamingCensoredExponential",
    "StreamingLognormal",
    "StreamingMoments",
    "censored_mean_or_none",
]


def censored_mean_or_none(
    values: Sequence[float] | np.ndarray,
    censored: Sequence[bool] | np.ndarray,
) -> float | None:
    """Censoring-corrected mean, or ``None`` when no fit is identifiable.

    The single edge-case policy shared by every consumer of the censored
    exponential MLE (tables, the campaign controller, the CLI):

    * **No censored runs** — the naive mean is already unbiased; returns
      ``None`` so callers keep reporting the plain mean unchanged.
    * **All runs censored** — the rate is not identifiable
      (:func:`~repro.core.censoring.censored_exponential_fit` raises);
      returns ``None`` instead of propagating the error into formatting
      code.
    * **Anything in between** — the closed-form censored-MLE mean,
      including the single-uncensored-observation case (the exposure clamp
      keeps the fitted rate finite, so the mean degrades gracefully to
      roughly the lone observed value).
    """
    values = np.asarray(values, dtype=float).ravel()
    flags = np.asarray(censored, dtype=bool).ravel()
    if values.size == 0 or not flags.any():
        return None
    if flags.all():
        return None
    return censored_exponential_fit(values, flags).mean()


@dataclasses.dataclass
class StreamingMoments:
    """Welford's online algorithm for count / mean / variance / extrema.

    ``update`` is O(1) and numerically stable for long streams (no
    catastrophic cancellation between a running sum and a running sum of
    squares).  ``variance`` is the sample variance (``ddof=1``), ``None``
    below two observations.
    """

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def update(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def update_many(self, values: Sequence[float] | np.ndarray) -> None:
        for value in np.asarray(values, dtype=float).ravel():
            self.update(value)

    @property
    def variance(self) -> float | None:
        if self.count < 2:
            return None
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float | None:
        variance = self.variance
        return None if variance is None else math.sqrt(variance)


class StreamingCensoredExponential:
    """Incremental censored shifted-exponential MLE.

    Maintains exactly the statistics the closed-form batch MLE needs — the
    number and sum of uncensored events, the running minimum event (the
    paper's shift rule), and the multiset of censoring thresholds — so that
    after *any* prefix of the observation stream, :meth:`fit` returns the
    same :class:`~repro.core.distributions.exponential.ShiftedExponential`
    as :func:`repro.core.censoring.censored_exponential_fit` applied to
    that prefix.  Censoring thresholds are kept as distinct-value counts:
    campaigns use a handful of budgets (often exactly one), so the
    footprint stays O(#distinct budgets) while the exposure term
    ``sum(max(threshold - shift, 0))`` remains exact even when a new,
    smaller event lowers the shift retroactively.

    All-censored streams (and empty ones) expose ``fit()``/``mean`` as
    ``None`` — the not-identifiable edge case callers previously had to
    guard by hand.
    """

    def __init__(self) -> None:
        self.n_events = 0
        self.n_censored = 0
        self._event_sum = 0.0
        self._min_event = math.inf
        self._censored_counts: dict[float, int] = {}

    @property
    def count(self) -> int:
        return self.n_events + self.n_censored

    @property
    def censored_fraction(self) -> float | None:
        return None if self.count == 0 else self.n_censored / self.count

    def update(self, value: float, censored: bool) -> None:
        """Record one observation (``censored=True`` for budget-capped runs)."""
        value = float(value)
        if not math.isfinite(value) or value < 0:
            raise ValueError(f"observations must be finite and non-negative, got {value}")
        if censored:
            self.n_censored += 1
            self._censored_counts[value] = self._censored_counts.get(value, 0) + 1
        else:
            self.n_events += 1
            self._event_sum += value
            self._min_event = min(self._min_event, value)

    def fit(self) -> ShiftedExponential | None:
        """The batch-exact censored MLE of the stream so far (``None`` if
        not identifiable, i.e. no uncensored event yet)."""
        if self.n_events == 0:
            return None
        shift = self._min_event
        # Uncensored events all sit at or above the shift (it is their
        # minimum), so their clipped excess is the plain sum; censored
        # thresholds can fall below the shift and clip to zero exposure.
        exposure = self._event_sum - self.n_events * shift
        exposure += sum(
            max(threshold - shift, 0.0) * count
            for threshold, count in self._censored_counts.items()
        )
        exposure = max(exposure, 1e-12)  # same degenerate-sample clamp as the batch MLE
        return ShiftedExponential(x0=shift, lam=self.n_events / exposure)

    @property
    def mean(self) -> float | None:
        """Censoring-corrected mean runtime (``None`` until identifiable)."""
        fit = self.fit()
        return None if fit is None else fit.mean()


class StreamingLognormal:
    """Running lognormal MLE over the uncensored observations.

    The lognormal censored MLE has no closed form, so this fitter uses the
    events-only MLE (Welford moments of the log-values: ``mu`` is their
    mean, ``sigma`` their population standard deviation) and tracks the
    censored count separately — enough for the controller's fixed-vs-Luby
    restart decision, which only needs the *shape* (log-space dispersion)
    of the runtime distribution, not an unbiased scale.
    """

    def __init__(self) -> None:
        self._log_moments = StreamingMoments()
        self.n_censored = 0

    @property
    def n_events(self) -> int:
        return self._log_moments.count

    @property
    def count(self) -> int:
        return self.n_events + self.n_censored

    def update(self, value: float, censored: bool = False) -> None:
        if censored:
            self.n_censored += 1
            return
        value = float(value)
        if not value > 0:
            raise ValueError(f"lognormal observations must be positive, got {value}")
        self._log_moments.update(math.log(value))

    @property
    def mu(self) -> float | None:
        return self._log_moments.mean if self.n_events > 0 else None

    @property
    def sigma(self) -> float | None:
        """Population (MLE) standard deviation of the log-values."""
        if self.n_events < 2:
            return None
        # Welford's _m2 divided by n (not n-1) is the MLE variance.
        return math.sqrt(self._log_moments._m2 / self.n_events)

    @property
    def mean(self) -> float | None:
        """MLE mean ``exp(mu + sigma^2 / 2)`` (``None`` below two events)."""
        if self.mu is None or self.sigma is None:
            return None
        return math.exp(self.mu + 0.5 * self.sigma**2)
