"""Descriptive summaries of runtime observations (Tables 1 and 2).

The paper reports the minimum, mean, median and maximum of the sequential
runtimes and iteration counts, and highlights the dispersion ("a ratio of a
few thousands between the minimum and the maximum runtimes") as the
signature of a Las Vegas algorithm worth parallelising.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

__all__ = ["RuntimeSummary", "dispersion_ratio", "summarize"]


@dataclasses.dataclass(frozen=True)
class RuntimeSummary:
    """Min / mean / median / max summary of a batch of runtimes."""

    n_runs: int
    minimum: float
    mean: float
    median: float
    maximum: float
    std: float

    def as_row(self) -> tuple[float, float, float, float]:
        """The four columns the paper's Tables 1 and 2 report."""
        return (self.minimum, self.mean, self.median, self.maximum)

    def dispersion(self) -> float:
        """Max-over-min ratio (infinite when the minimum is zero)."""
        if self.minimum == 0.0:
            return float("inf")
        return self.maximum / self.minimum

    def format_row(self, label: str, precision: int = 1) -> str:
        """Render one table row the way the paper prints it."""
        cells = "  ".join(f"{value:>14,.{precision}f}" for value in self.as_row())
        return f"{label:<12s}  {cells}"


def summarize(observations: Sequence[float] | np.ndarray) -> RuntimeSummary:
    """Compute the Table 1 / Table 2 summary of a batch of observations."""
    data = np.asarray(observations, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("cannot summarise an empty batch of observations")
    if not np.all(np.isfinite(data)):
        raise ValueError("observations must be finite")
    return RuntimeSummary(
        n_runs=int(data.size),
        minimum=float(data.min()),
        mean=float(data.mean()),
        median=float(np.median(data)),
        maximum=float(data.max()),
        std=float(data.std(ddof=1)) if data.size > 1 else 0.0,
    )


def dispersion_ratio(observations: Sequence[float] | np.ndarray) -> float:
    """Max-over-min ratio of a batch of observations (paper, Section 5.4)."""
    return summarize(observations).dispersion()
