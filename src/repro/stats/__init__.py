"""Descriptive and nonparametric statistics for runtime observations.

Supports the evaluation section of the paper:

* :mod:`repro.stats.descriptive` — min / mean / median / max summaries
  (Tables 1 and 2) and dispersion ratios.
* :mod:`repro.stats.ecdf` — empirical CDF utilities.
* :mod:`repro.stats.histogram` — normalised histograms overlaid with fitted
  densities (Figures 8, 10, 12).
* :mod:`repro.stats.bootstrap` — bootstrap confidence intervals for means,
  speed-ups and fitted parameters.
* :mod:`repro.stats.ttt` — time-to-target plots (Aiex/Resende/Ribeiro),
  the diagnostic the paper cites as evidence for exponential runtimes.
* :mod:`repro.stats.online` — censoring-aware streaming fitters (Welford
  moments, incremental censored-exponential MLE, running lognormal MLE)
  used by the live campaign controller.
"""

from repro.stats.bootstrap import bootstrap_ci, bootstrap_speedup_ci
from repro.stats.descriptive import RuntimeSummary, dispersion_ratio, summarize
from repro.stats.ecdf import empirical_cdf, empirical_cdf_function
from repro.stats.online import (
    StreamingCensoredExponential,
    StreamingLognormal,
    StreamingMoments,
    censored_mean_or_none,
)
from repro.stats.histogram import HistogramOverlay, density_histogram, histogram_with_fit
from repro.stats.ttt import TimeToTargetPlot, time_to_target

__all__ = [
    "HistogramOverlay",
    "RuntimeSummary",
    "StreamingCensoredExponential",
    "StreamingLognormal",
    "StreamingMoments",
    "TimeToTargetPlot",
    "bootstrap_ci",
    "bootstrap_speedup_ci",
    "censored_mean_or_none",
    "density_histogram",
    "dispersion_ratio",
    "empirical_cdf",
    "empirical_cdf_function",
    "histogram_with_fit",
    "summarize",
    "time_to_target",
]
