"""Bootstrap confidence intervals for runtime statistics and speed-ups.

The paper reports point predictions only; for a production-quality library
we also quantify the uncertainty coming from the finite number of sequential
observations (the paper's Section 7 notes that "the number of observations
needed to properly approximate the sequential distribution probably depends
on the problem" — these intervals make that statement quantitative).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

import numpy as np

__all__ = ["BootstrapInterval", "bootstrap_ci", "bootstrap_speedup_ci"]


@dataclasses.dataclass(frozen=True)
class BootstrapInterval:
    """Percentile bootstrap interval for a statistic."""

    point: float
    lower: float
    upper: float
    confidence: float
    n_resamples: int

    def width(self) -> float:
        return self.upper - self.lower

    def contains(self, value: float) -> bool:
        return self.lower <= value <= self.upper


def bootstrap_ci(
    observations: Sequence[float] | np.ndarray,
    statistic: Callable[[np.ndarray], float],
    *,
    confidence: float = 0.95,
    n_resamples: int = 1000,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """Percentile bootstrap interval for an arbitrary statistic.

    Parameters
    ----------
    observations:
        Observed runtimes.
    statistic:
        Callable mapping an array of observations to a scalar.
    confidence:
        Two-sided confidence level in (0, 1).
    n_resamples:
        Number of bootstrap resamples.
    rng:
        Random generator; a fresh default generator is used when omitted.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    data = np.asarray(observations, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("bootstrap needs at least one observation")
    generator = rng if rng is not None else np.random.default_rng()
    point = float(statistic(data))
    estimates = np.empty(n_resamples, dtype=float)
    for i in range(n_resamples):
        resample = generator.choice(data, size=data.size, replace=True)
        estimates[i] = statistic(resample)
    alpha = 0.5 * (1.0 - confidence)
    lower, upper = np.quantile(estimates, [alpha, 1.0 - alpha])
    return BootstrapInterval(
        point=point,
        lower=float(lower),
        upper=float(upper),
        confidence=confidence,
        n_resamples=n_resamples,
    )


def bootstrap_speedup_ci(
    observations: Sequence[float] | np.ndarray,
    n_cores: int,
    *,
    confidence: float = 0.95,
    n_resamples: int = 500,
    rng: np.random.Generator | None = None,
) -> BootstrapInterval:
    """Bootstrap interval for the *nonparametric* multi-walk speed-up.

    Each resample is pushed through the empirical-minimum predictor
    (:class:`repro.core.distributions.empirical.EmpiricalDistribution`), so
    the interval reflects only sampling noise in the sequential observations
    — exactly the uncertainty a practitioner faces before running on a
    cluster.
    """
    from repro.core.distributions.empirical import EmpiricalDistribution

    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")

    def statistic(sample: np.ndarray) -> float:
        dist = EmpiricalDistribution(sample)
        return dist.speedup(n_cores)

    return bootstrap_ci(
        observations,
        statistic,
        confidence=confidence,
        n_resamples=n_resamples,
        rng=rng,
    )
