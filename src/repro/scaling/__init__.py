"""Instance-size extrapolation (the paper's proposed future work).

The conclusion of the paper sketches a method for predicting the speed-up of
a *large* instance without ever solving it sequentially: observe that, for a
given problem/algorithm pair, the runtime-distribution *shape* is stable
across instance sizes (all ALL-INTERVAL instances fit a shifted
exponential), learn how the distribution's parameters scale with the
instance size on *small* instances, extrapolate the parameters to the target
size, and apply the Section 3 model to the extrapolated distribution.

* :mod:`repro.scaling.laws` — power-law / log-linear parameter-scaling fits.
* :mod:`repro.scaling.study` — the end-to-end
  :class:`~repro.scaling.study.InstanceScalingStudy` driver: collect runs at
  several small sizes, check the family is stable, fit the scaling laws and
  produce an extrapolated speed-up prediction for a larger size.
"""

from repro.scaling.laws import PowerLawFit, fit_power_law
from repro.scaling.study import ExtrapolatedPrediction, InstanceScalingStudy, SizeObservation

__all__ = [
    "ExtrapolatedPrediction",
    "InstanceScalingStudy",
    "PowerLawFit",
    "SizeObservation",
    "fit_power_law",
]
