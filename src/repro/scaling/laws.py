"""Parameter-scaling laws across instance sizes.

Combinatorial-search costs typically grow polynomially or exponentially with
the instance size; on a log scale both look locally linear, so the library
fits power laws ``y = a * size^b`` by least squares in log-log space, which
is robust for the handful of sizes a scaling study can afford, and exposes
the fit quality so callers can tell when the extrapolation is trustworthy.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

__all__ = ["PowerLawFit", "fit_power_law"]


@dataclasses.dataclass(frozen=True)
class PowerLawFit:
    """A fitted power law ``y = coefficient * size ** exponent``."""

    coefficient: float
    exponent: float
    r_squared: float
    n_points: int

    def predict(self, size: float | np.ndarray) -> float | np.ndarray:
        """Evaluate the law at one or more sizes."""
        value = self.coefficient * np.asarray(size, dtype=float) ** self.exponent
        return value if np.ndim(value) else float(value)

    def is_reliable(self, threshold: float = 0.8) -> bool:
        """Whether the log-log fit explains most of the variance."""
        return self.n_points >= 3 and self.r_squared >= threshold


def fit_power_law(sizes: Sequence[float], values: Sequence[float]) -> PowerLawFit:
    """Least-squares power-law fit in log-log space.

    Non-positive values are not representable in log space; they are clamped
    to a tiny positive constant, which effectively treats them as "very
    small" rather than discarding the point (a shift estimated as 0 at one
    size should pull the extrapolated shift down, not vanish).
    """
    sizes = np.asarray(sizes, dtype=float).ravel()
    values = np.asarray(values, dtype=float).ravel()
    if sizes.size != values.size:
        raise ValueError("sizes and values must have the same length")
    if sizes.size < 2:
        raise ValueError("a power-law fit needs at least two sizes")
    if np.any(sizes <= 0):
        raise ValueError("sizes must be positive")
    tiny = max(float(values[values > 0].min()) * 1e-6, 1e-12) if np.any(values > 0) else 1e-12
    clipped = np.clip(values, tiny, None)

    log_x = np.log(sizes)
    log_y = np.log(clipped)
    exponent, log_coefficient = np.polyfit(log_x, log_y, deg=1)
    predicted = exponent * log_x + log_coefficient
    residual = float(np.sum((log_y - predicted) ** 2))
    total = float(np.sum((log_y - log_y.mean()) ** 2))
    # Constant data (total ~ 0 up to rounding) is a perfect fit by definition;
    # guard against 0/0 and rounding-noise ratios blowing the score up.
    if total <= 1e-18 * max(1.0, float(np.max(np.abs(log_y))) ** 2):
        r_squared = 1.0
    else:
        r_squared = max(0.0, 1.0 - residual / total)
    return PowerLawFit(
        coefficient=float(math.exp(log_coefficient)),
        exponent=float(exponent),
        r_squared=r_squared,
        n_points=int(sizes.size),
    )
