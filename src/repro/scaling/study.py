"""Instance-size scaling studies and extrapolated speed-up predictions.

Workflow (the paper's future-work proposal, Section 8):

1. solve several *small* instances of the same problem family many times
   sequentially;
2. check that one distribution family fits every size (the paper's
   preliminary observation for ALL-INTERVAL);
3. fit power laws describing how the shift ``x0`` and the mean excess
   ``E[Y] - x0`` grow with the instance size;
4. extrapolate those parameters to a larger, unsolved target size and apply
   the Section 3 model to the extrapolated distribution.

The study keeps the family's *shape* parameters (lognormal ``sigma``, gamma /
Weibull shape) fixed at their largest-studied-size values — precisely the
"shape is stable across sizes" hypothesis — and rescales location/scale from
the fitted laws.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.distributions import (
    GammaRuntime,
    LogNormalRuntime,
    ShiftedExponential,
    WeibullRuntime,
)
from repro.core.distributions.base import RuntimeDistribution
from repro.core.fitting import FitResult, fit_distribution, select_best_fit
from repro.core.speedup import SpeedupCurve, SpeedupModel
from repro.csp.permutation import PermutationProblem
from repro.multiwalk.observations import RuntimeObservations
from repro.multiwalk.runner import run_sequential_batch
from repro.scaling.laws import PowerLawFit, fit_power_law
from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.base import LasVegasAlgorithm

__all__ = ["ExtrapolatedPrediction", "InstanceScalingStudy", "SizeObservation"]


@dataclasses.dataclass(frozen=True)
class SizeObservation:
    """Sequential campaign and fitted distribution for one instance size."""

    size: int
    observations: RuntimeObservations
    fit: FitResult

    @property
    def mean_cost(self) -> float:
        return float(self.observations.values("iterations").mean())

    @property
    def shift(self) -> float:
        return float(self.fit.distribution.params().get("x0", 0.0))

    @property
    def mean_excess(self) -> float:
        return max(self.mean_cost - self.shift, np.finfo(float).tiny)


@dataclasses.dataclass(frozen=True)
class ExtrapolatedPrediction:
    """Speed-up prediction for a target size never solved directly."""

    target_size: int
    distribution: RuntimeDistribution
    family: str
    curve: SpeedupCurve
    limit: float
    shift_law: PowerLawFit
    mean_excess_law: PowerLawFit

    def speedup(self, n_cores: int) -> float:
        try:
            return self.curve.as_dict()[int(n_cores)]
        except KeyError:
            return SpeedupModel(self.distribution).speedup(int(n_cores))

    def summary(self) -> str:
        lines = [
            f"target size: {self.target_size}",
            f"family:      {self.family}",
            "shift law:   x0(size) ~ "
            f"{self.shift_law.coefficient:.4g} * size^{self.shift_law.exponent:.3f}"
            f"  (R2={self.shift_law.r_squared:.3f})",
            "mean excess: (E[Y]-x0)(size) ~ "
            f"{self.mean_excess_law.coefficient:.4g} * size^{self.mean_excess_law.exponent:.3f}"
            f"  (R2={self.mean_excess_law.r_squared:.3f})",
            f"limit:       {self.limit:.4g}",
            "cores   predicted speed-up",
        ]
        for cores, speedup in self.curve:
            lines.append(f"{cores:>5d}   {speedup:10.2f}")
        return "\n".join(lines)


def _rescale_distribution(
    fit: FitResult, new_shift: float, new_mean_excess: float
) -> RuntimeDistribution:
    """Rebuild a distribution of the fitted family with extrapolated location/scale.

    Shape parameters are preserved; the scale-like parameter is chosen so
    that the mean excess over the shift equals ``new_mean_excess``.
    """
    dist = fit.distribution
    new_shift = max(float(new_shift), 0.0)
    new_mean_excess = max(float(new_mean_excess), np.finfo(float).tiny)
    if isinstance(dist, ShiftedExponential):
        return ShiftedExponential(x0=new_shift, lam=1.0 / new_mean_excess)
    if isinstance(dist, LogNormalRuntime):
        sigma = dist.sigma
        mu = math.log(new_mean_excess) - 0.5 * sigma * sigma
        return LogNormalRuntime(mu=mu, sigma=sigma, x0=new_shift)
    if isinstance(dist, GammaRuntime):
        return GammaRuntime(shape=dist.shape, scale=new_mean_excess / dist.shape, x0=new_shift)
    if isinstance(dist, WeibullRuntime):
        scale = new_mean_excess / math.gamma(1.0 + 1.0 / dist.shape)
        return WeibullRuntime(shape=dist.shape, scale=scale, x0=new_shift)
    raise ValueError(
        f"instance-size extrapolation is not implemented for family {fit.family!r}"
    )


class InstanceScalingStudy:
    """Learn parameter-scaling laws on small instances, predict larger ones.

    Parameters
    ----------
    problem_factory:
        Callable mapping an instance size to a problem (e.g.
        ``AllIntervalProblem``).
    solver_factory:
        Callable mapping a problem to a Las Vegas algorithm; defaults to
        Adaptive Search with the given iteration budget.
    family:
        Distribution family to fit at every size; ``None`` selects the best
        family automatically at each size (and
        :meth:`family_is_stable` reports whether the same one wins
        everywhere).
    shift_rule:
        Shift-estimation rule passed to the fitting layer.
    n_runs:
        Sequential runs per size.
    max_iterations:
        Per-run iteration budget.
    base_seed:
        Root seed; each size derives its own stream.
    """

    def __init__(
        self,
        problem_factory: Callable[[int], PermutationProblem],
        *,
        solver_factory: Callable[[PermutationProblem], LasVegasAlgorithm] | None = None,
        family: str | None = "shifted_exponential",
        shift_rule: str = "zero_if_negligible",
        n_runs: int = 60,
        max_iterations: int = 200_000,
        base_seed: int = 0,
        backend: str | None = None,
        workers: int | None = None,
    ) -> None:
        if n_runs < 2:
            raise ValueError("a scaling study needs at least two runs per size")
        self.problem_factory = problem_factory
        self.solver_factory = solver_factory or (
            lambda problem: AdaptiveSearch(
                problem, AdaptiveSearchConfig(max_iterations=max_iterations)
            )
        )
        self.family = family
        self.shift_rule = shift_rule
        self.n_runs = int(n_runs)
        self.max_iterations = int(max_iterations)
        self.base_seed = int(base_seed)
        # Campaigns route through the execution engine; results are
        # backend-invariant, so this only affects wall-clock time.
        self.backend = backend
        self.workers = workers
        self.size_observations: list[SizeObservation] = []

    # ------------------------------------------------------------------
    def run(self, sizes: Sequence[int]) -> list[SizeObservation]:
        """Collect campaigns and fits for every requested instance size."""
        sizes = [int(s) for s in sizes]
        if len(sizes) < 2:
            raise ValueError("a scaling study needs at least two instance sizes")
        if len(set(sizes)) != len(sizes):
            raise ValueError("instance sizes must be distinct")
        results: list[SizeObservation] = []
        for index, size in enumerate(sorted(sizes)):
            problem = self.problem_factory(size)
            solver = self.solver_factory(problem)
            batch = run_sequential_batch(
                solver, self.n_runs, base_seed=self.base_seed + 1000 * index,
                label=f"{problem.describe()}",
                backend=self.backend, workers=self.workers,
            )
            values = batch.values("iterations")
            if self.family is not None:
                fit = fit_distribution(values, self.family, shift_rule=self.shift_rule)
            else:
                fit = select_best_fit(values, shift_rule=self.shift_rule)
            results.append(SizeObservation(size=size, observations=batch, fit=fit))
        self.size_observations = results
        return results

    def _require_results(self) -> list[SizeObservation]:
        if not self.size_observations:
            raise RuntimeError("call run(sizes) before querying the study")
        return self.size_observations

    # ------------------------------------------------------------------
    def family_is_stable(self) -> bool:
        """Whether every studied size fits (or selects) the same family."""
        results = self._require_results()
        return len({obs.fit.family for obs in results}) == 1

    def accepted_everywhere(self, significance: float = 0.05) -> bool:
        """Whether the KS test accepts the fit at every studied size."""
        return all(obs.fit.accepted(significance) for obs in self._require_results())

    def parameter_table(self) -> Mapping[int, Mapping[str, float]]:
        """Fitted parameters per size (for reports and tests)."""
        return {obs.size: dict(obs.fit.distribution.params()) for obs in self._require_results()}

    def scaling_laws(self) -> tuple[PowerLawFit, PowerLawFit]:
        """Power laws for the shift and the mean excess as functions of the size."""
        results = self._require_results()
        sizes = [obs.size for obs in results]
        shift_law = fit_power_law(sizes, [obs.shift for obs in results])
        excess_law = fit_power_law(sizes, [obs.mean_excess for obs in results])
        return shift_law, excess_law

    # ------------------------------------------------------------------
    def extrapolate(
        self, target_size: int, cores: Sequence[int] = (16, 32, 64, 128, 256)
    ) -> ExtrapolatedPrediction:
        """Predict the speed-up curve of a larger instance without solving it."""
        results = self._require_results()
        target_size = int(target_size)
        if target_size <= max(obs.size for obs in results):
            raise ValueError(
                f"target size {target_size} is not larger than the studied sizes; "
                "extrapolation is only meaningful upward"
            )
        shift_law, excess_law = self.scaling_laws()
        reference_fit = results[-1].fit  # largest studied size carries the shape
        distribution = _rescale_distribution(
            reference_fit,
            new_shift=shift_law.predict(target_size),
            new_mean_excess=excess_law.predict(target_size),
        )
        model = SpeedupModel(distribution)
        curve = model.curve(cores)
        return ExtrapolatedPrediction(
            target_size=target_size,
            distribution=distribution,
            family=reference_fit.family,
            curve=curve,
            limit=model.limit(),
            shift_law=shift_law,
            mean_excess_law=excess_law,
        )

    def validate(
        self,
        target_size: int,
        cores: Sequence[int] = (16, 64, 256),
        *,
        n_runs: int | None = None,
    ) -> Mapping[str, Mapping[int, float]]:
        """Compare the extrapolated prediction against a direct campaign.

        Runs the solver at the target size (``n_runs`` defaults to the
        study's per-size run count), fits the same family directly, and
        returns the three speed-up curves (extrapolated / directly fitted /
        simulated multi-walk) keyed by core count.  This is the experiment
        the paper proposes as future work.
        """
        from repro.multiwalk.simulate import simulate_multiwalk_speedups

        extrapolated = self.extrapolate(target_size, cores)
        problem = self.problem_factory(int(target_size))
        solver = self.solver_factory(problem)
        batch = run_sequential_batch(
            solver, n_runs or self.n_runs, base_seed=self.base_seed + 999_983,
            label=problem.describe(),
            backend=self.backend, workers=self.workers,
        )
        values = batch.values("iterations")
        direct_fit = fit_distribution(
            values, extrapolated.family, shift_rule=self.shift_rule
        )
        direct_model = SpeedupModel(direct_fit.distribution)
        simulated = simulate_multiwalk_speedups(
            batch, cores, rng=np.random.default_rng(self.base_seed + 7)
        )
        return {
            "extrapolated": {int(c): extrapolated.speedup(c) for c in cores},
            "direct_fit": {int(c): direct_model.speedup(int(c)) for c in cores},
            "simulated": {int(c): simulated.speedup(int(c)) for c in cores},
        }
