"""Langford pairing problem L(2, n) (extension benchmark).

Arrange two copies of each number ``1 .. n`` in a sequence of length ``2n``
such that the two copies of ``k`` are separated by exactly ``k`` other
numbers (i.e. their positions differ by ``k + 1``).  Solutions exist exactly
when ``n ≡ 0 or 3 (mod 4)``.

Encoded as a permutation of the multiset ``{1, 1, 2, 2, ..., n, n}`` — the
swap neighbourhood of the Adaptive Search solver applies unchanged.

Error model:

* global error = ``sum_k | gap(k) - (k + 1) |`` where ``gap(k)`` is the
  distance between the two occurrences of ``k``;
* variable error of a position = the error of the value it currently holds.
"""

from __future__ import annotations

import numpy as np

from repro.csp.permutation import DeltaEvaluator, DeltaState, PermutationProblem

__all__ = ["LangfordDeltaEvaluator", "LangfordProblem"]


class LangfordProblem(PermutationProblem):
    """Langford pairing L(2, n) over a multiset permutation of length ``2n``."""

    name = "langford"

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"Langford pairings need n >= 3, got {n}")
        if n % 4 not in (0, 3):
            raise ValueError(
                f"L(2, {n}) has no solution (n must be congruent to 0 or 3 modulo 4)"
            )
        self.n_values = int(n)
        values = np.repeat(np.arange(1, n + 1, dtype=np.int64), 2)
        super().__init__(size=2 * n, values=values)

    def _gaps(self, perms: np.ndarray) -> np.ndarray:
        """Distance between the two occurrences of each value, per row.

        Returns an array of shape ``(batch, n_values)`` with
        ``gap[b, k-1] = |pos2 - pos1|`` for value ``k`` in row ``b``.
        """
        batch = perms.shape[0]
        gaps = np.empty((batch, self.n_values), dtype=np.int64)
        for k in range(1, self.n_values + 1):
            mask = perms == k
            # argsort(~mask) lists the matching positions first (stable sort).
            first_two = np.argsort(~mask, axis=1, kind="stable")[:, :2]
            gaps[:, k - 1] = np.abs(first_two[:, 1] - first_two[:, 0])
        return gaps

    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        gaps = self._gaps(perms)
        targets = np.arange(1, self.n_values + 1) + 1
        return np.abs(gaps - targets).sum(axis=1).astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        perm = np.asarray(perm, dtype=np.int64)
        gaps = self._gaps(perm[None, :])[0]
        targets = np.arange(1, self.n_values + 1) + 1
        value_errors = np.abs(gaps - targets)
        return value_errors[perm - 1].astype(float)

    def _make_delta_evaluator(self) -> "LangfordDeltaEvaluator":
        return LangfordDeltaEvaluator(self)

    @staticmethod
    def reference_solution(n: int) -> np.ndarray:
        """A known solution for small instances (used in tests)."""
        known = {
            3: [2, 3, 1, 2, 1, 3],
            4: [4, 1, 3, 1, 2, 4, 3, 2],
        }
        if n not in known:
            raise ValueError(f"no stored reference solution for n={n}")
        return np.array(known[n], dtype=np.int64)


class _LangfordState(DeltaState):
    """Partner positions and per-value gap errors of the current sequence."""

    def __init__(
        self, perm: np.ndarray, cost: int, partner: np.ndarray, value_errors: np.ndarray
    ) -> None:
        super().__init__(perm, cost)
        # partner[p]: position holding the other copy of the value at p.
        self.partner = partner
        # value_errors[k-1] = | gap(k) - (k+1) | for each value k.
        self.value_errors = value_errors


class LangfordDeltaEvaluator(DeltaEvaluator):
    """O(1) swap footprint on the pair gaps, vectorised over j.

    A swap of positions holding values ``a != b`` only re-gaps those two
    values: the copy of ``a`` moves to the candidate position (its partner
    stays put) and vice versa.  Swapping the two copies of the same value is
    a no-op.
    """

    def attach(self, perm: np.ndarray) -> _LangfordState:
        perm = np.array(perm, dtype=np.int64)
        n_values = self.size // 2
        order = np.argsort(perm, kind="stable")
        pair_positions = order.reshape(n_values, 2)
        partner = np.empty(self.size, dtype=np.int64)
        partner[pair_positions[:, 0]] = pair_positions[:, 1]
        partner[pair_positions[:, 1]] = pair_positions[:, 0]
        gaps = np.abs(pair_positions[:, 1] - pair_positions[:, 0])
        targets = np.arange(1, n_values + 1) + 1
        value_errors = np.abs(gaps - targets)
        return _LangfordState(perm, int(value_errors.sum()), partner, value_errors)

    def swap_deltas(self, state: DeltaState, index: int) -> np.ndarray:
        perm = state.perm
        positions = np.arange(self.size)
        value_i = int(perm[index])
        partner_i = int(state.partner[index])
        error_i = int(state.value_errors[value_i - 1])
        new_error_i = np.abs(np.abs(positions - partner_i) - (value_i + 1))
        error_j = state.value_errors[perm - 1]
        new_error_j = np.abs(np.abs(index - state.partner) - (perm + 1))
        delta = (new_error_i - error_i) + (new_error_j - error_j)
        return np.where(perm == value_i, 0, delta).astype(float)

    def commit_swap(self, state: DeltaState, i: int, j: int) -> None:
        perm = state.perm
        value_i, value_j = int(perm[i]), int(perm[j])
        if value_i == value_j:
            return
        partner_i = int(state.partner[i])
        partner_j = int(state.partner[j])
        new_error_i = abs(abs(j - partner_i) - (value_i + 1))
        new_error_j = abs(abs(i - partner_j) - (value_j + 1))
        state.cost += (new_error_i - int(state.value_errors[value_i - 1])) + (
            new_error_j - int(state.value_errors[value_j - 1])
        )
        state.value_errors[value_i - 1] = new_error_i
        state.value_errors[value_j - 1] = new_error_j
        state.partner[j], state.partner[partner_i] = partner_i, j
        state.partner[i], state.partner[partner_j] = partner_j, i
        perm[i], perm[j] = perm[j], perm[i]

    def variable_errors(self, state: DeltaState) -> np.ndarray:
        return state.value_errors[state.perm - 1].astype(float)
