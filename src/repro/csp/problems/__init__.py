"""Benchmark problems.

The three problems evaluated by the paper:

* :class:`AllIntervalProblem` — CSPLib prob007 (ALL-INTERVAL series).
* :class:`MagicSquareProblem` — CSPLib prob019 (MAGIC-SQUARE).
* :class:`CostasArrayProblem` — the Costas array problem.

Two extension problems used by examples and tests to exercise the model on
algorithms/problems beyond the paper's evaluation:

* :class:`NQueensProblem` — permutation N-Queens.
* :class:`LangfordProblem` — Langford pairing L(2, n).
"""

from repro.csp.problems.all_interval import AllIntervalProblem
from repro.csp.problems.costas_array import CostasArrayProblem
from repro.csp.problems.langford import LangfordProblem
from repro.csp.problems.magic_square import MagicSquareProblem
from repro.csp.problems.nqueens import NQueensProblem

__all__ = [
    "AllIntervalProblem",
    "CostasArrayProblem",
    "LangfordProblem",
    "MagicSquareProblem",
    "NQueensProblem",
]
