"""MAGIC-SQUARE problem (CSPLib prob019, paper Section 5.2).

Place the numbers ``1 .. N^2`` on an ``N x N`` grid so that every row, every
column and both main diagonals sum to the magic constant
``M = N (N^2 + 1) / 2``.

Encoded, as in the reference Adaptive Search implementation, as a
permutation problem: the configuration is a permutation of ``1 .. N^2`` read
row by row, and a local move swaps the content of two cells (which preserves
the all-different structure by construction).

Error model:

* global error = sum over the ``2N + 2`` linear constraints of
  ``|sum - M|``;
* variable error of cell ``(r, c)`` = ``|row_r error| + |col_c error|``
  plus the diagonal errors when the cell lies on a diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.csp.constraints import LinearSumConstraint
from repro.csp.model import CSP, Variable
from repro.csp.permutation import PermutationProblem

__all__ = ["MagicSquareProblem"]


class MagicSquareProblem(PermutationProblem):
    """``N x N`` magic square as a permutation of ``1 .. N^2``."""

    name = "magic-square"

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"magic squares need N >= 3, got {n}")
        self.n = int(n)
        super().__init__(size=self.n * self.n, values=np.arange(1, self.n * self.n + 1, dtype=np.int64))
        self.magic_constant = self.n * (self.n * self.n + 1) // 2

    # ------------------------------------------------------------------
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        batch = perms.shape[0]
        grids = perms.reshape(batch, self.n, self.n)
        magic = self.magic_constant
        row_err = np.abs(grids.sum(axis=2) - magic).sum(axis=1)
        col_err = np.abs(grids.sum(axis=1) - magic).sum(axis=1)
        diag = grids[:, np.arange(self.n), np.arange(self.n)].sum(axis=1)
        anti = grids[:, np.arange(self.n), self.n - 1 - np.arange(self.n)].sum(axis=1)
        diag_err = np.abs(diag - magic) + np.abs(anti - magic)
        return (row_err + col_err + diag_err).astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        grid = np.asarray(perm, dtype=np.int64).reshape(self.n, self.n)
        magic = self.magic_constant
        row_err = np.abs(grid.sum(axis=1) - magic)
        col_err = np.abs(grid.sum(axis=0) - magic)
        diag_err = abs(int(np.trace(grid)) - magic)
        anti_err = abs(int(np.trace(np.fliplr(grid))) - magic)
        errors = row_err[:, None] + col_err[None, :]
        idx = np.arange(self.n)
        errors = errors.astype(float)
        errors[idx, idx] += diag_err
        errors[idx, self.n - 1 - idx] += anti_err
        return errors.reshape(-1)

    # ------------------------------------------------------------------
    def as_grid(self, perm: np.ndarray) -> np.ndarray:
        """Reshape a configuration into its ``N x N`` grid."""
        return np.asarray(perm, dtype=np.int64).reshape(self.n, self.n)

    def to_csp(self) -> CSP:
        """Equivalent general-CSP model over cell variables (for tests)."""
        names = [f"c{r}_{c}" for r in range(self.n) for c in range(self.n)]
        domain = tuple(range(1, self.n * self.n + 1))
        variables = [Variable(name, domain) for name in names]
        constraints = []
        magic = float(self.magic_constant)
        for r in range(self.n):
            constraints.append(LinearSumConstraint([f"c{r}_{c}" for c in range(self.n)], magic))
        for c in range(self.n):
            constraints.append(LinearSumConstraint([f"c{r}_{c}" for r in range(self.n)], magic))
        constraints.append(LinearSumConstraint([f"c{i}_{i}" for i in range(self.n)], magic))
        constraints.append(
            LinearSumConstraint([f"c{i}_{self.n - 1 - i}" for i in range(self.n)], magic)
        )
        return CSP(variables, constraints)

    @staticmethod
    def reference_solution(n: int) -> np.ndarray:
        """A valid magic square for odd ``n`` (Siamese method), for tests."""
        if n % 2 == 0:
            raise ValueError("the Siamese construction only covers odd orders")
        grid = np.zeros((n, n), dtype=np.int64)
        row, col = 0, n // 2
        for value in range(1, n * n + 1):
            grid[row, col] = value
            next_row, next_col = (row - 1) % n, (col + 1) % n
            if grid[next_row, next_col]:
                next_row, next_col = (row + 1) % n, col
            row, col = next_row, next_col
        return grid.reshape(-1)
