"""MAGIC-SQUARE problem (CSPLib prob019, paper Section 5.2).

Place the numbers ``1 .. N^2`` on an ``N x N`` grid so that every row, every
column and both main diagonals sum to the magic constant
``M = N (N^2 + 1) / 2``.

Encoded, as in the reference Adaptive Search implementation, as a
permutation problem: the configuration is a permutation of ``1 .. N^2`` read
row by row, and a local move swaps the content of two cells (which preserves
the all-different structure by construction).

Error model:

* global error = sum over the ``2N + 2`` linear constraints of
  ``|sum - M|``;
* variable error of cell ``(r, c)`` = ``|row_r error| + |col_c error|``
  plus the diagonal errors when the cell lies on a diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.csp.constraints import LinearSumConstraint
from repro.csp.model import CSP, Variable
from repro.csp.permutation import DeltaEvaluator, DeltaState, PermutationProblem

__all__ = ["MagicSquareDeltaEvaluator", "MagicSquareProblem"]


class MagicSquareProblem(PermutationProblem):
    """``N x N`` magic square as a permutation of ``1 .. N^2``."""

    name = "magic-square"

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"magic squares need N >= 3, got {n}")
        self.n = int(n)
        super().__init__(size=self.n * self.n, values=np.arange(1, self.n * self.n + 1, dtype=np.int64))
        self.magic_constant = self.n * (self.n * self.n + 1) // 2

    # ------------------------------------------------------------------
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        batch = perms.shape[0]
        grids = perms.reshape(batch, self.n, self.n)
        magic = self.magic_constant
        row_err = np.abs(grids.sum(axis=2) - magic).sum(axis=1)
        col_err = np.abs(grids.sum(axis=1) - magic).sum(axis=1)
        diag = grids[:, np.arange(self.n), np.arange(self.n)].sum(axis=1)
        anti = grids[:, np.arange(self.n), self.n - 1 - np.arange(self.n)].sum(axis=1)
        diag_err = np.abs(diag - magic) + np.abs(anti - magic)
        return (row_err + col_err + diag_err).astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        grid = np.asarray(perm, dtype=np.int64).reshape(self.n, self.n)
        magic = self.magic_constant
        row_err = np.abs(grid.sum(axis=1) - magic)
        col_err = np.abs(grid.sum(axis=0) - magic)
        diag_err = abs(int(np.trace(grid)) - magic)
        anti_err = abs(int(np.trace(np.fliplr(grid))) - magic)
        errors = row_err[:, None] + col_err[None, :]
        idx = np.arange(self.n)
        errors = errors.astype(float)
        errors[idx, idx] += diag_err
        errors[idx, self.n - 1 - idx] += anti_err
        return errors.reshape(-1)

    def _make_delta_evaluator(self) -> "MagicSquareDeltaEvaluator":
        return MagicSquareDeltaEvaluator(self)

    # ------------------------------------------------------------------
    def as_grid(self, perm: np.ndarray) -> np.ndarray:
        """Reshape a configuration into its ``N x N`` grid."""
        return np.asarray(perm, dtype=np.int64).reshape(self.n, self.n)

    def to_csp(self) -> CSP:
        """Equivalent general-CSP model over cell variables (for tests)."""
        names = [f"c{r}_{c}" for r in range(self.n) for c in range(self.n)]
        domain = tuple(range(1, self.n * self.n + 1))
        variables = [Variable(name, domain) for name in names]
        constraints = []
        magic = float(self.magic_constant)
        for r in range(self.n):
            constraints.append(LinearSumConstraint([f"c{r}_{c}" for c in range(self.n)], magic))
        for c in range(self.n):
            constraints.append(LinearSumConstraint([f"c{r}_{c}" for r in range(self.n)], magic))
        constraints.append(LinearSumConstraint([f"c{i}_{i}" for i in range(self.n)], magic))
        constraints.append(
            LinearSumConstraint([f"c{i}_{self.n - 1 - i}" for i in range(self.n)], magic)
        )
        return CSP(variables, constraints)

    @staticmethod
    def reference_solution(n: int) -> np.ndarray:
        """A valid magic square for odd ``n`` (Siamese method), for tests."""
        if n % 2 == 0:
            raise ValueError("the Siamese construction only covers odd orders")
        grid = np.zeros((n, n), dtype=np.int64)
        row, col = 0, n // 2
        for value in range(1, n * n + 1):
            grid[row, col] = value
            next_row, next_col = (row - 1) % n, (col + 1) % n
            if grid[next_row, next_col]:
                next_row, next_col = (row + 1) % n, col
            row, col = next_row, next_col
        return grid.reshape(-1)


class _MagicSquareState(DeltaState):
    """Running row/column/diagonal sums of the current grid."""

    def __init__(
        self,
        perm: np.ndarray,
        cost: int,
        row_sums: np.ndarray,
        col_sums: np.ndarray,
        diag_sum: int,
        anti_sum: int,
    ) -> None:
        super().__init__(perm, cost)
        self.row_sums = row_sums
        self.col_sums = col_sums
        self.diag_sum = diag_sum
        self.anti_sum = anti_sum


class MagicSquareDeltaEvaluator(DeltaEvaluator):
    """O(cells) swap deltas from running line sums.

    A swap moves value mass ``v_j - v_i`` between two cells, so only the
    (at most) two rows, two columns and the diagonals containing the cells
    change; the per-candidate delta is four absolute-deviation updates.
    """

    def __init__(self, problem: MagicSquareProblem) -> None:
        super().__init__(problem)
        self.n = problem.n
        self.magic = problem.magic_constant
        cells = np.arange(self.size)
        self._rows = cells // self.n
        self._cols = cells % self.n
        self._on_diag = self._rows == self._cols
        self._on_anti = self._rows + self._cols == self.n - 1

    def attach(self, perm: np.ndarray) -> _MagicSquareState:
        perm = np.array(perm, dtype=np.int64)
        grid = perm.reshape(self.n, self.n)
        row_sums = grid.sum(axis=1)
        col_sums = grid.sum(axis=0)
        diag_sum = int(np.trace(grid))
        anti_sum = int(np.trace(np.fliplr(grid)))
        magic = self.magic
        cost = int(
            np.abs(row_sums - magic).sum()
            + np.abs(col_sums - magic).sum()
            + abs(diag_sum - magic)
            + abs(anti_sum - magic)
        )
        return _MagicSquareState(perm, cost, row_sums, col_sums, diag_sum, anti_sum)

    def swap_deltas(self, state: DeltaState, index: int) -> np.ndarray:
        magic = self.magic
        row_i = self._rows[index]
        col_i = self._cols[index]
        shift = state.perm - int(state.perm[index])  # value entering `index`, per candidate

        def line_delta(sums: np.ndarray, lines: np.ndarray, line_i: int) -> np.ndarray:
            base_i = abs(int(sums[line_i]) - magic)
            changed = (
                np.abs(sums[line_i] + shift - magic)
                - base_i
                + np.abs(sums[lines] - shift - magic)
                - np.abs(sums[lines] - magic)
            )
            return np.where(lines == line_i, 0, changed)

        delta = line_delta(state.row_sums, self._rows, row_i)
        delta += line_delta(state.col_sums, self._cols, col_i)
        diag_shift = shift * (int(self._on_diag[index]) - self._on_diag.astype(np.int64))
        delta += np.abs(state.diag_sum + diag_shift - magic) - abs(state.diag_sum - magic)
        anti_shift = shift * (int(self._on_anti[index]) - self._on_anti.astype(np.int64))
        delta += np.abs(state.anti_sum + anti_shift - magic) - abs(state.anti_sum - magic)
        delta[index] = 0
        return delta.astype(float)

    def commit_swap(self, state: DeltaState, i: int, j: int) -> None:
        if i == j:
            return
        perm = state.perm
        magic = self.magic
        shift = int(perm[j]) - int(perm[i])
        row_i, row_j = int(self._rows[i]), int(self._rows[j])
        col_i, col_j = int(self._cols[i]), int(self._cols[j])
        delta = 0
        if row_i != row_j:
            sum_i, sum_j = int(state.row_sums[row_i]), int(state.row_sums[row_j])
            delta += (
                abs(sum_i + shift - magic)
                - abs(sum_i - magic)
                + abs(sum_j - shift - magic)
                - abs(sum_j - magic)
            )
            state.row_sums[row_i] = sum_i + shift
            state.row_sums[row_j] = sum_j - shift
        if col_i != col_j:
            sum_i, sum_j = int(state.col_sums[col_i]), int(state.col_sums[col_j])
            delta += (
                abs(sum_i + shift - magic)
                - abs(sum_i - magic)
                + abs(sum_j - shift - magic)
                - abs(sum_j - magic)
            )
            state.col_sums[col_i] = sum_i + shift
            state.col_sums[col_j] = sum_j - shift
        diag_shift = shift * (int(row_i == col_i) - int(row_j == col_j))
        if diag_shift:
            delta += abs(state.diag_sum + diag_shift - magic) - abs(state.diag_sum - magic)
            state.diag_sum += diag_shift
        anti_shift = shift * (
            int(row_i + col_i == self.n - 1) - int(row_j + col_j == self.n - 1)
        )
        if anti_shift:
            delta += abs(state.anti_sum + anti_shift - magic) - abs(state.anti_sum - magic)
            state.anti_sum += anti_shift
        state.cost += delta
        perm[i], perm[j] = perm[j], perm[i]

    def variable_errors(self, state: DeltaState) -> np.ndarray:
        magic = self.magic
        errors = np.abs(state.row_sums - magic)[self._rows] + np.abs(state.col_sums - magic)[
            self._cols
        ]
        errors = errors.astype(float)
        errors[self._on_diag] += abs(state.diag_sum - magic)
        errors[self._on_anti] += abs(state.anti_sum - magic)
        return errors
