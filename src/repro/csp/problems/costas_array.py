"""COSTAS ARRAY problem (paper, Section 5.3).

A Costas array of order ``N`` is an ``N x N`` grid with exactly one mark per
row and per column such that the ``N(N-1)/2`` displacement vectors joining
pairs of marks are pairwise distinct.  Developed in the 1960s for sonar /
radar frequency-hopping patterns with ideal auto-ambiguity properties.

Permutation encoding (the one used by the paper): the configuration is a
permutation ``(V_1, ..., V_N)`` of ``{1, ..., N}`` where ``V_i`` is the row
of the mark in column ``i``.  The Costas property is equivalent to: for
every column displacement ``d in {1, ..., N-1}``, the differences
``V_{i+d} - V_i`` are pairwise distinct.

Error model:

* global error = total number of duplicated differences summed over all
  displacements ``d``;
* variable error of column ``i`` = number of duplicated differences whose
  pair involves column ``i``.
"""

from __future__ import annotations

import numpy as np

from repro.csp.constraints import FunctionalAllDifferentConstraint
from repro.csp.model import CSP, Variable
from repro.csp.permutation import PermutationProblem

__all__ = ["CostasArrayProblem"]


class CostasArrayProblem(PermutationProblem):
    """Costas array of order ``n`` as a permutation problem."""

    name = "costas-array"

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"Costas arrays of interest need n >= 3, got {n}")
        super().__init__(size=n, values=np.arange(1, n + 1, dtype=np.int64))

    # ------------------------------------------------------------------
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        batch = perms.shape[0]
        total = np.zeros(batch, dtype=np.int64)
        for d in range(1, self.size):
            diffs = perms[:, d:] - perms[:, :-d]
            if diffs.shape[1] < 2:
                continue
            sorted_diffs = np.sort(diffs, axis=1)
            duplicates = diffs.shape[1] - (1 + np.count_nonzero(np.diff(sorted_diffs, axis=1), axis=1))
            total += duplicates
        return total.astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        perm = np.asarray(perm, dtype=np.int64)
        errors = np.zeros(self.size, dtype=float)
        for d in range(1, self.size):
            diffs = perm[d:] - perm[:-d]
            if diffs.size < 2:
                continue
            values, counts = np.unique(diffs, return_counts=True)
            duplicated_values = values[counts > 1]
            if duplicated_values.size == 0:
                continue
            mask = np.isin(diffs, duplicated_values)
            idx = np.nonzero(mask)[0]
            errors[idx] += 1.0
            errors[idx + d] += 1.0
        return errors

    # ------------------------------------------------------------------
    def displacement_table(self, perm: np.ndarray) -> dict[int, np.ndarray]:
        """Differences ``V_{i+d} - V_i`` per displacement ``d`` (diagnostics)."""
        perm = np.asarray(perm, dtype=np.int64)
        return {d: perm[d:] - perm[:-d] for d in range(1, self.size)}

    def to_csp(self) -> CSP:
        """Equivalent general-CSP model (one all-different per displacement)."""
        names = [f"v{i}" for i in range(self.size)]
        domain = tuple(range(1, self.size + 1))
        variables = [Variable(name, domain) for name in names]
        constraints = []

        def make_terms(d: int):
            def terms(assignment):
                values = [assignment[name] for name in names]
                return [values[i + d] - values[i] for i in range(self.size - d)]

            return terms

        for d in range(1, self.size - 1):
            involved = names  # every column participates for small instances
            constraints.append(FunctionalAllDifferentConstraint(involved, make_terms(d)))
        return CSP(variables, constraints)

    @staticmethod
    def welch_construction(p: int, primitive_root: int) -> np.ndarray:
        """Welch construction: a Costas array of order ``p - 1`` for prime ``p``.

        ``V_i = g^i mod p`` for a primitive root ``g`` of the prime ``p``
        yields a valid Costas array of order ``p - 1`` (used by tests as a
        ground-truth solution).
        """
        if p < 3:
            raise ValueError("p must be a prime >= 3")
        values = []
        current = 1
        for _ in range(p - 1):
            current = (current * primitive_root) % p
            values.append(current)
        return np.array(values, dtype=np.int64)
