"""COSTAS ARRAY problem (paper, Section 5.3).

A Costas array of order ``N`` is an ``N x N`` grid with exactly one mark per
row and per column such that the ``N(N-1)/2`` displacement vectors joining
pairs of marks are pairwise distinct.  Developed in the 1960s for sonar /
radar frequency-hopping patterns with ideal auto-ambiguity properties.

Permutation encoding (the one used by the paper): the configuration is a
permutation ``(V_1, ..., V_N)`` of ``{1, ..., N}`` where ``V_i`` is the row
of the mark in column ``i``.  The Costas property is equivalent to: for
every column displacement ``d in {1, ..., N-1}``, the differences
``V_{i+d} - V_i`` are pairwise distinct.

Error model:

* global error = total number of duplicated differences summed over all
  displacements ``d``;
* variable error of column ``i`` = number of duplicated differences whose
  pair involves column ``i``.
"""

from __future__ import annotations

import numpy as np

from repro.csp.constraints import FunctionalAllDifferentConstraint
from repro.csp.model import CSP, Variable
from repro.csp.permutation import (
    DeltaEvaluator,
    DeltaState,
    PermutationProblem,
    multiset_delta,
)

__all__ = ["CostasArrayProblem", "CostasDeltaEvaluator"]


class CostasArrayProblem(PermutationProblem):
    """Costas array of order ``n`` as a permutation problem."""

    name = "costas-array"

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"Costas arrays of interest need n >= 3, got {n}")
        super().__init__(size=n, values=np.arange(1, n + 1, dtype=np.int64))

    # ------------------------------------------------------------------
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        batch = perms.shape[0]
        total = np.zeros(batch, dtype=np.int64)
        for d in range(1, self.size):
            diffs = perms[:, d:] - perms[:, :-d]
            if diffs.shape[1] < 2:
                continue
            sorted_diffs = np.sort(diffs, axis=1)
            duplicates = diffs.shape[1] - (1 + np.count_nonzero(np.diff(sorted_diffs, axis=1), axis=1))
            total += duplicates
        return total.astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        perm = np.asarray(perm, dtype=np.int64)
        errors = np.zeros(self.size, dtype=float)
        for d in range(1, self.size):
            diffs = perm[d:] - perm[:-d]
            if diffs.size < 2:
                continue
            values, counts = np.unique(diffs, return_counts=True)
            duplicated_values = values[counts > 1]
            if duplicated_values.size == 0:
                continue
            mask = np.isin(diffs, duplicated_values)
            idx = np.nonzero(mask)[0]
            errors[idx] += 1.0
            errors[idx + d] += 1.0
        return errors

    def _make_delta_evaluator(self) -> "CostasDeltaEvaluator":
        return CostasDeltaEvaluator(self)

    # ------------------------------------------------------------------
    def displacement_table(self, perm: np.ndarray) -> dict[int, np.ndarray]:
        """Differences ``V_{i+d} - V_i`` per displacement ``d`` (diagnostics)."""
        perm = np.asarray(perm, dtype=np.int64)
        return {d: perm[d:] - perm[:-d] for d in range(1, self.size)}

    def to_csp(self) -> CSP:
        """Equivalent general-CSP model (one all-different per displacement)."""
        names = [f"v{i}" for i in range(self.size)]
        domain = tuple(range(1, self.size + 1))
        variables = [Variable(name, domain) for name in names]
        constraints = []

        def make_terms(d: int):
            def terms(assignment):
                values = [assignment[name] for name in names]
                return [values[i + d] - values[i] for i in range(self.size - d)]

            return terms

        for d in range(1, self.size - 1):
            involved = names  # every column participates for small instances
            constraints.append(FunctionalAllDifferentConstraint(involved, make_terms(d)))
        return CSP(variables, constraints)

    @staticmethod
    def welch_construction(p: int, primitive_root: int) -> np.ndarray:
        """Welch construction: a Costas array of order ``p - 1`` for prime ``p``.

        ``V_i = g^i mod p`` for a primitive root ``g`` of the prime ``p``
        yields a valid Costas array of order ``p - 1`` (used by tests as a
        ground-truth solution).
        """
        if p < 3:
            raise ValueError("p must be a prime >= 3")
        values = []
        current = 1
        for _ in range(p - 1):
            current = (current * primitive_root) % p
            values.append(current)
        return np.array(values, dtype=np.int64)


class _CostasState(DeltaState):
    """Difference-triangle multiset counters plus the current differences."""

    def __init__(
        self, perm: np.ndarray, cost: int, counts: np.ndarray, diff_values: np.ndarray
    ) -> None:
        super().__init__(perm, cost)
        # counts[d, value + (n-1)]: occurrences of each difference value in
        # the displacement-d row of the difference triangle (row 0 unused).
        self.counts = counts
        # diff_values[p]: current difference of pair p (indexed as in the
        # evaluator's static pair enumeration).
        self.diff_values = diff_values


class CostasDeltaEvaluator(DeltaEvaluator):
    """O(n) swap footprint on the difference triangle, vectorised over j.

    The global error is ``sum(max(count - 1, 0))`` over the per-displacement
    difference counters.  Each position participates in exactly ``n - 1``
    pairs of the triangle, so a swap touches O(n) counters; candidate deltas
    aggregate removals and additions per ``(candidate, displacement, value)``
    slot, which makes coincidences (two touched pairs landing on the same
    counter) a net-multiplicity bookkeeping problem rather than a special
    case.
    """

    def __init__(self, problem: CostasArrayProblem) -> None:
        super().__init__(problem)
        n = self.size
        # Static enumeration of the n(n-1)/2 difference-triangle pairs
        # (k, k + d), ordered by displacement then left endpoint.
        self._pair_d = np.concatenate(
            [np.full(n - d, d, dtype=np.int64) for d in range(1, n)]
        )
        self._pair_k = np.concatenate([np.arange(n - d, dtype=np.int64) for d in range(1, n)])
        pairs_of: list[list[int]] = [[] for _ in range(n)]
        others: list[list[int]] = [[] for _ in range(n)]
        is_left: list[list[bool]] = [[] for _ in range(n)]
        for pair, (d, k) in enumerate(zip(self._pair_d, self._pair_k)):
            pairs_of[k].append(pair)
            others[k].append(k + d)
            is_left[k].append(True)
            pairs_of[k + d].append(pair)
            others[k + d].append(k)
            is_left[k + d].append(False)
        self._pairs_of = np.array(pairs_of, dtype=np.int64)  # (n, n-1)
        self._others = np.array(others, dtype=np.int64)
        self._is_left = np.array(is_left, dtype=bool)

    def attach(self, perm: np.ndarray) -> _CostasState:
        perm = np.array(perm, dtype=np.int64)
        n = self.size
        width = 2 * n - 1
        diff_values = perm[self._pair_k + self._pair_d] - perm[self._pair_k]
        counts = np.zeros((n, width), dtype=np.int64)
        np.add.at(counts, (self._pair_d, diff_values + n - 1), 1)
        cost = int(np.maximum(counts - 1, 0).sum())
        return _CostasState(perm, cost, counts, diff_values)

    def swap_deltas(self, state: DeltaState, index: int) -> np.ndarray:
        perm = state.perm
        n = self.size
        off = n - 1
        width = 2 * n - 1
        slots = n * width
        value_index = int(perm[index])
        candidates = np.arange(n)[:, None]

        # Pairs anchored at `index`: identical for every candidate, but the
        # new difference depends on the candidate value entering `index`.
        pairs_i = self._pairs_of[index]
        other_i = self._others[index]
        left_i = self._is_left[index]
        old_i = state.diff_values[pairs_i]
        d_i = self._pair_d[pairs_i]
        value_other = perm[other_i]
        value_j = perm[:, None]
        new_i = np.where(left_i[None, :], value_other[None, :] - value_j, value_j - value_other[None, :])
        # The pair joining `index` and the candidate has both endpoints
        # swapped: its difference flips sign.
        new_i = np.where(other_i[None, :] == candidates, -old_i[None, :], new_i)

        # Pairs anchored at the candidate; the pair shared with `index` is
        # already accounted for above.
        pairs_j = self._pairs_of
        other_j = self._others
        old_j = state.diff_values[pairs_j]
        d_j = self._pair_d[pairs_j]
        new_j = np.where(self._is_left, perm[other_j] - value_index, value_index - perm[other_j])
        keep_j = other_j != index

        base_i = candidates * slots + (d_i * width + off)[None, :]
        base_j = candidates * slots + d_j * width + off
        keys = np.concatenate(
            [
                (base_i + old_i[None, :]).ravel(),
                (base_i + new_i).ravel(),
                (base_j + old_j)[keep_j],
                (base_j + new_j)[keep_j],
            ]
        )
        kept = int(keep_j.sum())
        signs = np.concatenate(
            [
                np.full(n * (n - 1), -1.0),
                np.full(n * (n - 1), 1.0),
                np.full(kept, -1.0),
                np.full(kept, 1.0),
            ]
        )
        unique_keys, inverse = np.unique(keys, return_inverse=True)
        net = np.bincount(inverse, weights=signs).astype(np.int64)
        occupancy = state.counts.ravel()[unique_keys % slots]
        per_slot = np.maximum(occupancy + net - 1, 0) - np.maximum(occupancy - 1, 0)
        delta = np.bincount(unique_keys // slots, weights=per_slot, minlength=n)
        delta[index] = 0.0
        return delta

    def commit_swap(self, state: DeltaState, i: int, j: int) -> None:
        if i == j:
            return
        perm = state.perm
        n = self.size
        off = n - 1
        width = 2 * n - 1
        value_i, value_j = int(perm[i]), int(perm[j])

        pairs_i = self._pairs_of[i]
        other_i = self._others[i]
        old_i = state.diff_values[pairs_i]
        new_i = np.where(self._is_left[i], perm[other_i] - value_j, value_j - perm[other_i])
        new_i = np.where(other_i == j, -old_i, new_i)

        keep = self._others[j] != i
        pairs_j = self._pairs_of[j][keep]
        other_j = self._others[j][keep]
        old_j = state.diff_values[pairs_j]
        new_j = np.where(self._is_left[j][keep], perm[other_j] - value_i, value_i - perm[other_j])

        pairs = np.concatenate([pairs_i, pairs_j])
        old_values = np.concatenate([old_i, old_j])
        new_values = np.concatenate([new_i, new_j])
        displacements = self._pair_d[pairs]
        removed = displacements * width + old_values + off
        added = displacements * width + new_values + off
        state.cost += multiset_delta(state.counts.ravel(), removed, added)
        np.add.at(state.counts, (displacements, old_values + off), -1)
        np.add.at(state.counts, (displacements, new_values + off), 1)
        state.diff_values[pairs] = new_values
        perm[i], perm[j] = perm[j], perm[i]

    def variable_errors(self, state: DeltaState) -> np.ndarray:
        duplicated = state.counts[self._pair_d, state.diff_values + self.size - 1] > 1
        n = self.size
        return np.bincount(self._pair_k, weights=duplicated, minlength=n) + np.bincount(
            self._pair_k + self._pair_d, weights=duplicated, minlength=n
        )
