"""ALL-INTERVAL series problem (CSPLib prob007, paper Section 5.1).

Find a permutation ``(X_1, ..., X_N)`` of ``{0, ..., N-1}`` such that the
absolute differences of consecutive elements
``(|X_1 - X_2|, |X_2 - X_3|, ..., |X_{N-1} - X_N|)`` are all distinct —
i.e. form a permutation of ``{1, ..., N-1}``.  Musically: a twelve-tone-style
series using every melodic interval exactly once.

Error model (the one used by the reference Adaptive Search encoding):

* global error = number of *missing* interval values = ``(N-1) - #distinct``;
* variable error of position ``i`` = number of adjacent differences whose
  value occurs more than once in the current difference list (a position
  touching only unique intervals has error 0).
"""

from __future__ import annotations

import numpy as np

from repro.csp.constraints import FunctionalAllDifferentConstraint
from repro.csp.model import CSP, Variable
from repro.csp.permutation import PermutationProblem

__all__ = ["AllIntervalProblem"]


class AllIntervalProblem(PermutationProblem):
    """ALL-INTERVAL series of length ``n`` as a permutation problem."""

    name = "all-interval"

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"the ALL-INTERVAL series needs n >= 3, got {n}")
        super().__init__(size=n, values=np.arange(n, dtype=np.int64))

    # ------------------------------------------------------------------
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        diffs = np.abs(np.diff(perms, axis=1))
        sorted_diffs = np.sort(diffs, axis=1)
        distinct = 1 + np.count_nonzero(np.diff(sorted_diffs, axis=1), axis=1)
        return (self.size - 1 - distinct).astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        perm = np.asarray(perm, dtype=np.int64)
        diffs = np.abs(np.diff(perm))
        counts = np.bincount(diffs, minlength=self.size)
        duplicated = counts[diffs] > 1
        errors = np.zeros(self.size, dtype=float)
        errors[:-1] += duplicated
        errors[1:] += duplicated
        return errors

    # ------------------------------------------------------------------
    def interval_vector(self, perm: np.ndarray) -> np.ndarray:
        """The consecutive absolute differences of a configuration."""
        return np.abs(np.diff(np.asarray(perm, dtype=np.int64)))

    def to_csp(self) -> CSP:
        """Equivalent general-CSP model (used for cross-validation in tests)."""
        names = [f"x{i}" for i in range(self.size)]
        variables = [Variable(name, tuple(range(self.size))) for name in names]

        def terms(assignment):
            values = [assignment[name] for name in names]
            return [abs(values[i] - values[i + 1]) for i in range(self.size - 1)]

        constraints = [
            FunctionalAllDifferentConstraint(names, terms),
        ]
        return CSP(variables, constraints)

    @staticmethod
    def reference_solution(n: int) -> np.ndarray:
        """A known valid series for any ``n`` (zig-zag construction).

        ``0, n-1, 1, n-2, 2, ...`` uses every interval ``n-1, n-2, ..., 1``
        exactly once; handy for tests.
        """
        low, high = 0, n - 1
        out = []
        for i in range(n):
            if i % 2 == 0:
                out.append(low)
                low += 1
            else:
                out.append(high)
                high -= 1
        return np.array(out, dtype=np.int64)
