"""ALL-INTERVAL series problem (CSPLib prob007, paper Section 5.1).

Find a permutation ``(X_1, ..., X_N)`` of ``{0, ..., N-1}`` such that the
absolute differences of consecutive elements
``(|X_1 - X_2|, |X_2 - X_3|, ..., |X_{N-1} - X_N|)`` are all distinct —
i.e. form a permutation of ``{1, ..., N-1}``.  Musically: a twelve-tone-style
series using every melodic interval exactly once.

Error model (the one used by the reference Adaptive Search encoding):

* global error = number of *missing* interval values = ``(N-1) - #distinct``;
* variable error of position ``i`` = number of adjacent differences whose
  value occurs more than once in the current difference list (a position
  touching only unique intervals has error 0).
"""

from __future__ import annotations

import numpy as np

from repro.csp.constraints import FunctionalAllDifferentConstraint
from repro.csp.model import CSP, Variable
from repro.csp.permutation import (
    DeltaEvaluator,
    DeltaState,
    PermutationProblem,
    multiset_delta,
)

__all__ = ["AllIntervalDeltaEvaluator", "AllIntervalProblem"]


class AllIntervalProblem(PermutationProblem):
    """ALL-INTERVAL series of length ``n`` as a permutation problem."""

    name = "all-interval"

    #: Measured batch/incremental crossover (benchmarks/test_bench_delta.py):
    #: the two-numpy-call batch cost function wins on call overhead below
    #: n ≈ 96; ``evaluation="auto"`` picks the batch path under that size.
    incremental_min_size = 96

    def __init__(self, n: int) -> None:
        if n < 3:
            raise ValueError(f"the ALL-INTERVAL series needs n >= 3, got {n}")
        super().__init__(size=n, values=np.arange(n, dtype=np.int64))

    # ------------------------------------------------------------------
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        diffs = np.abs(np.diff(perms, axis=1))
        sorted_diffs = np.sort(diffs, axis=1)
        distinct = 1 + np.count_nonzero(np.diff(sorted_diffs, axis=1), axis=1)
        return (self.size - 1 - distinct).astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        perm = np.asarray(perm, dtype=np.int64)
        diffs = np.abs(np.diff(perm))
        counts = np.bincount(diffs, minlength=self.size)
        duplicated = counts[diffs] > 1
        errors = np.zeros(self.size, dtype=float)
        errors[:-1] += duplicated
        errors[1:] += duplicated
        return errors

    def _make_delta_evaluator(self) -> "AllIntervalDeltaEvaluator":
        return AllIntervalDeltaEvaluator(self)

    # ------------------------------------------------------------------
    def interval_vector(self, perm: np.ndarray) -> np.ndarray:
        """The consecutive absolute differences of a configuration."""
        return np.abs(np.diff(np.asarray(perm, dtype=np.int64)))

    def to_csp(self) -> CSP:
        """Equivalent general-CSP model (used for cross-validation in tests)."""
        names = [f"x{i}" for i in range(self.size)]
        variables = [Variable(name, tuple(range(self.size))) for name in names]

        def terms(assignment):
            values = [assignment[name] for name in names]
            return [abs(values[i] - values[i + 1]) for i in range(self.size - 1)]

        constraints = [
            FunctionalAllDifferentConstraint(names, terms),
        ]
        return CSP(variables, constraints)

    @staticmethod
    def reference_solution(n: int) -> np.ndarray:
        """A known valid series for any ``n`` (zig-zag construction).

        ``0, n-1, 1, n-2, 2, ...`` uses every interval ``n-1, n-2, ..., 1``
        exactly once; handy for tests.
        """
        low, high = 0, n - 1
        out = []
        for i in range(n):
            if i % 2 == 0:
                out.append(low)
                low += 1
            else:
                out.append(high)
                high -= 1
        return np.array(out, dtype=np.int64)


class _AllIntervalState(DeltaState):
    """Current interval vector plus an occurrence counter per interval value."""

    def __init__(self, perm: np.ndarray, cost: int, diffs: np.ndarray, counts: np.ndarray) -> None:
        super().__init__(perm, cost)
        self.diffs = diffs  # |perm[k+1] - perm[k]| for k in 0..n-2
        self.counts = counts  # occurrences of each interval value 0..n-1


class AllIntervalDeltaEvaluator(DeltaEvaluator):
    """O(1)-sized swap footprint on the interval multiset, vectorised over j.

    The global error ``(n-1) - #distinct`` equals ``sum(max(count - 1, 0))``
    over the interval-value counters, and a swap of positions ``i`` and
    ``j`` only touches the (at most four) intervals adjacent to either
    position.  Each candidate contributes eight counter updates (four
    removals, four additions); the exact delta is the telescoped sum of
    their sequential duplicate-count changes, where each entry sees the
    counter adjusted by the *earlier* entries hitting the same interval
    value — an 8x8 pairwise-equality correction, no sorting or hashing.

    The batch oracle is cheaper below n ~ 50 (its two vector ops beat the
    ~20 small kernel calls here); the kernel wins asymptotically and at the
    paper's ALL-INTERVAL sizes (n in the hundreds) by an order of magnitude.
    """

    #: Signs of the eight counter updates: four removals then four additions.
    _SIGNS = np.array([-1, -1, -1, -1, 1, 1, 1, 1], dtype=np.int64)

    def __init__(self, problem: AllIntervalProblem) -> None:
        super().__init__(problem)
        n = self.size
        idx = np.arange(n)
        self._idx = idx
        self._prev_pos = np.clip(idx - 1, 0, n - 1)
        self._next_pos = np.clip(idx + 1, 0, n - 1)
        self._prev_interval = np.clip(idx - 1, 0, n - 2)
        self._own_interval = np.clip(idx, 0, n - 2)
        self._has_prev = idx >= 1
        self._has_next = idx <= n - 2
        # Strictly-lower-triangular mask: entry k only sees earlier entries.
        self._earlier = np.tril(np.ones((8, 8), dtype=np.int64), -1)

    def attach(self, perm: np.ndarray) -> _AllIntervalState:
        perm = np.array(perm, dtype=np.int64)
        diffs = np.abs(np.diff(perm))
        counts = np.bincount(diffs, minlength=self.size)
        cost = int(np.maximum(counts - 1, 0).sum())
        return _AllIntervalState(perm, cost, diffs, counts)

    def _affected_positions(self, i: int, j: int) -> np.ndarray:
        """Deduplicated valid interval positions touched by the swap."""
        positions = {k for k in (i - 1, i, j - 1, j) if 0 <= k <= self.size - 2}
        return np.array(sorted(positions), dtype=np.int64)

    def swap_deltas(self, state: DeltaState, index: int) -> np.ndarray:
        perm = state.perm
        diffs = state.diffs
        n = self.size
        idx = self._idx
        value_i = int(perm[index])
        before_i = int(perm[index - 1]) if index >= 1 else 0
        after_i = int(perm[index + 1]) if index <= n - 2 else 0
        interval_before_i = int(diffs[index - 1]) if index >= 1 else 0
        interval_after_i = int(diffs[index]) if index <= n - 2 else 0

        # Columns 0-3: intervals vacated around `index` and the candidate;
        # columns 4-7: the intervals created there.  An adjacent swap leaves
        # the interval between the two positions unchanged (columns 4/5
        # special-case it) and touches it only once (columns 2/3 masked).
        values = np.empty((n, 8), dtype=np.int64)
        values[:, 0] = interval_before_i
        values[:, 1] = interval_after_i
        values[:, 2] = diffs[self._prev_interval]
        values[:, 3] = diffs[self._own_interval]
        values[:, 4] = np.where(idx == index - 1, interval_before_i, np.abs(perm - before_i))
        values[:, 5] = np.where(idx == index + 1, interval_after_i, np.abs(after_i - perm))
        values[:, 6] = np.abs(value_i - perm[self._prev_pos])
        values[:, 7] = np.abs(perm[self._next_pos] - value_i)

        weights = np.empty((n, 8), dtype=np.int64)
        weights[:, 0] = 1 if index >= 1 else 0
        weights[:, 1] = 1 if index <= n - 2 else 0
        candidate_prev = self._has_prev & (idx != index) & (idx != index + 1)
        candidate_own = self._has_next & (idx != index - 1) & (idx != index)
        weights[:, 2] = candidate_prev
        weights[:, 3] = candidate_own
        weights[:, 4] = weights[:, 0]
        weights[:, 5] = weights[:, 1]
        weights[:, 6] = candidate_prev
        weights[:, 7] = candidate_own

        signed = self._SIGNS * weights
        same_value = values[:, :, None] == values[:, None, :]
        adjustment = np.einsum("nkm,nm->nk", same_value * self._earlier, signed)
        effective = state.counts[values] + adjustment
        change = np.where(
            self._SIGNS < 0,
            -(effective >= 2).astype(np.int64),
            (effective >= 1).astype(np.int64),
        )
        delta = (change * weights).sum(axis=1).astype(float)
        delta[index] = 0.0
        return delta

    def commit_swap(self, state: DeltaState, i: int, j: int) -> None:
        perm = state.perm
        positions = self._affected_positions(i, j)
        old_values = state.diffs[positions].copy()
        perm[i], perm[j] = perm[j], perm[i]
        new_values = np.abs(perm[positions + 1] - perm[positions])
        state.cost += multiset_delta(state.counts, old_values, new_values)
        np.add.at(state.counts, old_values, -1)
        np.add.at(state.counts, new_values, 1)
        state.diffs[positions] = new_values

    def variable_errors(self, state: DeltaState) -> np.ndarray:
        duplicated = state.counts[state.diffs] > 1
        errors = np.zeros(self.size, dtype=float)
        errors[:-1] += duplicated
        errors[1:] += duplicated
        return errors
