"""N-Queens problem (extension benchmark).

Not part of the paper's evaluation, but the classical testbed of the
min-conflict heuristic the Adaptive Search repair step is built on
(Minton et al., cited by the paper).  Permutation encoding: ``Q_i`` is the
row of the queen in column ``i``; rows and columns are then all-different by
construction and only the two diagonal families can conflict.

Error model:

* global error = duplicated values among ``Q_i + i`` plus duplicated values
  among ``Q_i - i``;
* variable error of column ``i`` = number of its diagonals that are shared
  with at least one other queen.
"""

from __future__ import annotations

import numpy as np

from repro.csp.permutation import PermutationProblem

__all__ = ["NQueensProblem"]


def _duplicates_per_row(values: np.ndarray) -> np.ndarray:
    """Number of duplicated entries per row of a 2-D integer array."""
    sorted_values = np.sort(values, axis=1)
    distinct = 1 + np.count_nonzero(np.diff(sorted_values, axis=1), axis=1)
    return values.shape[1] - distinct


class NQueensProblem(PermutationProblem):
    """N-Queens as a permutation of rows over columns."""

    name = "n-queens"

    def __init__(self, n: int) -> None:
        if n < 4:
            raise ValueError(f"N-Queens is only solvable for n >= 4, got {n}")
        super().__init__(size=n, values=np.arange(n, dtype=np.int64))

    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        idx = np.arange(self.size)
        plus = _duplicates_per_row(perms + idx)
        minus = _duplicates_per_row(perms - idx)
        return (plus + minus).astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        perm = np.asarray(perm, dtype=np.int64)
        idx = np.arange(self.size)
        errors = np.zeros(self.size, dtype=float)
        for diag in (perm + idx, perm - idx):
            values, counts = np.unique(diag, return_counts=True)
            duplicated = values[counts > 1]
            errors += np.isin(diag, duplicated)
        return errors
