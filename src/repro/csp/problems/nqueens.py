"""N-Queens problem (extension benchmark).

Not part of the paper's evaluation, but the classical testbed of the
min-conflict heuristic the Adaptive Search repair step is built on
(Minton et al., cited by the paper).  Permutation encoding: ``Q_i`` is the
row of the queen in column ``i``; rows and columns are then all-different by
construction and only the two diagonal families can conflict.

Error model:

* global error = duplicated values among ``Q_i + i`` plus duplicated values
  among ``Q_i - i``;
* variable error of column ``i`` = number of its diagonals that are shared
  with at least one other queen.
"""

from __future__ import annotations

import numpy as np

from repro.csp.permutation import DeltaEvaluator, DeltaState, PermutationProblem

__all__ = ["NQueensDeltaEvaluator", "NQueensProblem"]


def _duplicates_per_row(values: np.ndarray) -> np.ndarray:
    """Number of duplicated entries per row of a 2-D integer array."""
    sorted_values = np.sort(values, axis=1)
    distinct = 1 + np.count_nonzero(np.diff(sorted_values, axis=1), axis=1)
    return values.shape[1] - distinct


class NQueensProblem(PermutationProblem):
    """N-Queens as a permutation of rows over columns."""

    name = "n-queens"

    def __init__(self, n: int) -> None:
        if n < 4:
            raise ValueError(f"N-Queens is only solvable for n >= 4, got {n}")
        super().__init__(size=n, values=np.arange(n, dtype=np.int64))

    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        idx = np.arange(self.size)
        plus = _duplicates_per_row(perms + idx)
        minus = _duplicates_per_row(perms - idx)
        return (plus + minus).astype(float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        perm = np.asarray(perm, dtype=np.int64)
        idx = np.arange(self.size)
        errors = np.zeros(self.size, dtype=float)
        for diag in (perm + idx, perm - idx):
            values, counts = np.unique(diag, return_counts=True)
            duplicated = values[counts > 1]
            errors += np.isin(diag, duplicated)
        return errors

    def _make_delta_evaluator(self) -> "NQueensDeltaEvaluator":
        return NQueensDeltaEvaluator(self)


class _NQueensState(DeltaState):
    """Diagonal occupancy counters (one slot per diagonal, both families)."""

    def __init__(self, perm: np.ndarray, cost: int, counts: np.ndarray) -> None:
        super().__init__(perm, cost)
        # Flat occupancy of all 2 * (2n-1) diagonals; "+" family first.
        self.counts = counts


class NQueensDeltaEvaluator(DeltaEvaluator):
    """O(n) swap deltas from diagonal occupancy counters.

    The global error is ``sum(max(occupancy - 1, 0))`` over both diagonal
    families.  A swap of columns ``i`` and ``j`` moves one queen off each of
    four diagonals and onto four others; since the queens' values are
    distinct, the vacated and entered slots never coincide (for ``j != i``)
    and the only collisions to handle are *within* the removal pair and
    *within* the addition pair of each family.  Both families are evaluated
    on one stacked ``(2, n)`` slot array to halve the per-iteration numpy
    call count (the solver hot path is call-overhead bound at these sizes).
    """

    def __init__(self, problem: NQueensProblem) -> None:
        super().__init__(problem)
        n = self.size
        idx = np.arange(n)
        # Slot layout: "+" diagonals at [0, 2n-1), "-" diagonals shifted by
        # width so one flat counter array serves both families.
        width = 2 * n - 1
        self._width = width
        self._minus_base = (n - 1) + width
        # Per-position slot offsets of both families: row 0 = +idx (plus
        # family), row 1 = minus_base - idx (minus family).
        self._family_offsets = np.stack([idx, self._minus_base - idx])

    def attach(self, perm: np.ndarray) -> _NQueensState:
        perm = np.array(perm, dtype=np.int64)
        n = self.size
        idx = np.arange(n)
        counts = np.bincount(
            np.concatenate([perm + idx, perm - idx + self._minus_base]),
            minlength=2 * self._width,
        )
        cost = int(np.maximum(counts - 1, 0).sum())
        return _NQueensState(perm, cost, counts)

    def swap_deltas(self, state: DeltaState, index: int) -> np.ndarray:
        perm = state.perm
        counts = state.counts
        value = int(perm[index])
        # Vacated slots: both queens' current diagonals.  Entered slots: the
        # candidate's value on `index`'s column and vice versa.  Shapes are
        # (2, n): one row per diagonal family.
        vacated_index = np.array(
            [[value + index], [value - index + self._minus_base]]
        )
        vacated_candidate = perm[None, :] + self._family_offsets
        entered_index = perm[None, :] + np.array([[index], [self._minus_base - index]])
        entered_candidate = value + self._family_offsets

        occ_vi = counts[vacated_index]
        occ_vj = counts[vacated_candidate]
        removal = np.where(
            vacated_candidate == vacated_index,
            # both queens sit on this diagonal: occupancy c >= 2 drops by 2
            -np.minimum(occ_vi - 1, 2),
            -((occ_vi >= 2).astype(np.int64) + (occ_vj >= 2)),
        )
        occ_ei = counts[entered_index]
        occ_ej = counts[entered_candidate]
        addition = np.where(
            entered_index == entered_candidate,
            np.minimum(occ_ei + 1, 2),
            (occ_ei >= 1).astype(np.int64) + (occ_ej >= 1),
        )
        delta = (removal + addition).sum(axis=0)
        delta[index] = 0
        return delta.astype(float)

    def _delta_one(self, counts: np.ndarray, i: int, j: int, vi: int, vj: int) -> int:
        """Scalar swap delta in pure Python arithmetic (commit fast path)."""
        delta = 0
        for r1, r2, a1, a2 in (
            (vi + i, vj + j, vj + i, vi + j),
            (
                vi - i + self._minus_base,
                vj - j + self._minus_base,
                vj - i + self._minus_base,
                vi - j + self._minus_base,
            ),
        ):
            c1 = int(counts[r1])
            if r1 == r2:
                delta -= min(c1 - 1, 2)
            else:
                delta -= (c1 >= 2) + (int(counts[r2]) >= 2)
            c3 = int(counts[a1])
            if a1 == a2:
                delta += min(c3 + 1, 2)
            else:
                delta += (c3 >= 1) + (int(counts[a2]) >= 1)
        return delta

    def commit_swap(self, state: DeltaState, i: int, j: int) -> None:
        if i == j:
            return
        perm = state.perm
        counts = state.counts
        vi, vj = int(perm[i]), int(perm[j])
        state.cost += self._delta_one(counts, i, j, vi, vj)
        base = self._minus_base
        counts[vi + i] -= 1
        counts[vj + j] -= 1
        counts[vj + i] += 1
        counts[vi + j] += 1
        counts[vi - i + base] -= 1
        counts[vj - j + base] -= 1
        counts[vj - i + base] += 1
        counts[vi - j + base] += 1
        perm[i], perm[j] = perm[j], perm[i]

    def variable_errors(self, state: DeltaState) -> np.ndarray:
        shared = state.counts[state.perm[None, :] + self._family_offsets] > 1
        return shared.sum(axis=0).astype(float)
