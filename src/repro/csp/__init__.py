"""Constraint-satisfaction substrate for constraint-based local search.

The paper's Las Vegas algorithm (Adaptive Search) solves Constraint
Satisfaction Problems by iterative repair guided by *error functions*: each
constraint reports how far it is from being satisfied, errors are projected
onto the variables, and the worst variable is repaired.  This package
provides:

* :mod:`repro.csp.model` — a general CSP model (variables, domains,
  constraints with error functions, error projection).
* :mod:`repro.csp.constraints` — the concrete constraints needed by the
  benchmarks (all-different, linear sums, all-different over derived terms).
* :mod:`repro.csp.permutation` — the permutation-search-space interface the
  Adaptive Search solver consumes, plus an adapter turning a general CSP
  over a permutation of values into that interface.
* :mod:`repro.csp.problems` — the paper's three benchmarks (ALL-INTERVAL,
  MAGIC-SQUARE, COSTAS ARRAY) and two extension problems (N-Queens,
  Langford pairing).
"""

from repro.csp.constraints import (
    AllDifferentConstraint,
    FunctionalAllDifferentConstraint,
    LinearSumConstraint,
)
from repro.csp.model import CSP, Constraint, Variable
from repro.csp.permutation import CSPPermutationAdapter, PermutationProblem
from repro.csp.problems import (
    AllIntervalProblem,
    CostasArrayProblem,
    LangfordProblem,
    MagicSquareProblem,
    NQueensProblem,
)

__all__ = [
    "AllDifferentConstraint",
    "AllIntervalProblem",
    "CSP",
    "CSPPermutationAdapter",
    "Constraint",
    "CostasArrayProblem",
    "FunctionalAllDifferentConstraint",
    "LangfordProblem",
    "LinearSumConstraint",
    "MagicSquareProblem",
    "NQueensProblem",
    "PermutationProblem",
    "Variable",
]
