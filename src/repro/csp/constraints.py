"""Concrete constraints with error functions.

The error function of a constraint measures "how much the constraint is
violated" (paper, Section 4.2).  The three constraints implemented here are
exactly the building blocks of the paper's benchmarks:

* :class:`AllDifferentConstraint` — duplicated values (ALL-INTERVAL and the
  permutation structure of every benchmark).
* :class:`LinearSumConstraint` — ``sum(a_i * X_i) = target`` with error
  ``|sum - target|`` (MAGIC-SQUARE rows/columns/diagonals).
* :class:`FunctionalAllDifferentConstraint` — all-different over derived
  terms ``g(assignment)`` (ALL-INTERVAL's consecutive differences, COSTAS'
  displacement vectors, N-Queens' diagonals).
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

from repro.csp.model import Constraint

__all__ = [
    "AllDifferentConstraint",
    "FunctionalAllDifferentConstraint",
    "LinearSumConstraint",
]


def _duplicate_count(values: Sequence[int]) -> int:
    """Number of elements in excess of one per distinct value.

    This is the natural all-different error: 0 when all values are distinct,
    and each extra duplicate adds 1.
    """
    return len(values) - len(set(values))


class AllDifferentConstraint(Constraint):
    """All listed variables must take pairwise different values."""

    def __init__(self, variable_names: Sequence[str], weight: float = 1.0) -> None:
        if len(variable_names) < 2:
            raise ValueError("all-different needs at least two variables")
        if len(set(variable_names)) != len(variable_names):
            raise ValueError("all-different variable list contains duplicates")
        self._names = tuple(variable_names)
        self.weight = float(weight)

    @property
    def variable_names(self) -> tuple[str, ...]:
        return self._names

    def error(self, assignment: Mapping[str, int]) -> float:
        return float(_duplicate_count([assignment[name] for name in self._names]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AllDifferent({len(self._names)} variables)"


class LinearSumConstraint(Constraint):
    """``sum(coefficient_i * X_i) == target`` with error ``|sum - target|``."""

    def __init__(
        self,
        variable_names: Sequence[str],
        target: float,
        coefficients: Sequence[float] | None = None,
        weight: float = 1.0,
    ) -> None:
        if not variable_names:
            raise ValueError("linear sum needs at least one variable")
        self._names = tuple(variable_names)
        self.target = float(target)
        if coefficients is None:
            self.coefficients = tuple(1.0 for _ in self._names)
        else:
            if len(coefficients) != len(self._names):
                raise ValueError("coefficients and variables must have the same length")
            self.coefficients = tuple(float(c) for c in coefficients)
        self.weight = float(weight)

    @property
    def variable_names(self) -> tuple[str, ...]:
        return self._names

    def error(self, assignment: Mapping[str, int]) -> float:
        total = sum(c * assignment[name] for c, name in zip(self.coefficients, self._names))
        return abs(total - self.target)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LinearSum({len(self._names)} variables == {self.target})"


class FunctionalAllDifferentConstraint(Constraint):
    """All-different over derived terms computed from the assignment.

    Parameters
    ----------
    variable_names:
        Variables the derived terms depend on (for error projection).
    terms:
        Callable mapping the assignment to the sequence of derived values
        that must be pairwise distinct (e.g. consecutive absolute
        differences for ALL-INTERVAL).
    """

    def __init__(
        self,
        variable_names: Sequence[str],
        terms: Callable[[Mapping[str, int]], Sequence[int]],
        weight: float = 1.0,
    ) -> None:
        if not variable_names:
            raise ValueError("functional all-different needs at least one variable")
        self._names = tuple(variable_names)
        self._terms = terms
        self.weight = float(weight)

    @property
    def variable_names(self) -> tuple[str, ...]:
        return self._names

    def error(self, assignment: Mapping[str, int]) -> float:
        return float(_duplicate_count(list(self._terms(assignment))))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FunctionalAllDifferent({len(self._names)} variables)"
