"""General CSP model with error functions (paper, Section 4.1–4.2).

A CSP is a triple ``(X, D, C)``: variables, finite domains and constraints.
For constraint-based local search every constraint additionally carries an
*error function* returning, for a full assignment, a non-negative measure of
how much the constraint is violated (0 when satisfied).  The model supports
the two operations Adaptive Search needs:

* total cost of an assignment (sum of constraint errors, optionally
  weighted), and
* projection of constraint errors onto variables (the per-variable
  aggregation the solver uses to pick the "culprit" variable).
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Mapping, Sequence

import numpy as np

__all__ = ["CSP", "Constraint", "Variable"]


@dataclasses.dataclass(frozen=True)
class Variable:
    """A decision variable with a finite integer domain.

    Attributes
    ----------
    name:
        Unique variable name.
    domain:
        Tuple of admissible integer values.
    """

    name: str
    domain: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if len(self.domain) == 0:
            raise ValueError(f"variable {self.name!r} has an empty domain")
        if len(set(self.domain)) != len(self.domain):
            raise ValueError(f"variable {self.name!r} has duplicate domain values")


class Constraint(abc.ABC):
    """A constraint over a subset of variables, equipped with an error function.

    Subclasses implement :meth:`error`, returning 0 when the constraint is
    satisfied by the assignment and a positive "distance to satisfaction"
    otherwise (e.g. ``max(0, |X - Y| - c)`` for ``|X - Y| < c``), and declare
    the variables they constrain via :attr:`variable_names`.
    """

    #: Relative weight of this constraint in the global cost (paper: priorities).
    weight: float = 1.0

    @property
    @abc.abstractmethod
    def variable_names(self) -> tuple[str, ...]:
        """Names of the variables this constraint involves."""

    @abc.abstractmethod
    def error(self, assignment: Mapping[str, int]) -> float:
        """Error of the constraint under a full assignment (0 = satisfied)."""

    def is_satisfied(self, assignment: Mapping[str, int]) -> bool:
        """Whether the constraint holds under the assignment."""
        return self.error(assignment) == 0.0


class CSP:
    """A constraint satisfaction problem ``(X, D, C)`` with error projection.

    Parameters
    ----------
    variables:
        The problem's variables (names must be unique).
    constraints:
        Constraints over those variables; every constrained variable must be
        declared.
    """

    def __init__(self, variables: Sequence[Variable], constraints: Sequence[Constraint]) -> None:
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError("variable names must be unique")
        if not variables:
            raise ValueError("a CSP needs at least one variable")
        self.variables: tuple[Variable, ...] = tuple(variables)
        self.constraints: tuple[Constraint, ...] = tuple(constraints)
        self._index = {name: i for i, name in enumerate(names)}
        for constraint in self.constraints:
            unknown = [n for n in constraint.variable_names if n not in self._index]
            if unknown:
                raise ValueError(f"constraint {constraint!r} references unknown variables {unknown}")

    # ------------------------------------------------------------------
    @property
    def variable_names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def variable_index(self, name: str) -> int:
        """Position of a variable in the canonical ordering."""
        return self._index[name]

    def constraints_on(self, name: str) -> tuple[Constraint, ...]:
        """Constraints involving the named variable."""
        return tuple(c for c in self.constraints if name in c.variable_names)

    # ------------------------------------------------------------------
    def cost(self, assignment: Mapping[str, int]) -> float:
        """Global cost: weighted sum of constraint errors (0 iff solution)."""
        self._check_assignment(assignment)
        return float(sum(c.weight * c.error(assignment) for c in self.constraints))

    def constraint_errors(self, assignment: Mapping[str, int]) -> np.ndarray:
        """Unweighted error of each constraint, in declaration order."""
        self._check_assignment(assignment)
        return np.array([c.error(assignment) for c in self.constraints], dtype=float)

    def variable_errors(self, assignment: Mapping[str, int]) -> dict[str, float]:
        """Project constraint errors onto variables (paper, Section 4.2).

        Each variable receives the weighted sum of the errors of the
        constraints it appears in ("combination of errors is
        problem-dependent [...] usually a simple sum").
        """
        self._check_assignment(assignment)
        errors = {name: 0.0 for name in self.variable_names}
        for constraint in self.constraints:
            err = constraint.weight * constraint.error(assignment)
            if err == 0.0:
                continue
            for name in constraint.variable_names:
                errors[name] += err
        return errors

    def is_solution(self, assignment: Mapping[str, int]) -> bool:
        """Whether every constraint is satisfied and domains are respected."""
        self._check_assignment(assignment)
        for variable in self.variables:
            if assignment[variable.name] not in variable.domain:
                return False
        return all(c.is_satisfied(assignment) for c in self.constraints)

    # ------------------------------------------------------------------
    def random_assignment(self, rng: np.random.Generator) -> dict[str, int]:
        """Uniformly random assignment drawing each variable from its domain."""
        return {
            v.name: int(v.domain[rng.integers(len(v.domain))]) for v in self.variables
        }

    def _check_assignment(self, assignment: Mapping[str, int]) -> None:
        missing = [name for name in self.variable_names if name not in assignment]
        if missing:
            raise KeyError(f"assignment is missing variables {missing}")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSP(n_variables={len(self.variables)}, n_constraints={len(self.constraints)})"
