"""Permutation search spaces for constraint-based local search.

All three of the paper's benchmarks are naturally modelled as *permutation
problems*: the configuration is a permutation of a fixed multiset of values
and the local-search move is a swap of two positions.  (This is also how the
reference Adaptive Search implementation encodes them.)

:class:`PermutationProblem` is the interface the solvers consume; it asks
for a vectorised batched cost so that the solver can evaluate every
candidate swap of the culprit variable in one numpy call, and for the
per-variable error projection used to select that culprit.
:class:`CSPPermutationAdapter` bridges the general :class:`repro.csp.model.CSP`
model to this interface for problems whose variables form a permutation.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.csp.model import CSP

__all__ = ["CSPPermutationAdapter", "PermutationProblem"]


class PermutationProblem(abc.ABC):
    """A CSP whose configurations are permutations of :attr:`values`.

    Subclasses implement the batched cost :meth:`cost_many` (vectorised over
    a 2-D array of candidate permutations) and the per-variable error
    projection :meth:`variable_errors`.
    """

    #: Problem family name (e.g. ``"all-interval"``).
    name: str = "permutation-problem"

    def __init__(self, size: int, values: np.ndarray | None = None) -> None:
        if size < 2:
            raise ValueError(f"a permutation problem needs at least 2 positions, got {size}")
        self.size = int(size)
        if values is None:
            values = np.arange(self.size, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if values.size != self.size:
            raise ValueError(f"expected {self.size} values, got {values.size}")
        self.values = values

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        """Global error of each configuration in a batch.

        Parameters
        ----------
        perms:
            Integer array of shape ``(batch, size)``; each row is a
            permutation of :attr:`values`.

        Returns
        -------
        numpy.ndarray
            Float array of shape ``(batch,)`` with the global error of each
            configuration (0 exactly for solutions).
        """

    @abc.abstractmethod
    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        """Constraint errors projected onto the variables (length ``size``)."""

    # ------------------------------------------------------------------
    def cost(self, perm: np.ndarray) -> float:
        """Global error of a single configuration."""
        perm = np.asarray(perm, dtype=np.int64)
        return float(self.cost_many(perm[None, :])[0])

    def is_solution(self, perm: np.ndarray) -> bool:
        """Whether the configuration satisfies every constraint."""
        return self.cost(perm) == 0.0

    def check_permutation(self, perm: np.ndarray) -> bool:
        """Whether ``perm`` is a permutation of :attr:`values`."""
        perm = np.asarray(perm, dtype=np.int64)
        return perm.size == self.size and np.array_equal(np.sort(perm), np.sort(self.values))

    def random_configuration(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random permutation of :attr:`values`."""
        return rng.permutation(self.values)

    def swap_costs(self, perm: np.ndarray, index: int) -> np.ndarray:
        """Cost of swapping position ``index`` with every position.

        Returns an array ``c`` of length ``size`` where ``c[j]`` is the
        global error of the configuration obtained by exchanging the values
        at positions ``index`` and ``j`` (``c[index]`` is the current cost).
        The default implementation builds the batch of candidate
        configurations and calls :meth:`cost_many`; problems with cheap
        incremental evaluations may override it.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range for size {self.size}")
        batch = np.repeat(perm[None, :], self.size, axis=0)
        columns = np.arange(self.size)
        batch[columns, columns] = perm[index]
        batch[columns, index] = perm[columns]
        return np.asarray(self.cost_many(batch), dtype=float)

    def describe(self) -> str:
        """Human-readable instance label (e.g. ``"costas-array 10"``)."""
        return f"{self.name} {self.size}"


class CSPPermutationAdapter(PermutationProblem):
    """Expose a general :class:`CSP` over permuted values as a permutation problem.

    The adapter assigns the ``i``-th CSP variable the value at position ``i``
    of the permutation.  It is intentionally unoptimised (one Python-level
    error evaluation per configuration); its role is cross-validation of the
    specialised benchmark implementations and support for user-defined CSPs.
    """

    name = "csp-adapter"

    def __init__(self, csp: CSP, values: Sequence[int] | np.ndarray) -> None:
        super().__init__(size=len(csp.variables), values=np.asarray(values, dtype=np.int64))
        self.csp = csp
        self._names = csp.variable_names

    def _assignment(self, perm: np.ndarray) -> dict[str, int]:
        return {name: int(v) for name, v in zip(self._names, perm)}

    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        return np.array([self.csp.cost(self._assignment(row)) for row in perms], dtype=float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        errors = self.csp.variable_errors(self._assignment(np.asarray(perm, dtype=np.int64)))
        return np.array([errors[name] for name in self._names], dtype=float)
