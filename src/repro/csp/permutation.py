"""Permutation search spaces for constraint-based local search.

All three of the paper's benchmarks are naturally modelled as *permutation
problems*: the configuration is a permutation of a fixed multiset of values
and the local-search move is a swap of two positions.  (This is also how the
reference Adaptive Search implementation encodes them.)

:class:`PermutationProblem` is the interface the solvers consume; it asks
for a vectorised batched cost so that the solver can evaluate every
candidate swap of the culprit variable in one numpy call, and for the
per-variable error projection used to select that culprit.
:class:`CSPPermutationAdapter` bridges the general :class:`repro.csp.model.CSP`
model to this interface for problems whose variables form a permutation.

:class:`DeltaEvaluator` is the incremental-evaluation contract: instead of
rebuilding an ``(n, n)`` candidate batch and recomputing the full global
error for every candidate swap (O(n^2)-O(n^3) per solver iteration), a
delta evaluator maintains problem-specific counters attached to the current
configuration and answers "what would each swap cost?" in O(n).  The batch
:meth:`PermutationProblem.swap_costs` path is kept as the cross-check
oracle and as the automatic fallback for problems without a specialised
kernel (e.g. :class:`CSPPermutationAdapter`).

The attach/commit/reset lifecycle is the permutation instantiation of the
generic :class:`repro.evaluation.IncrementalEvaluator` contract — the SAT
clause state (:mod:`repro.sat.incremental`) is the other instantiation, and
the solvers select between incremental and batch paths through the shared
:mod:`repro.evaluation` plumbing.
"""

from __future__ import annotations

import abc
from typing import Sequence

import numpy as np

from repro.csp.model import CSP
from repro.evaluation import IncrementalEvaluator, IncrementalState

__all__ = [
    "CSPPermutationAdapter",
    "DeltaEvaluator",
    "DeltaState",
    "PermutationProblem",
]


def multiset_delta(counts: np.ndarray, removed: Sequence[int], added: Sequence[int]) -> int:
    """Change in ``sum(max(count - 1, 0))`` after a multiset update.

    ``counts`` is a flat occurrence-counter array; ``removed`` / ``added``
    are (possibly repeating) flat slot indices.  Only the *net* multiplicity
    per slot matters because the duplicate-count contribution of a slot
    depends on its final count alone.  Used by the commit paths of the
    counter-based delta kernels.
    """
    net: dict[int, int] = {}
    for slot in removed:
        slot = int(slot)
        net[slot] = net.get(slot, 0) - 1
    for slot in added:
        slot = int(slot)
        net[slot] = net.get(slot, 0) + 1
    delta = 0
    for slot, change in net.items():
        if change == 0:
            continue
        count = int(counts[slot])
        delta += max(count + change - 1, 0) - max(count - 1, 0)
    return delta


class DeltaState(IncrementalState):
    """Mutable incremental-evaluation state bound to one configuration.

    Attributes
    ----------
    perm:
        The configuration the state describes.  Owned by the state: it is a
        copy of the array passed to :meth:`DeltaEvaluator.attach` and is
        mutated in place by :meth:`DeltaEvaluator.commit_swap`.
    cost:
        The *exact* (integer) global error of :attr:`perm`.  Kept as a
        Python ``int`` so that ``float(cost)`` is bit-identical to the
        float produced by the batched :meth:`PermutationProblem.cost_many`
        oracle (all benchmark error functions are integer-valued).
    """

    def __init__(self, perm: np.ndarray, cost: int) -> None:
        self.perm = perm
        self.cost = cost


class DeltaEvaluator(IncrementalEvaluator):
    """Incremental (delta) evaluation of the swap neighbourhood.

    Contract, for a ``state`` attached to permutation ``p`` with exact cost
    ``c = problem.cost(p)``:

    * :meth:`swap_deltas` returns an integer-valued float array ``d`` of
      length ``size`` with ``c + d[j] == problem.cost(swap(p, i, j))``
      *exactly* (and ``d[i] == 0``), so a solver consuming deltas takes
      bit-identical decisions to one consuming the batched
      :meth:`PermutationProblem.swap_costs` oracle;
    * :meth:`commit_swap` applies one swap and updates the counters and
      :attr:`DeltaState.cost` in O(size);
    * :meth:`reset` rebinds the state to an arbitrary new configuration
      (used after partial resets and restarts).
    """

    def __init__(self, problem: "PermutationProblem") -> None:
        self.problem = problem
        self.size = problem.size

    @abc.abstractmethod
    def attach(self, perm: np.ndarray) -> DeltaState:
        """Build the incremental state for a configuration (copies ``perm``)."""

    @abc.abstractmethod
    def swap_deltas(self, state: DeltaState, index: int) -> np.ndarray:
        """Cost change of swapping ``index`` with every position.

        Returns a float array ``d`` of length ``size`` where
        ``state.cost + d[j]`` is the exact global error after exchanging
        the values at positions ``index`` and ``j`` (``d[index]`` is 0).
        """

    @abc.abstractmethod
    def commit_swap(self, state: DeltaState, i: int, j: int) -> None:
        """Apply the swap ``(i, j)`` to the state (perm, counters and cost)."""

    def variable_errors(self, state: DeltaState) -> np.ndarray:
        """Per-variable errors of the attached configuration.

        Must equal ``problem.variable_errors(state.perm)`` exactly; the
        default recomputes from scratch, specialised evaluators answer from
        their counters.
        """
        return self.problem.variable_errors(state.perm)


class PermutationProblem(abc.ABC):
    """A CSP whose configurations are permutations of :attr:`values`.

    Subclasses implement the batched cost :meth:`cost_many` (vectorised over
    a 2-D array of candidate permutations) and the per-variable error
    projection :meth:`variable_errors`.
    """

    #: Problem family name (e.g. ``"all-interval"``).
    name: str = "permutation-problem"

    #: Smallest instance size at which the delta kernel beats the batched
    #: cost function, as measured by ``benchmarks/test_bench_delta.py``.
    #: ``None`` means the kernel wins at every size.  Solvers in
    #: ``evaluation="auto"`` mode fall back to the batch path below this
    #: size — a pure speed decision, both paths being bit-identical.
    incremental_min_size: int | None = None

    def __init__(self, size: int, values: np.ndarray | None = None) -> None:
        if size < 2:
            raise ValueError(f"a permutation problem needs at least 2 positions, got {size}")
        self.size = int(size)
        if values is None:
            values = np.arange(self.size, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if values.size != self.size:
            raise ValueError(f"expected {self.size} values, got {values.size}")
        self.values = values

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        """Global error of each configuration in a batch.

        Parameters
        ----------
        perms:
            Integer array of shape ``(batch, size)``; each row is a
            permutation of :attr:`values`.

        Returns
        -------
        numpy.ndarray
            Float array of shape ``(batch,)`` with the global error of each
            configuration (0 exactly for solutions).
        """

    @abc.abstractmethod
    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        """Constraint errors projected onto the variables (length ``size``)."""

    # ------------------------------------------------------------------
    def cost(self, perm: np.ndarray) -> float:
        """Global error of a single configuration."""
        perm = np.asarray(perm, dtype=np.int64)
        return float(self.cost_many(perm[None, :])[0])

    def is_solution(self, perm: np.ndarray) -> bool:
        """Whether the configuration satisfies every constraint."""
        return self.cost(perm) == 0.0

    def check_permutation(self, perm: np.ndarray) -> bool:
        """Whether ``perm`` is a permutation of :attr:`values`."""
        perm = np.asarray(perm, dtype=np.int64)
        return perm.size == self.size and np.array_equal(np.sort(perm), np.sort(self.values))

    def random_configuration(self, rng: np.random.Generator) -> np.ndarray:
        """Uniformly random permutation of :attr:`values`."""
        return rng.permutation(self.values)

    def swap_costs(self, perm: np.ndarray, index: int) -> np.ndarray:
        """Cost of swapping position ``index`` with every position.

        Returns an array ``c`` of length ``size`` where ``c[j]`` is the
        global error of the configuration obtained by exchanging the values
        at positions ``index`` and ``j`` (``c[index]`` is the current cost).
        The default implementation builds the batch of candidate
        configurations and calls :meth:`cost_many`; problems with cheap
        incremental evaluations may override it.
        """
        perm = np.asarray(perm, dtype=np.int64)
        if not 0 <= index < self.size:
            raise IndexError(f"index {index} out of range for size {self.size}")
        batch = np.repeat(perm[None, :], self.size, axis=0)
        columns = np.arange(self.size)
        batch[columns, columns] = perm[index]
        batch[columns, index] = perm[columns]
        return np.asarray(self.cost_many(batch), dtype=float)

    def delta_evaluator(self) -> DeltaEvaluator | None:
        """Specialised O(size) incremental evaluator, or ``None``.

        Problems without a delta kernel (such as
        :class:`CSPPermutationAdapter`) have no :meth:`_make_delta_evaluator`
        and solvers fall back to the batched :meth:`swap_costs` oracle.
        The evaluator is built lazily, once, and memoised under
        ``_delta_evaluator`` (which :meth:`__getstate__` excludes from
        pickles so engine-cache fingerprints stay stable).
        """
        evaluator = getattr(self, "_delta_evaluator", None)
        if evaluator is None:
            evaluator = self._delta_evaluator = self._make_delta_evaluator()
        return evaluator

    def _make_delta_evaluator(self) -> DeltaEvaluator | None:
        """Factory hook: build this problem's delta kernel (default: none)."""
        return None

    def __getstate__(self) -> dict:
        # The memoised evaluator is derived state: dropping it keeps the
        # pickled problem identical before and after a run touched it
        # (the engine's cache key hashes pickled content) and keeps
        # process-backend pickles small; workers rebuild it on demand.
        state = self.__dict__.copy()
        state.pop("_delta_evaluator", None)
        return state

    def describe(self) -> str:
        """Human-readable instance label (e.g. ``"costas-array 10"``)."""
        return f"{self.name} {self.size}"


class CSPPermutationAdapter(PermutationProblem):
    """Expose a general :class:`CSP` over permuted values as a permutation problem.

    The adapter assigns the ``i``-th CSP variable the value at position ``i``
    of the permutation.  It is intentionally unoptimised (one Python-level
    error evaluation per configuration); its role is cross-validation of the
    specialised benchmark implementations and support for user-defined CSPs.
    """

    name = "csp-adapter"

    def __init__(self, csp: CSP, values: Sequence[int] | np.ndarray) -> None:
        super().__init__(size=len(csp.variables), values=np.asarray(values, dtype=np.int64))
        self.csp = csp
        self._names = csp.variable_names

    def _assignment(self, perm: np.ndarray) -> dict[str, int]:
        return {name: int(v) for name, v in zip(self._names, perm)}

    def cost_many(self, perms: np.ndarray) -> np.ndarray:
        perms = np.asarray(perms, dtype=np.int64)
        if perms.ndim != 2 or perms.shape[1] != self.size:
            raise ValueError(f"expected shape (batch, {self.size}), got {perms.shape}")
        return np.array([self.csp.cost(self._assignment(row)) for row in perms], dtype=float)

    def variable_errors(self, perm: np.ndarray) -> np.ndarray:
        errors = self.csp.variable_errors(self._assignment(np.asarray(perm, dtype=np.int64)))
        return np.array([errors[name] for name in self._names], dtype=float)
