"""Randomized quicksort as a Las Vegas algorithm (paper's future-work example).

Randomized quicksort always produces a correctly sorted output, but its
comparison count depends on the random pivot choices — the textbook example
of a Las Vegas algorithm, explicitly named in the paper's conclusion as a
candidate for the prediction model.  The "runtime" reported here is the
number of comparisons performed while sorting a fixed input array, so the
distribution is induced purely by the pivot randomness.

Note that the comparison-count distribution of quicksort is concentrated
(standard deviation ``O(n)`` around a mean of ``~2 n ln n``), so the
predicted multi-walk speed-up saturates almost immediately — a useful
negative example showing the model also predicts when parallelisation is
*not* worth it.
"""

from __future__ import annotations


import numpy as np

from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["RandomizedQuicksort"]


class RandomizedQuicksort(LasVegasAlgorithm):
    """Count comparisons of randomized quicksort on a fixed input array.

    Parameters
    ----------
    data:
        The array to sort; by default a fixed adversarially-ordered
        (already sorted) array of length ``n`` is used so that the only
        randomness left is the pivot choice.
    n:
        Length of the default input when ``data`` is not supplied.
    """

    def __init__(self, n: int = 256, data: np.ndarray | None = None) -> None:
        if data is not None:
            self.data = np.asarray(data).copy()
            if self.data.size < 2:
                raise ValueError("need at least two elements to sort")
        else:
            if n < 2:
                raise ValueError(f"n must be >= 2, got {n}")
            self.data = np.arange(n)
        self.name = f"randomized-quicksort[n={self.data.size}]"

    def _run(self, rng: np.random.Generator) -> RunResult:
        values = self.data.copy()
        comparisons = 0

        # Iterative quicksort with random pivots (avoids Python recursion limits).
        stack: list[tuple[int, int]] = [(0, values.size - 1)]
        while stack:
            low, high = stack.pop()
            if low >= high:
                continue
            pivot_index = int(rng.integers(low, high + 1))
            pivot = values[pivot_index]
            values[pivot_index], values[high] = values[high], values[pivot_index]
            store = low
            for i in range(low, high):
                comparisons += 1
                if values[i] < pivot:
                    values[i], values[store] = values[store], values[i]
                    store += 1
            values[store], values[high] = values[high], values[store]
            stack.append((low, store - 1))
            stack.append((store + 1, high))

        sorted_ok = bool(np.all(values[:-1] <= values[1:]))
        return RunResult(
            solved=sorted_ok,
            iterations=comparisons,
            runtime_seconds=0.0,
            solution=values,
            restarts=0,
        )
