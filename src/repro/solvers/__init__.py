"""Las Vegas algorithms used as subjects of the speed-up prediction model.

* :mod:`repro.solvers.base` — the :class:`LasVegasAlgorithm` interface and
  :class:`RunResult` record shared by every solver.
* :mod:`repro.solvers.adaptive_search` — the paper's algorithm: the
  Adaptive Search constraint-based local-search metaheuristic.
* :mod:`repro.solvers.random_restart` — a plain min-conflict hill climber
  with random restarts, used as a baseline Las Vegas algorithm.
* :mod:`repro.solvers.walksat` — the WalkSAT family on CNF formulas (the
  paper's future-work section explicitly names SAT solvers).
* :mod:`repro.solvers.policies` — the pluggable flip-picking policies of
  the WalkSAT family (SKC, Novelty, Novelty+, adaptive noise).
* :mod:`repro.solvers.quicksort` — randomized quicksort comparison counts
  (the paper's other named future-work example).
"""

from repro.solvers.adaptive_search import AdaptiveSearch, AdaptiveSearchConfig
from repro.solvers.base import LasVegasAlgorithm, RunResult
from repro.solvers.policies import POLICIES, FlipPolicy, make_policy
from repro.solvers.quicksort import RandomizedQuicksort
from repro.solvers.random_restart import RandomRestartSearch
from repro.solvers.walksat import WalkSAT, WalkSATConfig

__all__ = [
    "POLICIES",
    "AdaptiveSearch",
    "AdaptiveSearchConfig",
    "FlipPolicy",
    "LasVegasAlgorithm",
    "RandomizedQuicksort",
    "RandomRestartSearch",
    "RunResult",
    "WalkSAT",
    "WalkSATConfig",
    "make_policy",
]
