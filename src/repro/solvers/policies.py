"""Flip-picking policies for the WalkSAT solver family.

WalkSAT variants differ only in *which variable of the picked unsatisfied
clause they flip*; everything else — the incremental/batch clause state, the
restart machinery, the censoring bookkeeping — is shared.  This module
isolates that one decision behind the :class:`FlipPolicy` strategy surface
so :class:`~repro.solvers.walksat.WalkSAT` can run any member of the family
on either evaluation path:

* ``"walksat"`` — :class:`WalkSATPolicy`, the classic WalkSAT/SKC rule
  (Selman, Kautz & Cohen 1994): flip a free (break-count zero) variable if
  one exists, otherwise random-walk with probability ``noise`` and take the
  minimum-break variable otherwise.
* ``"novelty"`` — :class:`NoveltyPolicy` (McAllester, Selman & Kautz 1997):
  rank the clause's variables by score (break − make, i.e. the change in
  the number of unsatisfied clauses), ties broken by age then position;
  flip the best variable unless it is the most recently flipped one in the
  clause, in which case flip the second best with probability ``noise``.
* ``"novelty+"`` — :class:`NoveltyPlusPolicy` (Hoos 1999): with probability
  ``walk_probability`` take a uniform random-walk step over the clause,
  otherwise behave like Novelty — the random-walk escape provably makes
  the chain probabilistically approximately complete.
* ``"adaptive"`` — :class:`AdaptiveNoisePolicy`, adaptive noise à la Hoos
  2002: run the SKC rule but *tune* the noise online from the unsat-set
  size the clause state already maintains — raise it multiplicatively when
  the search stagnates (no new minimum for ``theta * n_clauses`` flips),
  lower it (at half that rate) whenever a new minimum is found.

Determinism contract
--------------------
Policies consult the clause state only through the
:class:`~repro.sat.incremental.ClausePath` queries (``break_count``,
``make_count``, ``n_unsat``), which the incremental and batch paths answer
identically, and they consume RNG draws in a state-independent order.  A
policy therefore produces bit-identical flip sequences on either path — the
same exactness contract the base solver pins (see
``tests/solvers/test_policies.py``).

Policies are *mutable per-run objects* (Novelty tracks flip ages, adaptive
noise tracks the best unsat count); :class:`~repro.solvers.walksat.WalkSAT`
builds a fresh one per run via :func:`make_policy`.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.sat.incremental import ClausePath

__all__ = [
    "POLICIES",
    "AdaptiveNoisePolicy",
    "FlipPolicy",
    "NoveltyPolicy",
    "NoveltyPlusPolicy",
    "WalkSATPolicy",
    "make_policy",
    "skc_select",
    "validate_policy",
]

#: Registered policy names, accepted by ``WalkSATConfig.policy`` and the
#: CLI ``--sat-policy`` flag.
POLICIES: tuple[str, ...] = ("walksat", "novelty", "novelty+", "adaptive")


def validate_policy(name: str) -> None:
    """Raise ``ValueError`` unless ``name`` is a registered policy."""
    if name not in POLICIES:
        raise ValueError(f"policy must be one of {POLICIES}, got {name!r}")


class FlipPolicy(abc.ABC):
    """Per-run strategy choosing which variable of an unsat clause to flip.

    Lifecycle: :meth:`start` binds the policy to a freshly initialised
    clause state (run start); :meth:`restart` re-binds it after the solver
    re-randomises the assignment; :meth:`pick` chooses the flip;
    :meth:`notify_flip` reports the committed flip (and the post-flip
    state) back, so stateful policies can track ages and progress.
    """

    def start(self, path: ClausePath) -> None:
        """Bind to a freshly initialised clause state (run start)."""

    def restart(self, path: ClausePath) -> None:
        """Re-bind after a restart (default: same as a fresh start)."""
        self.start(path)

    @abc.abstractmethod
    def pick(self, path: ClausePath, variables: list[int], rng: np.random.Generator) -> int:
        """Variable (0-based) of ``variables`` to flip under this policy."""

    def notify_flip(self, variable: int, flip_number: int, path: ClausePath) -> None:
        """Observe a committed flip and the post-flip clause state."""


def skc_select(breaks, rng: np.random.Generator, noise: float) -> int:
    """SKC selection on precomputed break counts; returns a *position*.

    The WalkSAT/SKC rule reduced to its RNG-consuming core: given the
    break counts of a clause's variable positions, pick the position to
    flip — a uniform free (zero-break) position if one exists, otherwise a
    uniform random-walk position with probability ``noise``, otherwise a
    uniform minimum-break position.  Every caller that feeds it the same
    break row consumes *identical* RNG draws (one ``integers`` call, with
    a ``random`` call on the no-free-variable branch), which is what lets
    the scalar policies and the lockstep kernel of
    :mod:`repro.sat.vectorized` share one stream-exact selection rule.

    ``breaks`` is any integer sequence (list or ndarray); pure-Python
    scanning keeps the common 3-literal rows cheap on both paths.
    """
    zeros = [index for index, count in enumerate(breaks) if count == 0]
    if zeros:
        return zeros[int(rng.integers(len(zeros)))]
    if rng.random() < noise:
        return int(rng.integers(len(breaks)))
    best = min(breaks)
    candidates = [index for index, count in enumerate(breaks) if count == best]
    return candidates[int(rng.integers(len(candidates)))]


def _skc_pick(
    path: ClausePath, variables: list[int], rng: np.random.Generator, noise: float
) -> int:
    """The WalkSAT/SKC selection rule at a given noise level.

    Exactly the historical inline rule of ``WalkSAT._run`` — same queries,
    same RNG draws, same tie-breaking — so the refactor to policy objects
    keeps the default solver bit-identical to its pre-policy behaviour.
    """
    breaks = [path.break_count(var) for var in variables]
    return variables[skc_select(breaks, rng, noise)]


class WalkSATPolicy(FlipPolicy):
    """WalkSAT/SKC: free variable, else noise walk, else minimum break."""

    def __init__(self, noise: float) -> None:
        self.noise = noise

    def pick(self, path: ClausePath, variables: list[int], rng: np.random.Generator) -> int:
        return _skc_pick(path, variables, rng, self.noise)


class NoveltyPolicy(FlipPolicy):
    """Novelty: best-scored variable unless it is the youngest in the clause.

    The score of a variable is ``break − make`` — the net change in the
    number of unsatisfied clauses its flip would cause (lower is better).
    Ties are broken in favour of the *least recently flipped* variable,
    then by clause position, so ranking needs no RNG draw.  The best
    variable is flipped outright unless it is the most recently flipped
    variable of the clause; in that case the second best is flipped with
    probability ``noise`` (``noise=0`` degenerates to deterministic greedy,
    ``noise=1`` always avoids the youngest variable).
    """

    def __init__(self, noise: float, n_variables: int) -> None:
        self.noise = noise
        self._last_flip = np.full(n_variables, -1, dtype=np.int64)

    def start(self, path: ClausePath) -> None:
        # Ages refer to the current trajectory; a restart voids them.
        self._last_flip.fill(-1)

    def _ranked(self, path: ClausePath, variables: list[int]) -> list[int]:
        scores = [path.break_count(var) - path.make_count(var) for var in variables]
        return sorted(
            range(len(variables)),
            key=lambda i: (scores[i], int(self._last_flip[variables[i]]), i),
        )

    def pick(self, path: ClausePath, variables: list[int], rng: np.random.Generator) -> int:
        if len(variables) == 1:
            return variables[0]
        order = self._ranked(path, variables)
        best = variables[order[0]]
        ages = self._last_flip[variables]
        youngest_age = int(ages.max())
        if youngest_age < 0 or best != variables[int(ages.argmax())]:
            # Nothing flipped yet, or the best variable is not the youngest.
            return best
        if rng.random() < self.noise:
            return variables[order[1]]
        return best

    def notify_flip(self, variable: int, flip_number: int, path: ClausePath) -> None:
        self._last_flip[variable] = flip_number


class NoveltyPlusPolicy(NoveltyPolicy):
    """Novelty+: a ``walk_probability`` random-walk escape over Novelty."""

    def __init__(self, noise: float, walk_probability: float, n_variables: int) -> None:
        super().__init__(noise, n_variables)
        self.walk_probability = walk_probability

    def pick(self, path: ClausePath, variables: list[int], rng: np.random.Generator) -> int:
        # The walk draw is taken unconditionally (before any state-dependent
        # branch), keeping RNG consumption identical on both paths.
        if rng.random() < self.walk_probability:
            return variables[int(rng.integers(len(variables)))]
        return super().pick(path, variables, rng)


class AdaptiveNoisePolicy(FlipPolicy):
    """SKC picking with noise tuned online from the unsat-set size.

    Hoos 2002's adaptive mechanism: start from ``initial_noise`` and watch
    the number of unsatisfied clauses the clause state already maintains.
    When no new minimum has been seen for ``theta * n_clauses`` flips the
    search is deemed stuck and the noise is raised,
    ``p ← p + (1 − p)·phi``; whenever a new minimum is found the noise is
    lowered at half that relative rate, ``p ← p − p·phi/2``.  Increases
    outpace decreases, so the policy escapes stagnation quickly and cools
    back down while progress lasts.  The learned noise survives restarts
    (it reflects the instance, not the trajectory); the stagnation window
    and the reference minimum reset with the assignment.
    """

    def __init__(
        self, initial_noise: float, n_clauses: int, theta: float, phi: float
    ) -> None:
        self.noise = initial_noise
        self._window = max(1, int(round(theta * n_clauses)))
        self._phi = phi
        self._best = 0
        self._flips_since_best = 0

    def start(self, path: ClausePath) -> None:
        self._best = path.n_unsat
        self._flips_since_best = 0

    def pick(self, path: ClausePath, variables: list[int], rng: np.random.Generator) -> int:
        return _skc_pick(path, variables, rng, self.noise)

    def notify_flip(self, variable: int, flip_number: int, path: ClausePath) -> None:
        if path.n_unsat < self._best:
            self._best = path.n_unsat
            self._flips_since_best = 0
            self.noise -= self.noise * self._phi / 2.0
        else:
            self._flips_since_best += 1
            if self._flips_since_best >= self._window:
                self.noise += (1.0 - self.noise) * self._phi
                self._flips_since_best = 0


def make_policy(
    name: str,
    *,
    noise: float,
    walk_probability: float,
    adaptive_theta: float,
    adaptive_phi: float,
    n_variables: int,
    n_clauses: int,
) -> FlipPolicy:
    """Build a fresh per-run policy object for a registered policy name."""
    validate_policy(name)
    if name == "walksat":
        return WalkSATPolicy(noise)
    if name == "novelty":
        return NoveltyPolicy(noise, n_variables)
    if name == "novelty+":
        return NoveltyPlusPolicy(noise, walk_probability, n_variables)
    return AdaptiveNoisePolicy(noise, n_clauses, adaptive_theta, adaptive_phi)
