"""Min-conflict hill climbing with random restarts (baseline Las Vegas algorithm).

A deliberately simple alternative to Adaptive Search: pick a conflicting
variable uniformly at random, apply the min-conflict swap, and restart from
a fresh random configuration when no improving move has been seen for a
while.  It solves the same permutation problems and is used as the
comparison algorithm in the ablation experiments (the speed-up prediction
model applies to *any* Las Vegas algorithm, not just Adaptive Search).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.csp.permutation import PermutationProblem
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["RandomRestartConfig", "RandomRestartSearch"]


@dataclasses.dataclass(frozen=True)
class RandomRestartConfig:
    """Parameters of the random-restart hill climber."""

    max_iterations: int = 100_000
    stall_limit: int = 50
    sideways_probability: float = 0.05

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.stall_limit < 1:
            raise ValueError(f"stall_limit must be >= 1, got {self.stall_limit}")
        if not 0.0 <= self.sideways_probability <= 1.0:
            raise ValueError(
                f"sideways_probability must be in [0, 1], got {self.sideways_probability}"
            )


class RandomRestartSearch(LasVegasAlgorithm):
    """Min-conflict hill climbing with random restarts over a permutation problem."""

    def __init__(
        self, problem: PermutationProblem, config: RandomRestartConfig | None = None
    ) -> None:
        self.problem = problem
        self.config = config or RandomRestartConfig()
        self.name = f"random-restart[{problem.describe()}]"

    def _run(self, rng: np.random.Generator) -> RunResult:
        problem = self.problem
        config = self.config

        current = problem.random_configuration(rng)
        cost = problem.cost(current)
        iterations = 0
        restarts = 0
        stall = 0

        while cost > 0.0 and iterations < config.max_iterations:
            iterations += 1

            errors = problem.variable_errors(current)
            conflicted = np.flatnonzero(errors > 0)
            if conflicted.size == 0:
                # Zero projected error but non-zero cost can only happen for
                # badly-specified problems; restart defensively.
                conflicted = np.arange(problem.size)
            variable = int(conflicted[rng.integers(conflicted.size)])

            swap_costs = problem.swap_costs(current, variable)
            swap_costs[variable] = np.inf
            best_j = int(np.argmin(swap_costs))
            best_cost = float(swap_costs[best_j])

            accept_sideways = best_cost == cost and rng.random() < config.sideways_probability
            if best_cost < cost or accept_sideways:
                current[variable], current[best_j] = current[best_j], current[variable]
                if best_cost < cost:
                    stall = 0
                else:
                    stall += 1
                cost = best_cost
            else:
                stall += 1

            if stall >= config.stall_limit:
                current = problem.random_configuration(rng)
                cost = problem.cost(current)
                restarts += 1
                stall = 0

        solved = cost == 0.0
        return RunResult(
            solved=solved,
            iterations=iterations,
            runtime_seconds=0.0,
            solution=current.copy() if solved else None,
            restarts=restarts,
        )
