"""WalkSAT — stochastic local search for SAT (extension Las Vegas algorithm).

The paper's conclusion proposes applying the prediction model to SAT
solvers; WalkSAT (Selman, Kautz & Cohen) is the canonical stochastic local
search SAT procedure and the engine behind the portfolio approaches the
paper cites.  One *flip* is counted as one iteration, making the iteration
counts directly comparable with the Adaptive Search benchmarks.

Algorithm (WalkSAT/SKC variant):

1. start from a uniformly random assignment;
2. pick an unsatisfied clause uniformly at random;
3. if some variable in it has break-count zero (flipping it breaks no
   currently-satisfied clause), flip such a "free" variable;
4. otherwise, with probability ``noise`` flip a random variable of the
   clause, and with probability ``1 - noise`` flip the variable with the
   minimum break-count;
5. repeat until the formula is satisfied or the flip budget is exhausted.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.sat.cnf import CNFFormula
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["WalkSAT", "WalkSATConfig"]


@dataclasses.dataclass(frozen=True)
class WalkSATConfig:
    """Parameters of the WalkSAT solver."""

    max_flips: int = 100_000
    noise: float = 0.5
    restart_after: int | None = None

    def __post_init__(self) -> None:
        if self.max_flips < 1:
            raise ValueError(f"max_flips must be >= 1, got {self.max_flips}")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {self.noise}")
        if self.restart_after is not None and self.restart_after < 1:
            raise ValueError(f"restart_after must be >= 1 or None, got {self.restart_after}")


class WalkSAT(LasVegasAlgorithm):
    """WalkSAT/SKC over a CNF formula."""

    def __init__(self, formula: CNFFormula, config: WalkSATConfig | None = None) -> None:
        self.formula = formula
        self.config = config or WalkSATConfig()
        self.name = f"walksat[{formula.n_variables}v/{formula.n_clauses}c]"

    def _run(self, rng: np.random.Generator) -> RunResult:
        formula = self.formula
        config = self.config

        assignment = formula.random_assignment(rng)
        flips = 0
        restarts = 0
        flips_since_restart = 0

        unsatisfied = formula.unsatisfied_clauses(assignment)
        while unsatisfied.size > 0 and flips < config.max_flips:
            if (
                config.restart_after is not None
                and flips_since_restart >= config.restart_after
            ):
                assignment = formula.random_assignment(rng)
                restarts += 1
                flips_since_restart = 0
                unsatisfied = formula.unsatisfied_clauses(assignment)
                continue

            clause_index = int(unsatisfied[rng.integers(unsatisfied.size)])
            clause = formula.clauses[clause_index]
            variables = [abs(lit) - 1 for lit in clause]
            breaks = np.array(
                [formula.break_count(assignment, var) for var in variables], dtype=np.int64
            )

            if (breaks == 0).any():
                candidates = np.flatnonzero(breaks == 0)
                chosen = variables[int(candidates[rng.integers(candidates.size)])]
            elif rng.random() < config.noise:
                chosen = variables[int(rng.integers(len(variables)))]
            else:
                candidates = np.flatnonzero(breaks == breaks.min())
                chosen = variables[int(candidates[rng.integers(candidates.size)])]

            assignment[chosen] = ~assignment[chosen]
            flips += 1
            flips_since_restart += 1
            unsatisfied = formula.unsatisfied_clauses(assignment)

        solved = unsatisfied.size == 0
        return RunResult(
            solved=solved,
            iterations=flips,
            runtime_seconds=0.0,
            solution=assignment.copy() if solved else None,
            restarts=restarts,
        )
