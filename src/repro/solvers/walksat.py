"""WalkSAT family — stochastic local search for SAT (extension Las Vegas algorithms).

The paper's conclusion proposes applying the prediction model to SAT
solvers; WalkSAT (Selman, Kautz & Cohen) is the canonical stochastic local
search SAT procedure and the engine behind the portfolio approaches the
paper cites.  One *flip* is counted as one iteration, making the iteration
counts directly comparable with the Adaptive Search benchmarks.

Shared skeleton (every policy):

1. start from a uniformly random assignment;
2. pick an unsatisfied clause uniformly at random;
3. flip the variable of that clause chosen by the configured
   :class:`~repro.solvers.policies.FlipPolicy` — WalkSAT/SKC, Novelty,
   Novelty+ or adaptive noise (see :mod:`repro.solvers.policies`);
4. repeat until the formula is satisfied or the flip budget is exhausted,
   re-randomising every ``restart_after`` flips when restarts are enabled.

Evaluation paths
----------------
The hot loop consumes a :class:`~repro.sat.incremental.ClausePath` — either
the *incremental* clause state (per-variable occurrence lists and cached
per-clause true-literal counts, O(occurrences of the flipped variable) per
flip) or the *batch* oracle (full re-evaluation through the vectorised
:class:`~repro.sat.cnf.CNFFormula` methods).  The two are exact mirrors:
for a given seed and policy they present the same clause for the same RNG
draw and produce bit-identical flip sequences, solutions and restart
counts — the same contract :class:`~repro.solvers.adaptive_search.AdaptiveSearch`
pins for its delta kernels (see :mod:`repro.evaluation`).  Policies only
query the path surface (``break_count``/``make_count``/``n_unsat``), which
is what extends the contract to the whole variant family.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.evaluation import resolve_evaluation_path, validate_evaluation_mode
from repro.sat import vectorized
from repro.sat.cnf import CNFFormula
from repro.sat.incremental import BatchClausePath, ClausePath, IncrementalClausePath
from repro.solvers.base import LasVegasAlgorithm, RunResult
from repro.solvers.policies import FlipPolicy, make_policy, validate_policy

__all__ = ["RESTART_SCHEDULES", "WalkSAT", "WalkSATConfig"]

#: Restart cutoff schedules accepted by ``WalkSATConfig.restart_schedule``.
RESTART_SCHEDULES: tuple[str, ...] = ("fixed", "luby")


@dataclasses.dataclass(frozen=True)
class WalkSATConfig:
    """Parameters of the WalkSAT solver family.

    Attributes
    ----------
    max_flips:
        Hard per-run flip budget; runs hitting it are reported as unsolved
        (censored observations).
    noise:
        Noise parameter of the configured policy.  For ``"walksat"``:
        probability of a random walk move when no free variable exists
        (``noise=0`` is deterministic greedy, ``noise=1`` a pure random
        walk over the picked clause).  For the Novelty family: probability
        of taking the second-best variable when the best one is the most
        recently flipped.  For ``"adaptive"``: the *initial* noise the
        online adaptation starts from.
    policy:
        Flip-picking policy: ``"walksat"`` (SKC, the default),
        ``"novelty"``, ``"novelty+"`` or ``"adaptive"`` — see
        :mod:`repro.solvers.policies`.
    walk_probability:
        Random-walk escape probability of ``"novelty+"`` (ignored by the
        other policies; Hoos 1999 recommends a small value).
    adaptive_theta, adaptive_phi:
        Adaptive-noise tuning of ``"adaptive"`` (ignored by the other
        policies): stagnation is declared after ``adaptive_theta *
        n_clauses`` flips without a new unsat-count minimum, and the noise
        moves by the relative step ``adaptive_phi`` (Hoos 2002 uses 1/6
        and 0.2).
    restart_after:
        Re-randomise the assignment every ``restart_after`` flips;
        ``None`` disables restarts.
    restart_schedule:
        Cutoff schedule when restarts are enabled: ``"fixed"`` (default)
        restarts every ``restart_after`` flips; ``"luby"`` scales the
        cutoffs by the Luby universal sequence (1, 1, 2, 1, 1, 2, 4, ...)
        of :func:`repro.core.restarts.luby_sequence`, i.e. segment ``i``
        runs for ``restart_after * luby(i)`` flips — the optimal universal
        restart strategy of Luby, Sinclair & Zuckerman 1993.  Ignored when
        ``restart_after`` is ``None``.  Scalar and lockstep paths honour
        the schedule identically.
    evaluation:
        Evaluation path: ``"auto"`` (default) uses the incremental clause
        state — for SAT it wins at every instance size; ``"incremental"``
        demands it; ``"batch"`` forces the full re-evaluation oracle.
        Both paths produce bit-identical runs for a given seed and policy.
    """

    max_flips: int = 100_000
    noise: float = 0.5
    policy: str = "walksat"
    walk_probability: float = 0.01
    adaptive_theta: float = 1.0 / 6.0
    adaptive_phi: float = 0.2
    restart_after: int | None = None
    restart_schedule: str = "fixed"
    evaluation: str = "auto"

    def __post_init__(self) -> None:
        if self.max_flips < 1:
            raise ValueError(f"max_flips must be >= 1, got {self.max_flips}")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {self.noise}")
        validate_policy(self.policy)
        if not 0.0 <= self.walk_probability <= 1.0:
            raise ValueError(
                f"walk_probability must be in [0, 1], got {self.walk_probability}"
            )
        if self.adaptive_theta <= 0.0:
            raise ValueError(f"adaptive_theta must be positive, got {self.adaptive_theta}")
        if not 0.0 <= self.adaptive_phi <= 1.0:
            raise ValueError(f"adaptive_phi must be in [0, 1], got {self.adaptive_phi}")
        if self.restart_after is not None and self.restart_after < 1:
            raise ValueError(f"restart_after must be >= 1 or None, got {self.restart_after}")
        if self.restart_schedule not in RESTART_SCHEDULES:
            raise ValueError(
                f"restart_schedule must be one of {RESTART_SCHEDULES}, "
                f"got {self.restart_schedule!r}"
            )
        validate_evaluation_mode(self.evaluation)


class WalkSAT(LasVegasAlgorithm):
    """WalkSAT-family solver over a CNF formula (policy-pluggable)."""

    def __init__(self, formula: CNFFormula, config: WalkSATConfig | None = None) -> None:
        self.formula = formula
        self.config = config or WalkSATConfig()
        suffix = "" if self.config.policy == "walksat" else f"/{self.config.policy}"
        self.name = f"walksat[{formula.n_variables}v/{formula.n_clauses}c]{suffix}"

    # ------------------------------------------------------------------
    def _clause_path(self) -> ClausePath:
        return resolve_evaluation_path(
            self.config.evaluation,
            describe=self.name,
            incremental=lambda: IncrementalClausePath(self.formula.clause_evaluator()),
            batch=lambda: BatchClausePath(self.formula),
            incremental_requirement="incremental ClauseEvaluator",
        )

    def _make_policy(self) -> FlipPolicy:
        """Fresh per-run policy object (policies are stateful)."""
        config = self.config
        return make_policy(
            config.policy,
            noise=config.noise,
            walk_probability=config.walk_probability,
            adaptive_theta=config.adaptive_theta,
            adaptive_phi=config.adaptive_phi,
            n_variables=self.formula.n_variables,
            n_clauses=self.formula.n_clauses,
        )

    def _run(self, rng: np.random.Generator) -> RunResult:
        formula = self.formula
        config = self.config

        path = self._clause_path()
        policy = self._make_policy()
        path.reinit(formula.random_assignment(rng))
        policy.start(path)
        flips = 0
        restarts = 0
        flips_since_restart = 0
        cutoff = vectorized.restart_cutoff(config.restart_after, config.restart_schedule, 0)

        while path.n_unsat > 0 and flips < config.max_flips:
            if cutoff is not None and flips_since_restart >= cutoff:
                path.reinit(formula.random_assignment(rng))
                policy.restart(path)
                restarts += 1
                flips_since_restart = 0
                cutoff = vectorized.restart_cutoff(
                    config.restart_after, config.restart_schedule, restarts
                )
                continue

            clause_index = path.unsat_clause(int(rng.integers(path.n_unsat)))
            clause = formula.clauses[clause_index]
            variables = [abs(lit) - 1 for lit in clause]
            chosen = policy.pick(path, variables, rng)

            path.flip(chosen)
            flips += 1
            flips_since_restart += 1
            policy.notify_flip(chosen, flips, path)

        solved = path.n_unsat == 0
        return RunResult(
            solved=solved,
            iterations=flips,
            runtime_seconds=0.0,
            solution=path.assignment.copy() if solved else None,
            restarts=restarts,
        )

    # ------------------------------------------------------------------
    def lockstep_supported(self) -> bool:
        """Whether :meth:`run_lockstep` batches this configuration.

        The lockstep kernel vectorises the SKC selection rule, covering
        the ``"walksat"`` and ``"adaptive"`` policies; the Novelty family
        tracks per-variable flip ages with a ranking step that has no
        batched implementation yet, so those configurations fall back to
        scalar runs (documented behaviour, not an error).
        """
        return self.config.policy in vectorized.LOCKSTEP_POLICIES

    def run_lockstep(self, seeds) -> list[RunResult]:
        """Run one independent walk per seed as a lockstep batch.

        Returns one :class:`RunResult` per seed, in seed order, each
        bit-identical (``solved``/``iterations``/``restarts``/``solution``/
        ``seed``) to ``self.run(seed)`` — the walks share one vectorised
        kernel call but consume per-walk RNG streams exactly as the scalar
        loop would (see :mod:`repro.sat.vectorized`).  Configurations the
        kernel does not vectorise (see :meth:`lockstep_supported`) are
        serviced by scalar runs, preserving the same contract.
        """
        if not self.lockstep_supported():
            return [self.run(int(seed)) for seed in seeds]
        return vectorized.run_lockstep(self.formula, self.config, list(seeds))
