"""WalkSAT — stochastic local search for SAT (extension Las Vegas algorithm).

The paper's conclusion proposes applying the prediction model to SAT
solvers; WalkSAT (Selman, Kautz & Cohen) is the canonical stochastic local
search SAT procedure and the engine behind the portfolio approaches the
paper cites.  One *flip* is counted as one iteration, making the iteration
counts directly comparable with the Adaptive Search benchmarks.

Algorithm (WalkSAT/SKC variant):

1. start from a uniformly random assignment;
2. pick an unsatisfied clause uniformly at random;
3. if some variable in it has break-count zero (flipping it breaks no
   currently-satisfied clause), flip such a "free" variable;
4. otherwise, with probability ``noise`` flip a random variable of the
   clause, and with probability ``1 - noise`` flip the variable with the
   minimum break-count;
5. repeat until the formula is satisfied or the flip budget is exhausted.

Evaluation paths
----------------
The hot loop consumes a :class:`~repro.sat.incremental.ClausePath` — either
the *incremental* clause state (per-variable occurrence lists and cached
per-clause true-literal counts, O(occurrences of the flipped variable) per
flip) or the *batch* oracle (full re-evaluation through the vectorised
:class:`~repro.sat.cnf.CNFFormula` methods).  The two are exact mirrors:
for a given seed they present the same clause for the same RNG draw and
produce bit-identical flip sequences, solutions and restart counts — the
same contract :class:`~repro.solvers.adaptive_search.AdaptiveSearch` pins
for its delta kernels (see :mod:`repro.evaluation`).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.evaluation import resolve_evaluation_path, validate_evaluation_mode
from repro.sat.cnf import CNFFormula
from repro.sat.incremental import BatchClausePath, ClausePath, IncrementalClausePath
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["WalkSAT", "WalkSATConfig"]


@dataclasses.dataclass(frozen=True)
class WalkSATConfig:
    """Parameters of the WalkSAT solver.

    Attributes
    ----------
    max_flips:
        Hard per-run flip budget; runs hitting it are reported as unsolved
        (censored observations).
    noise:
        Probability of a random walk move when no free variable exists.
        ``noise=0`` is deterministic greedy (always the minimum-break
        variable, ties broken uniformly); ``noise=1`` is a pure random walk
        over the picked clause's variables.
    restart_after:
        Re-randomise the assignment every ``restart_after`` flips;
        ``None`` disables restarts.
    evaluation:
        Evaluation path: ``"auto"`` (default) uses the incremental clause
        state — for SAT it wins at every instance size; ``"incremental"``
        demands it; ``"batch"`` forces the full re-evaluation oracle.
        Both paths produce bit-identical runs for a given seed.
    """

    max_flips: int = 100_000
    noise: float = 0.5
    restart_after: int | None = None
    evaluation: str = "auto"

    def __post_init__(self) -> None:
        if self.max_flips < 1:
            raise ValueError(f"max_flips must be >= 1, got {self.max_flips}")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {self.noise}")
        if self.restart_after is not None and self.restart_after < 1:
            raise ValueError(f"restart_after must be >= 1 or None, got {self.restart_after}")
        validate_evaluation_mode(self.evaluation)


class WalkSAT(LasVegasAlgorithm):
    """WalkSAT/SKC over a CNF formula."""

    def __init__(self, formula: CNFFormula, config: WalkSATConfig | None = None) -> None:
        self.formula = formula
        self.config = config or WalkSATConfig()
        self.name = f"walksat[{formula.n_variables}v/{formula.n_clauses}c]"

    # ------------------------------------------------------------------
    def _clause_path(self) -> ClausePath:
        return resolve_evaluation_path(
            self.config.evaluation,
            describe=self.name,
            incremental=lambda: IncrementalClausePath(self.formula.clause_evaluator()),
            batch=lambda: BatchClausePath(self.formula),
            incremental_requirement="incremental ClauseEvaluator",
        )

    def _run(self, rng: np.random.Generator) -> RunResult:
        formula = self.formula
        config = self.config

        path = self._clause_path()
        path.reinit(formula.random_assignment(rng))
        flips = 0
        restarts = 0
        flips_since_restart = 0

        while path.n_unsat > 0 and flips < config.max_flips:
            if (
                config.restart_after is not None
                and flips_since_restart >= config.restart_after
            ):
                path.reinit(formula.random_assignment(rng))
                restarts += 1
                flips_since_restart = 0
                continue

            clause_index = path.unsat_clause(int(rng.integers(path.n_unsat)))
            clause = formula.clauses[clause_index]
            variables = [abs(lit) - 1 for lit in clause]
            breaks = np.array([path.break_count(var) for var in variables], dtype=np.int64)

            if (breaks == 0).any():
                candidates = np.flatnonzero(breaks == 0)
                chosen = variables[int(candidates[rng.integers(candidates.size)])]
            elif rng.random() < config.noise:
                chosen = variables[int(rng.integers(len(variables)))]
            else:
                candidates = np.flatnonzero(breaks == breaks.min())
                chosen = variables[int(candidates[rng.integers(candidates.size)])]

            path.flip(chosen)
            flips += 1
            flips_since_restart += 1

        solved = path.n_unsat == 0
        return RunResult(
            solved=solved,
            iterations=flips,
            runtime_seconds=0.0,
            solution=path.assignment.copy() if solved else None,
            restarts=restarts,
        )
