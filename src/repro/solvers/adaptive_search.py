"""Adaptive Search: constraint-based local search (paper, Section 4.2).

Adaptive Search (Codognet & Diaz 2001) repairs a configuration iteratively:

1. compute the error of every constraint and project the errors onto the
   variables;
2. select the variable with the highest error (the "culprit") among the
   variables that are not marked tabu;
3. apply the min-conflict heuristic: move the culprit to the value (here:
   swap it with the position) that minimises the global error;
4. when no improving move exists, mark the culprit tabu for a few
   iterations; when too many variables are tabu, perform a partial *reset*
   (re-randomise a fraction of the variables);
5. optionally restart from scratch when an iteration budget since the last
   restart is exceeded.

This implementation operates on :class:`repro.csp.permutation.PermutationProblem`
instances (the encoding used by all of the paper's benchmarks), counts one
iteration per repair step, and reports the iteration count as the
machine-independent cost measure used throughout the evaluation.

Evaluation paths
----------------
The repair step needs the global error of every candidate swap of the
culprit.  Two interchangeable evaluation paths provide it:

* the *incremental* path consumes a problem-specific
  :class:`~repro.csp.permutation.DeltaEvaluator` (O(size) per iteration,
  the reference Adaptive Search design);
* the *batch* path rebuilds the ``(size, size)`` candidate batch and calls
  :meth:`~repro.csp.permutation.PermutationProblem.cost_many` — the
  cross-check oracle and the fallback for problems without a delta kernel.

Both paths produce bit-identical costs and variable errors, so a given seed
yields the same run (solved flag, iteration count, restarts, solution) on
either; the equivalence is pinned by parametrised tests.  The path
selection plumbing (mode validation, auto/incremental/batch resolution) is
shared with :class:`~repro.solvers.walksat.WalkSAT` through
:mod:`repro.evaluation`; in ``"auto"`` mode the measured per-problem
crossover (``PermutationProblem.incremental_min_size``) decides whether the
kernel is expected to beat the very cheap vectorised batch cost at this
instance size.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.csp.permutation import DeltaEvaluator, PermutationProblem
from repro.evaluation import (
    EvaluationPath,
    resolve_evaluation_path,
    validate_evaluation_mode,
)
from repro.solvers.base import LasVegasAlgorithm, RunResult

__all__ = ["AdaptiveSearch", "AdaptiveSearchConfig"]


@dataclasses.dataclass(frozen=True)
class AdaptiveSearchConfig:
    """Tuning parameters of the Adaptive Search metaheuristic.

    Attributes
    ----------
    max_iterations:
        Hard per-run iteration budget; runs hitting it are reported as
        unsolved (censored observations).
    tabu_tenure:
        Number of iterations a culprit variable stays frozen after a failed
        repair attempt.
    reset_limit:
        Number of simultaneously tabu variables that triggers a partial
        reset.
    reset_fraction:
        Fraction of the variables re-randomised by a partial reset.
    restart_limit:
        Iterations since the last (re)start after which a full restart is
        forced; ``None`` disables forced restarts.
    plateau_probability:
        Probability of accepting a sideways (equal-cost) move instead of
        marking the culprit tabu.
    evaluation:
        Candidate-evaluation path: ``"auto"`` uses the problem's incremental
        :class:`~repro.csp.permutation.DeltaEvaluator` when it provides one
        *and* the instance is at or above the problem's measured
        batch/incremental crossover size
        (:attr:`~repro.csp.permutation.PermutationProblem.incremental_min_size`,
        e.g. n ≈ 96 for ALL-INTERVAL, whose two-numpy-call batch cost
        function wins on call overhead below that), falling back to the
        batched oracle otherwise; ``"incremental"`` requires a delta
        kernel; ``"batch"`` forces the oracle path.  The choice only
        affects speed — both paths yield bit-identical runs.
    """

    max_iterations: int = 100_000
    tabu_tenure: int = 10
    reset_limit: int = 5
    reset_fraction: float = 0.25
    restart_limit: int | None = None
    plateau_probability: float = 0.1
    evaluation: str = "auto"

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1, got {self.max_iterations}")
        if self.tabu_tenure < 1:
            raise ValueError(f"tabu_tenure must be >= 1, got {self.tabu_tenure}")
        if self.reset_limit < 1:
            raise ValueError(f"reset_limit must be >= 1, got {self.reset_limit}")
        if not 0.0 < self.reset_fraction <= 1.0:
            raise ValueError(f"reset_fraction must be in (0, 1], got {self.reset_fraction}")
        if self.restart_limit is not None and self.restart_limit < 1:
            raise ValueError(f"restart_limit must be >= 1 or None, got {self.restart_limit}")
        if not 0.0 <= self.plateau_probability <= 1.0:
            raise ValueError(
                f"plateau_probability must be in [0, 1], got {self.plateau_probability}"
            )
        validate_evaluation_mode(self.evaluation)


class _BatchEvaluation(EvaluationPath):
    """Oracle path: full re-evaluation through ``cost_many`` batches."""

    def __init__(self, problem: PermutationProblem) -> None:
        self._problem = problem
        self.perm: np.ndarray | None = None
        self.cost: float = 0.0

    def reinit(self, perm: np.ndarray) -> None:
        self.perm = perm
        self.cost = self._problem.cost(perm)

    def variable_errors(self) -> np.ndarray:
        return self._problem.variable_errors(self.perm)

    def swap_costs(self, index: int) -> np.ndarray:
        return self._problem.swap_costs(self.perm, index)

    def apply_swap(self, i: int, j: int, new_cost: float) -> None:
        self.perm[i], self.perm[j] = self.perm[j], self.perm[i]
        self.cost = new_cost


class _IncrementalEvaluation(EvaluationPath):
    """Delta path: O(size) kernels over counters maintained across moves."""

    def __init__(self, evaluator: DeltaEvaluator) -> None:
        self._evaluator = evaluator
        self._state = None
        self.cost: float = 0.0

    @property
    def perm(self) -> np.ndarray:
        return self._state.perm

    def reinit(self, perm: np.ndarray) -> None:
        if self._state is None:
            self._state = self._evaluator.attach(perm)
        else:
            self._evaluator.reset(self._state, perm)
        self.cost = float(self._state.cost)

    def variable_errors(self) -> np.ndarray:
        return self._evaluator.variable_errors(self._state)

    def swap_costs(self, index: int) -> np.ndarray:
        return self.cost + self._evaluator.swap_deltas(self._state, index)

    def apply_swap(self, i: int, j: int, new_cost: float) -> None:
        self._evaluator.commit_swap(self._state, i, j)
        self.cost = float(self._state.cost)


class AdaptiveSearch(LasVegasAlgorithm):
    """Adaptive Search solver over a permutation problem.

    Parameters
    ----------
    problem:
        The permutation problem to solve.
    config:
        Metaheuristic parameters; sensible defaults are provided.
    """

    def __init__(
        self, problem: PermutationProblem, config: AdaptiveSearchConfig | None = None
    ) -> None:
        self.problem = problem
        self.config = config or AdaptiveSearchConfig()
        self.name = f"adaptive-search[{problem.describe()}]"

    # ------------------------------------------------------------------
    def _evaluation_path(self) -> _BatchEvaluation | _IncrementalEvaluation:
        problem = self.problem
        crossover = problem.incremental_min_size

        def incremental() -> _IncrementalEvaluation | None:
            evaluator = problem.delta_evaluator()
            return None if evaluator is None else _IncrementalEvaluation(evaluator)

        return resolve_evaluation_path(
            self.config.evaluation,
            describe=problem.describe(),
            incremental=incremental,
            batch=lambda: _BatchEvaluation(problem),
            incremental_requirement="DeltaEvaluator",
            prefer_incremental=crossover is None or problem.size >= crossover,
        )

    def _partial_reset(self, perm: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Re-randomise a fraction of the positions (keeping a permutation)."""
        size = self.problem.size
        count = max(2, int(round(self.config.reset_fraction * size)))
        count = min(count, size)
        positions = rng.choice(size, size=count, replace=False)
        shuffled = rng.permutation(positions)
        new_perm = perm.copy()
        new_perm[positions] = perm[shuffled]
        return new_perm

    def _pick_argmax(self, values: np.ndarray, rng: np.random.Generator) -> int:
        """Index of the maximum value with uniform random tie-breaking."""
        maximum = values.max()
        candidates = np.flatnonzero(values >= maximum)
        return int(candidates[rng.integers(candidates.size)])

    def _pick_argmin(self, values: np.ndarray, rng: np.random.Generator) -> int:
        minimum = values.min()
        candidates = np.flatnonzero(values <= minimum)
        return int(candidates[rng.integers(candidates.size)])

    # ------------------------------------------------------------------
    def _run(self, rng: np.random.Generator) -> RunResult:
        problem = self.problem
        config = self.config
        size = problem.size

        path = self._evaluation_path()
        path.reinit(problem.random_configuration(rng))
        cost = path.cost
        tabu_until = np.zeros(size, dtype=np.int64)

        iterations = 0
        restarts = 0
        iterations_since_restart = 0

        while cost > 0.0 and iterations < config.max_iterations:
            iterations += 1
            iterations_since_restart += 1

            if (
                config.restart_limit is not None
                and iterations_since_restart > config.restart_limit
            ):
                path.reinit(problem.random_configuration(rng))
                cost = path.cost
                tabu_until[:] = 0
                restarts += 1
                iterations_since_restart = 0
                continue

            errors = path.variable_errors()
            # A variable tabooed at iteration t has tabu_until = t + tenure
            # and stays frozen for iterations t+1 .. t+tenure (exactly
            # `tenure` of them), hence the strict comparison.
            active = tabu_until < iterations
            if not active.any():
                # Everything is frozen: a reset is the only way forward.
                path.reinit(self._partial_reset(path.perm, rng))
                cost = path.cost
                tabu_until[:] = 0
                continue
            masked_errors = np.where(active, errors, -np.inf)
            culprit = self._pick_argmax(masked_errors, rng)

            swap_costs = path.swap_costs(culprit)
            swap_costs[culprit] = np.inf  # a no-op swap is not a move
            best_j = self._pick_argmin(swap_costs, rng)
            best_cost = float(swap_costs[best_j])

            if best_cost < cost or (
                best_cost == cost and rng.random() < config.plateau_probability
            ):
                path.apply_swap(culprit, best_j, best_cost)
                cost = path.cost
            else:
                tabu_until[culprit] = iterations + config.tabu_tenure
                n_tabu = int(np.count_nonzero(tabu_until > iterations))
                if n_tabu >= config.reset_limit:
                    path.reinit(self._partial_reset(path.perm, rng))
                    cost = path.cost
                    tabu_until[:] = 0

        solved = cost == 0.0
        return RunResult(
            solved=solved,
            iterations=iterations,
            runtime_seconds=0.0,  # filled in by LasVegasAlgorithm.run
            solution=path.perm.copy() if solved else None,
            restarts=restarts,
        )
