"""Las Vegas algorithm interface (Definition 1 of the paper).

A Las Vegas algorithm always returns a *correct* solution when it
terminates, but its runtime is a random variable.  Every solver in this
package implements :class:`LasVegasAlgorithm`: a :meth:`run` method that
executes one independent randomised run and reports a :class:`RunResult`
with the cost measured both in iterations (machine-independent, the paper's
preferred measure) and wall-clock seconds.
"""

from __future__ import annotations

import abc
import dataclasses
import time
from typing import Any

import numpy as np

__all__ = ["LasVegasAlgorithm", "RunResult"]


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Outcome of one sequential run of a Las Vegas algorithm.

    Attributes
    ----------
    solved:
        Whether the run terminated with a (guaranteed-correct) solution
        before hitting its iteration budget.
    iterations:
        Number of elementary iterations performed — the machine-independent
        cost measure the paper prefers.
    runtime_seconds:
        Wall-clock duration of the run.
    solution:
        The solution object (problem-specific), or ``None`` if unsolved.
    restarts:
        Number of full restarts performed during the run.
    seed:
        Seed of the random stream that produced the run (for replay).
    """

    solved: bool
    iterations: int
    runtime_seconds: float
    solution: Any = None
    restarts: int = 0
    seed: int | None = None

    def cost(self, measure: str = "iterations") -> float:
        """Return the runtime under the requested measure.

        ``measure`` is ``"iterations"`` or ``"time"`` (wall-clock seconds).
        """
        if measure == "iterations":
            return float(self.iterations)
        if measure == "time":
            return float(self.runtime_seconds)
        raise ValueError(f"unknown cost measure {measure!r}; use 'iterations' or 'time'")


class LasVegasAlgorithm(abc.ABC):
    """A randomised algorithm whose runtime is a random variable.

    Subclasses implement :meth:`_run` (a single randomised attempt driven by
    a ``numpy`` generator); the public :meth:`run` wraps it with timing and
    seed bookkeeping so results are reproducible and comparable.
    """

    #: Human-readable name used in reports and experiment tables.
    name: str = "las-vegas"

    @abc.abstractmethod
    def _run(self, rng: np.random.Generator) -> RunResult:
        """Execute one randomised run using the provided generator."""

    def run(self, seed: int | np.random.Generator | None = None) -> RunResult:
        """Execute one independent run.

        Parameters
        ----------
        seed:
            Integer seed, an existing generator, or ``None`` for a fresh
            nondeterministic seed.  When an integer is given it is recorded
            in the returned :class:`RunResult` for replay.
        """
        if isinstance(seed, np.random.Generator):
            rng = seed
            recorded_seed = None
        else:
            recorded_seed = int(seed) if seed is not None else None
            rng = np.random.default_rng(seed)
        start = time.perf_counter()
        result = self._run(rng)
        elapsed = time.perf_counter() - start
        return dataclasses.replace(result, runtime_seconds=elapsed, seed=recorded_seed)

    def describe(self) -> str:
        """Short description used by experiment reports."""
        return self.name
