"""Restart strategies for Las Vegas algorithms.

Restarts are the *sequential* counterpart of the paper's multi-walk
parallelism: instead of running ``n`` walks side by side, a single walk is
killed and restarted after a cutoff.  The classical results (Luby et al.;
Gomes & Selman's heavy-tail analysis, both in the lineage of work the paper
cites) connect directly to the runtime distribution machinery of this
library, so the module provides:

* the expected runtime of a fixed-cutoff restart strategy,
  ``E[T(c)] = (c - Integral_0^c F_Y(t) dt) / F_Y(c)``;
* numerical optimisation of that cutoff over a distribution;
* the Luby universal restart sequence;
* a comparison helper answering the practical question "restart, parallelise
  or both?" for a given runtime distribution and core count.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
from scipy import integrate, optimize

from repro.core.distributions.base import RuntimeDistribution
from repro.core.speedup import SpeedupModel

__all__ = [
    "RestartAnalysis",
    "expected_runtime_with_cutoff",
    "luby_sequence",
    "optimal_cutoff",
    "restart_vs_multiwalk",
]


def expected_runtime_with_cutoff(dist: RuntimeDistribution, cutoff: float) -> float:
    """Expected total runtime of restart-at-``cutoff`` until success.

    Each attempt succeeds within the cutoff with probability ``q = F_Y(c)``
    and, conditionally on success, costs ``E[Y | Y <= c]``; a failed attempt
    costs the full cutoff.  Summing the geometric series gives the classical
    formula ``E[T(c)] = (c * (1 - q) + Integral_0^c (F_Y(c') dc' ... )``,
    equivalently ``(c - Integral_0^c F_Y(t) dt) / q``.
    """
    if cutoff <= 0.0 or not math.isfinite(cutoff):
        raise ValueError(f"cutoff must be positive and finite, got {cutoff}")
    q = float(dist.cdf(cutoff))
    if q <= 0.0:
        return math.inf
    low, _ = dist.support()
    lower = min(low, cutoff)
    integral, _err = integrate.quad(lambda t: float(dist.cdf(t)), lower, cutoff, limit=200)
    return (cutoff - integral) / q


def optimal_cutoff(
    dist: RuntimeDistribution,
    *,
    lower_quantile: float = 1e-4,
    upper_quantile: float = 1.0 - 1e-6,
) -> tuple[float, float]:
    """Cutoff minimising the expected restart runtime, and that optimal value.

    The search is a bounded scalar minimisation of
    :func:`expected_runtime_with_cutoff` over ``[Q(lower), Q(upper)]`` on a
    log scale (restart cutoffs span orders of magnitude).  For light-tailed
    distributions the optimum is the upper bound (restarts do not help); for
    heavy-tailed ones it is an interior point far below the mean.
    """
    low = max(dist.quantile(lower_quantile), np.finfo(float).tiny)
    high = dist.quantile(upper_quantile)
    if not math.isfinite(high) or high <= low:
        raise ValueError("could not bracket the cutoff search")

    def objective(log_cutoff: float) -> float:
        return expected_runtime_with_cutoff(dist, math.exp(log_cutoff))

    result = optimize.minimize_scalar(
        objective, bounds=(math.log(low), math.log(high)), method="bounded",
        options={"xatol": 1e-6},
    )
    cutoff = float(math.exp(result.x))
    value = float(result.fun)
    # The boundary (never restart) may beat the interior optimum; report whichever wins.
    no_restart = expected_runtime_with_cutoff(dist, high)
    if no_restart < value:
        return high, no_restart
    return cutoff, value


def luby_sequence(length: int, unit: float = 1.0) -> np.ndarray:
    """First ``length`` terms of the Luby universal restart sequence times ``unit``.

    The sequence 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... is within a
    logarithmic factor of the optimal restart strategy for *any* unknown
    runtime distribution.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if unit <= 0.0:
        raise ValueError(f"unit must be positive, got {unit}")
    values: list[int] = []
    while len(values) < length:
        k = len(values) + 1
        # t_k = 2^(i-1) if k = 2^i - 1, else t_{k - 2^(i-1) + 1} with 2^(i-1) <= k < 2^i - 1
        i = k.bit_length()
        if k == (1 << i) - 1:
            values.append(1 << (i - 1))
        else:
            values.append(values[k - (1 << (i - 1))])
    return unit * np.asarray(values[:length], dtype=float)


@dataclasses.dataclass(frozen=True)
class RestartAnalysis:
    """Outcome of the restart-vs-multiwalk comparison for one distribution."""

    mean_runtime: float
    optimal_cutoff: float
    restart_runtime: float
    multiwalk_runtime: float
    combined_runtime: float
    n_cores: int

    @property
    def restart_gain(self) -> float:
        """Sequential gain from restarting: ``E[Y] / E[T(c*)]``."""
        return self.mean_runtime / self.restart_runtime

    @property
    def multiwalk_gain(self) -> float:
        """Parallel gain from the plain multi-walk: ``G_n``."""
        return self.mean_runtime / self.multiwalk_runtime

    @property
    def combined_gain(self) -> float:
        """Gain from restarting *inside* every walk of the multi-walk."""
        return self.mean_runtime / self.combined_runtime

    def best_strategy(self) -> str:
        """Name of the strategy with the smallest expected runtime."""
        options = {
            "restart": self.restart_runtime,
            "multiwalk": self.multiwalk_runtime,
            "restart+multiwalk": self.combined_runtime,
        }
        return min(options, key=options.get)


def restart_vs_multiwalk(dist: RuntimeDistribution, n_cores: int) -> RestartAnalysis:
    """Compare sequential restarts, a plain multi-walk, and their combination.

    The combination models every walk as an independent restart-at-optimal-
    cutoff process: the per-walk runtime is (approximately) exponential with
    mean ``E[T(c*)]``, so the ``n``-walk minimum has mean ``E[T(c*)] / n`` —
    the idealised upper bound the paper's Section 3.3 attributes to
    exponential behaviour.
    """
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    mean = dist.mean()
    cutoff, restart_runtime = optimal_cutoff(dist)
    model = SpeedupModel(dist)
    multiwalk_runtime = model.expected_parallel(n_cores)
    combined_runtime = restart_runtime / n_cores
    return RestartAnalysis(
        mean_runtime=mean,
        optimal_cutoff=cutoff,
        restart_runtime=restart_runtime,
        multiwalk_runtime=multiwalk_runtime,
        combined_runtime=combined_runtime,
        n_cores=int(n_cores),
    )
