"""Speed-up prediction model ``G_n = E[Y] / E[Z(n)]`` (Section 3.2).

:class:`SpeedupModel` bundles a sequential runtime distribution with the
machinery needed to produce the paper's speed-up curves: point predictions
for arbitrary core counts, whole curves, the asymptotic limit as the number
of cores tends to infinity, the tangent at the origin, and the efficiency
(speed-up divided by core count) used to locate the point where adding cores
stops paying off.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Sequence

import numpy as np

from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.exponential import ShiftedExponential

__all__ = ["SpeedupCurve", "SpeedupModel"]


@dataclasses.dataclass(frozen=True)
class SpeedupCurve:
    """A predicted speed-up curve: core counts with matching speed-ups."""

    cores: tuple[int, ...]
    speedups: tuple[float, ...]
    expected_runtimes: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.cores) != len(self.speedups) or len(self.cores) != len(self.expected_runtimes):
            raise ValueError("cores, speedups and expected_runtimes must have equal length")

    def as_dict(self) -> dict[int, float]:
        """Map core count -> predicted speed-up."""
        return dict(zip(self.cores, self.speedups))

    def efficiency(self) -> tuple[float, ...]:
        """Parallel efficiency ``G_n / n`` per core count."""
        return tuple(s / n for s, n in zip(self.speedups, self.cores))

    def __iter__(self):
        return iter(zip(self.cores, self.speedups))

    def __len__(self) -> int:
        return len(self.cores)


class SpeedupModel:
    """Predict multi-walk speed-ups from a sequential runtime distribution.

    Parameters
    ----------
    distribution:
        The sequential runtime distribution ``Y`` (parametric or empirical).
    """

    def __init__(self, distribution: RuntimeDistribution) -> None:
        self.distribution = distribution

    # ------------------------------------------------------------------
    def expected_sequential(self) -> float:
        """``E[Y]`` — expected runtime on a single core."""
        return self.distribution.mean()

    def expected_parallel(self, n_cores: int) -> float:
        """``E[Z(n)]`` — expected runtime of the ``n``-core multi-walk."""
        return self.distribution.expected_minimum(int(n_cores))

    def speedup(self, n_cores: int) -> float:
        """``G_n = E[Y] / E[Z(n)]`` for a single core count."""
        n = int(n_cores)
        if n < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        return self.distribution.speedup(n)

    def curve(self, cores: Iterable[int]) -> SpeedupCurve:
        """Predicted speed-up curve over a collection of core counts."""
        core_list = [int(c) for c in cores]
        if not core_list:
            raise ValueError("at least one core count is required")
        if any(c < 1 for c in core_list):
            raise ValueError(f"core counts must be >= 1, got {core_list}")
        expectations = [self.expected_parallel(c) for c in core_list]
        sequential = self.expected_sequential()
        speedups = [sequential / e if e > 0 else math.inf for e in expectations]
        return SpeedupCurve(
            cores=tuple(core_list),
            speedups=tuple(speedups),
            expected_runtimes=tuple(expectations),
        )

    # ------------------------------------------------------------------
    def limit(self) -> float:
        """Asymptotic speed-up ``lim_{n -> inf} G_n``.

        For a shifted exponential this is ``1 + 1/(x0 lambda)``; in general
        it equals ``E[Y]`` divided by the essential infimum of ``Y`` (and is
        infinite when that infimum is zero).
        """
        return self.distribution.speedup_limit()

    def tangent_at_origin(self) -> float:
        """Initial slope of the speed-up curve (per added core).

        The paper reports the closed form ``x0 * lambda + 1`` for the shifted
        exponential; for other families the slope is estimated by the finite
        difference ``G_2 - G_1`` (``G_1 = 1`` by construction).
        """
        if isinstance(self.distribution, ShiftedExponential):
            return self.distribution.speedup_tangent_at_origin()
        return self.speedup(2) - 1.0

    def cores_for_target_speedup(self, target: float, max_cores: int = 1 << 20) -> int | None:
        """Smallest core count achieving ``G_n >= target`` (or ``None``).

        Returns ``None`` when the target exceeds the asymptotic limit or is
        not reached within ``max_cores`` (the search is a doubling followed
        by bisection, so it stays cheap even for large answers).
        """
        if target <= 1.0:
            return 1
        limit = self.limit()
        if math.isfinite(limit) and target > limit:
            return None
        lo, hi = 1, 2
        while hi <= max_cores and self.speedup(hi) < target:
            lo, hi = hi, hi * 2
        if hi > max_cores:
            return None
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.speedup(mid) >= target:
                hi = mid
            else:
                lo = mid
        return hi

    def efficiency(self, n_cores: int) -> float:
        """Parallel efficiency ``G_n / n`` in ``(0, 1]`` for sub-linear scaling."""
        n = int(n_cores)
        return self.speedup(n) / n

    def saturation_cores(self, efficiency_threshold: float = 0.5, max_cores: int = 1 << 20) -> int | None:
        """Largest core count whose efficiency still exceeds the threshold.

        Efficiency of a multi-walk is non-increasing in ``n`` for the
        families considered here, so a doubling search suffices.  Returns
        ``None`` when efficiency never drops below the threshold within
        ``max_cores`` (e.g. a non-shifted exponential, which scales linearly).
        """
        if not 0.0 < efficiency_threshold <= 1.0:
            raise ValueError(
                f"efficiency threshold must be in (0, 1], got {efficiency_threshold}"
            )
        n = 1
        while n <= max_cores:
            if self.efficiency(n) < efficiency_threshold:
                break
            n *= 2
        else:
            return None
        lo, hi = max(n // 2, 1), n
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if self.efficiency(mid) >= efficiency_threshold:
                lo = mid
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    def runtime_quantiles(self, n_cores: int, probabilities: Sequence[float]) -> np.ndarray:
        """Quantiles of the ``n``-core multi-walk runtime distribution."""
        min_dist = self.distribution.min_of(int(n_cores))
        return np.array([min_dist.quantile(float(p)) for p in probabilities])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpeedupModel({self.distribution!r})"
