"""Shifted gamma runtime distribution.

The paper's conclusion lists the gamma family among those whose order
statistics admit explicit moment formulas (Nadarajah 2008) and therefore fit
the prediction framework.  The gamma generalises the exponential (shape
``k = 1``); local-search runtimes with a mild "warm-up" phase often look
gamma rather than exponential, so it is a natural candidate for the
automatic family selector.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np
from scipy import special, stats

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["GammaRuntime"]


class GammaRuntime(RuntimeDistribution):
    """Gamma distribution with shape ``k``, scale ``theta`` and shift ``x0``.

    Parameters
    ----------
    shape:
        Shape parameter ``k > 0``.
    scale:
        Scale parameter ``theta > 0``.
    x0:
        Shift (essential minimum runtime).  Defaults to 0.
    """

    name: ClassVar[str] = "shifted_gamma"

    def __init__(self, shape: float, scale: float, x0: float = 0.0) -> None:
        if shape <= 0.0 or not math.isfinite(shape):
            raise ValueError(f"shape must be positive and finite, got {shape}")
        if scale <= 0.0 or not math.isfinite(scale):
            raise ValueError(f"scale must be positive and finite, got {scale}")
        if x0 < 0.0 or not math.isfinite(x0):
            raise ValueError(f"shift x0 must be non-negative and finite, got {x0}")
        self.shape = float(shape)
        self.scale = float(scale)
        self.x0 = float(x0)

    def params(self) -> Mapping[str, float]:
        return {"shape": self.shape, "scale": self.scale, "x0": self.x0}

    def support(self) -> tuple[float, float]:
        return (self.x0, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        safe = np.where(shifted > 0.0, shifted, 1.0)
        log_dens = (
            (self.shape - 1.0) * np.log(safe)
            - safe / self.scale
            - special.gammaln(self.shape)
            - self.shape * math.log(self.scale)
        )
        out = np.where(shifted > 0.0, np.exp(log_dens), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = np.clip(t - self.x0, 0.0, None)
        out = special.gammainc(self.shape, shifted / self.scale)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.x0 + self.shape * self.scale

    def variance(self) -> float:
        return self.shape * self.scale**2

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 0.0:
            return self.x0
        if q == 1.0:
            return math.inf
        return self.x0 + self.scale * float(special.gammaincinv(self.shape, q))

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        return self.x0 + rng.gamma(shape=self.shape, scale=self.scale, size=size)

    def to_scipy(self) -> stats.rv_continuous:
        """Frozen scipy distribution (useful for cross-checks in tests)."""
        return stats.gamma(a=self.shape, scale=self.scale, loc=self.x0)
