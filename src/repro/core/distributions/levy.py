"""Lévy (one-sided stable, index 1/2) runtime distribution.

The paper reports having run the Kolmogorov–Smirnov test against a Lévy
distribution for the benchmark data (and rejected it); including the family
lets the reproduction exercise that negative result and gives the library a
genuinely pathological case: the Lévy distribution has an *infinite mean*,
so a single-walk expectation does not even exist, yet the minimum of ``n``
draws has a finite mean for ``n >= 2`` — the extreme end of the
"parallelism rescues heavy tails" spectrum.

Parameterisation: location (shift) ``x0 >= 0`` and scale ``c > 0``;

``pdf(t) = sqrt(c / (2 pi)) * exp(-c / (2 (t - x0))) / (t - x0)^{3/2}``
``cdf(t) = erfc( sqrt( c / (2 (t - x0)) ) )``
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np
from scipy import special

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["LevyRuntime"]


class LevyRuntime(RuntimeDistribution):
    """Lévy distribution with shift ``x0`` and scale ``c``."""

    name: ClassVar[str] = "levy"

    def __init__(self, scale: float, x0: float = 0.0) -> None:
        if scale <= 0.0 or not math.isfinite(scale):
            raise ValueError(f"scale must be positive and finite, got {scale}")
        if x0 < 0.0 or not math.isfinite(x0):
            raise ValueError(f"shift x0 must be non-negative and finite, got {x0}")
        self.scale = float(scale)
        self.x0 = float(x0)

    def params(self) -> Mapping[str, float]:
        return {"scale": self.scale, "x0": self.x0}

    def support(self) -> tuple[float, float]:
        return (self.x0, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        safe = np.where(shifted > 0.0, shifted, 1.0)
        dens = (
            math.sqrt(self.scale / (2.0 * math.pi))
            * np.exp(-self.scale / (2.0 * safe))
            / safe**1.5
        )
        out = np.where(shifted > 0.0, dens, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        safe = np.where(shifted > 0.0, shifted, 1.0)
        vals = special.erfc(np.sqrt(self.scale / (2.0 * safe)))
        out = np.where(shifted > 0.0, vals, 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """The Lévy distribution has no finite mean."""
        return math.inf

    def variance(self) -> float:
        return math.inf

    def median(self) -> float:
        # erfc(sqrt(c / 2m)) = 1/2  =>  m = c / (2 * erfcinv(1/2)^2)
        return self.x0 + self.scale / (2.0 * float(special.erfcinv(0.5)) ** 2)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 0.0:
            return self.x0
        if q == 1.0:
            return math.inf
        z = float(special.erfcinv(q))
        return self.x0 + self.scale / (2.0 * z * z)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        # If U ~ N(0, 1) then c / U^2 is Lévy(c) — the classical construction.
        normals = rng.standard_normal(size)
        out = self.x0 + self.scale / np.square(normals)
        return out if np.ndim(out) else float(out)

    # ------------------------------------------------------------------
    def expected_minimum(self, n_cores: int) -> float:
        """``E[Z(n)]`` — finite for ``n >= 2`` even though ``E[Y]`` is not.

        The survival function of the minimum decays like ``t^(-n/2)``, so the
        integral converges as soon as ``n >= 3``; for ``n = 2`` it is only
        logarithmically divergent-free (it converges, barely), and for
        ``n = 1`` it is infinite.  Evaluated by the generic quadrature on the
        quantile form, which handles the heavy tail.
        """
        if n_cores < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        if n_cores == 1:
            return math.inf
        from repro.core.order_stats import expected_minimum_quantile_form

        return expected_minimum_quantile_form(self, n_cores)

    def speedup(self, n_cores: int) -> float:
        """Speed-up relative to an infinite sequential expectation is infinite."""
        if n_cores == 1:
            return 1.0
        return math.inf

    def speedup_limit(self) -> float:
        return math.inf
