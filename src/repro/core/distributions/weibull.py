"""Shifted Weibull runtime distribution.

The Weibull family is closed under the minimum transform (the minimum of
``n`` i.i.d. Weibull variables is again Weibull with scale divided by
``n**(1/k)``), which makes it a particularly convenient model for multi-walk
prediction and a useful sanity check for the generic numerical machinery:
``E[Z(n)]`` has the closed form ``x0 + (scale / n^(1/k)) * Gamma(1 + 1/k)``.
Heavy-tailed local-search runtimes (``k < 1``) yield super-linear speed-ups,
matching the behaviour the paper observes on COSTAS at high core counts.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["WeibullRuntime"]


class WeibullRuntime(RuntimeDistribution):
    """Weibull distribution with shape ``k``, scale ``theta`` and shift ``x0``.

    Parameters
    ----------
    shape:
        Shape parameter ``k > 0`` (``k = 1`` recovers the exponential).
    scale:
        Scale parameter ``theta > 0``.
    x0:
        Shift (essential minimum runtime).  Defaults to 0.
    """

    name: ClassVar[str] = "shifted_weibull"

    def __init__(self, shape: float, scale: float, x0: float = 0.0) -> None:
        if shape <= 0.0 or not math.isfinite(shape):
            raise ValueError(f"shape must be positive and finite, got {shape}")
        if scale <= 0.0 or not math.isfinite(scale):
            raise ValueError(f"scale must be positive and finite, got {scale}")
        if x0 < 0.0 or not math.isfinite(x0):
            raise ValueError(f"shift x0 must be non-negative and finite, got {x0}")
        self.shape = float(shape)
        self.scale = float(scale)
        self.x0 = float(x0)

    def params(self) -> Mapping[str, float]:
        return {"shape": self.shape, "scale": self.scale, "x0": self.x0}

    def support(self) -> tuple[float, float]:
        return (self.x0, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = np.clip((t - self.x0) / self.scale, 0.0, None)
        safe = np.where(z > 0.0, z, 1.0)
        dens = (self.shape / self.scale) * safe ** (self.shape - 1.0) * np.exp(-(safe**self.shape))
        zero_at_origin = self.shape > 1.0
        at_origin = 0.0 if zero_at_origin else (self.shape / self.scale if self.shape == 1.0 else np.inf)
        out = np.where(t < self.x0, 0.0, np.where(z > 0.0, dens, at_origin))
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = np.clip((t - self.x0) / self.scale, 0.0, None)
        out = -np.expm1(-(z**self.shape))
        return out if out.ndim else float(out)

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = np.clip((t - self.x0) / self.scale, 0.0, None)
        out = np.exp(-(z**self.shape))
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.x0 + self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1 * g1)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 1.0:
            return math.inf
        return self.x0 + self.scale * (-math.log1p(-q)) ** (1.0 / self.shape)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        return self.x0 + self.scale * rng.weibull(self.shape, size=size)

    # ------------------------------------------------------------------
    # Closed-form multi-walk quantities (Weibull is min-stable).
    # ------------------------------------------------------------------
    def expected_minimum(self, n_cores: int) -> float:
        if n_cores < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        scale_n = self.scale / n_cores ** (1.0 / self.shape)
        return self.x0 + scale_n * math.gamma(1.0 + 1.0 / self.shape)
