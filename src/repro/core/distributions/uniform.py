"""Uniform runtime distribution on a bounded interval.

The uniform family is mostly a pedagogical and testing device: every
multi-walk quantity has a simple closed form (the minimum of ``n`` uniforms
on ``[a, b]`` is a Beta(1, n) variable rescaled to the interval, so
``E[Z(n)] = a + (b - a)/(n + 1)``), which gives the quadrature-based generic
code an exact reference to be validated against.  It also models
"bounded-restart" algorithms whose runtime never exceeds a hard cutoff.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["UniformRuntime"]


class UniformRuntime(RuntimeDistribution):
    """Uniform distribution on ``[low, high]`` with ``0 <= low < high``."""

    name: ClassVar[str] = "uniform"

    def __init__(self, low: float, high: float) -> None:
        if not (math.isfinite(low) and math.isfinite(high)):
            raise ValueError(f"bounds must be finite, got [{low}, {high}]")
        if low < 0.0:
            raise ValueError(f"runtimes are non-negative; low must be >= 0, got {low}")
        if high <= low:
            raise ValueError(f"high must exceed low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def params(self) -> Mapping[str, float]:
        return {"low": self.low, "high": self.high}

    def support(self) -> tuple[float, float]:
        return (self.low, self.high)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        inside = (t >= self.low) & (t <= self.high)
        out = np.where(inside, 1.0 / (self.high - self.low), 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        out = np.clip((t - self.low) / (self.high - self.low), 0.0, 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        return self.low + q * (self.high - self.low)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        return rng.uniform(self.low, self.high, size=size)

    # ------------------------------------------------------------------
    def expected_minimum(self, n_cores: int) -> float:
        """``E[min of n uniforms] = low + (high - low)/(n + 1)`` (Beta(1, n))."""
        if n_cores < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        return self.low + (self.high - self.low) / (n_cores + 1.0)

    def speedup_limit(self) -> float:
        if self.low == 0.0:
            return math.inf
        return self.mean() / self.low
