"""Registry mapping family names to distribution classes.

The fitting and prediction layers refer to distribution families by name
(e.g. ``"shifted_exponential"``); the registry provides the single source of
truth for that mapping and lets downstream users plug additional families in
without touching library code.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.exponential import ShiftedExponential
from repro.core.distributions.gamma import GammaRuntime
from repro.core.distributions.gaussian import TruncatedGaussian
from repro.core.distributions.levy import LevyRuntime
from repro.core.distributions.loglogistic import LogLogisticRuntime
from repro.core.distributions.lognormal import LogNormalRuntime
from repro.core.distributions.pareto import ParetoRuntime
from repro.core.distributions.uniform import UniformRuntime
from repro.core.distributions.weibull import WeibullRuntime

__all__ = ["distribution_registry", "get_distribution_class", "register_distribution"]

#: Name -> class mapping for all built-in parametric families.
distribution_registry: Dict[str, Type[RuntimeDistribution]] = {
    ShiftedExponential.name: ShiftedExponential,
    LogNormalRuntime.name: LogNormalRuntime,
    TruncatedGaussian.name: TruncatedGaussian,
    GammaRuntime.name: GammaRuntime,
    WeibullRuntime.name: WeibullRuntime,
    ParetoRuntime.name: ParetoRuntime,
    UniformRuntime.name: UniformRuntime,
    LevyRuntime.name: LevyRuntime,
    LogLogisticRuntime.name: LogLogisticRuntime,
}


def get_distribution_class(name: str) -> Type[RuntimeDistribution]:
    """Look a family up by name, raising a helpful error when unknown."""
    try:
        return distribution_registry[name]
    except KeyError:
        known = ", ".join(sorted(distribution_registry))
        raise KeyError(f"unknown distribution family {name!r}; known families: {known}") from None


def register_distribution(cls: Type[RuntimeDistribution]) -> Type[RuntimeDistribution]:
    """Register a user-defined family (usable as a class decorator)."""
    if not issubclass(cls, RuntimeDistribution):
        raise TypeError(f"{cls!r} is not a RuntimeDistribution subclass")
    name = getattr(cls, "name", None)
    if not name or name == "abstract":
        raise ValueError(f"{cls.__name__} must define a non-empty class attribute 'name'")
    distribution_registry[name] = cls
    return cls
