"""Abstract base class for runtime distributions.

A *runtime distribution* models the computation cost (wall-clock seconds or,
preferably, iteration count — the paper argues iterations are unbiased and
machine-independent) of one sequential run of a Las Vegas algorithm on a
fixed problem instance.

Every concrete family implements the density, cumulative distribution and
mean; the base class derives the survival function, variance, quantiles,
sampling helpers and — most importantly for the paper — the
minimum-of-``n``-draws transform :meth:`RuntimeDistribution.min_of` and the
expected parallel runtime :meth:`RuntimeDistribution.expected_minimum`.
"""

from __future__ import annotations

import abc
import math
from typing import Any, ClassVar, Mapping

import numpy as np
from scipy import optimize

__all__ = ["RuntimeDistribution"]

_QUANTILE_TOL = 1e-12


class RuntimeDistribution(abc.ABC):
    """Continuous probability distribution of a Las Vegas runtime.

    Concrete subclasses must implement :meth:`pdf`, :meth:`cdf`,
    :meth:`mean`, :meth:`sample` and :meth:`params`, and should override
    :meth:`quantile`, :meth:`expected_minimum` and :meth:`variance` whenever
    a closed form exists (the base-class implementations fall back to
    numerical root finding / quadrature).

    The distribution is supported on ``[support()[0], support()[1]]``; for
    the paper's shifted families the lower bound is the shift ``x0``.
    """

    #: Registry name of the family (e.g. ``"shifted_exponential"``).
    name: ClassVar[str] = "abstract"

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Probability density evaluated at ``t`` (vectorised)."""

    @abc.abstractmethod
    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Cumulative distribution ``P[Y <= t]`` evaluated at ``t``."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expectation ``E[Y]``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Draw ``size`` i.i.d. samples using the generator ``rng``."""

    @abc.abstractmethod
    def params(self) -> Mapping[str, float]:
        """Dictionary of the family's parameters (including the shift)."""

    # ------------------------------------------------------------------
    # Support and derived quantities
    # ------------------------------------------------------------------
    def support(self) -> tuple[float, float]:
        """Return the ``(lower, upper)`` bounds of the support.

        Defaults to ``[0, +inf)``; shifted families override the lower
        bound with their shift ``x0``.
        """
        return (0.0, math.inf)

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Survival function ``P[Y > t] = 1 - F_Y(t)``."""
        return 1.0 - np.asarray(self.cdf(t), dtype=float)

    def variance(self) -> float:
        """Variance ``Var[Y]``; numerical fallback via the second moment."""
        from repro.core.order_stats import raw_moment

        second = raw_moment(self, order=2)
        mu = self.mean()
        return max(second - mu * mu, 0.0)

    def std(self) -> float:
        """Standard deviation of the runtime."""
        return math.sqrt(self.variance())

    def median(self) -> float:
        """Median runtime, i.e. the 0.5 quantile."""
        return self.quantile(0.5)

    def quantile(self, q: float) -> float:
        """Inverse CDF at probability ``q`` (numerical bracketing fallback)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        low, high = self.support()
        if q == 0.0:
            return low
        if q == 1.0:
            return high
        # Find a finite bracket [lo, hi] with cdf(lo) <= q <= cdf(hi).
        lo = low if math.isfinite(low) else 0.0
        hi = hi0 = max(lo + 1.0, 2.0 * abs(lo) + 1.0)
        if math.isfinite(high):
            hi = high
        else:
            # Geometric expansion of the upper bracket.
            for _ in range(200):
                if self.cdf(hi) >= q:
                    break
                hi = lo + 2.0 * (hi - lo)
            else:  # pragma: no cover - pathological distribution
                raise RuntimeError(f"could not bracket quantile {q} starting from {hi0}")
        func = lambda t: float(self.cdf(t)) - q
        f_lo = func(lo)
        if abs(f_lo) <= _QUANTILE_TOL:
            return lo
        return float(optimize.brentq(func, lo, hi, xtol=1e-12, rtol=1e-12))

    # ------------------------------------------------------------------
    # Multi-walk (order statistic) interface
    # ------------------------------------------------------------------
    def min_of(self, n_cores: int) -> "Any":
        """Distribution of ``Z(n) = min(X_1, ..., X_n)`` with i.i.d. ``X_i ~ Y``.

        This is the runtime distribution of an independent multi-walk
        execution on ``n_cores`` cores (Definition 2 in the paper):
        ``F_Z(t) = 1 - (1 - F_Y(t))^n``.
        """
        from repro.core.minimum import MinDistribution

        return MinDistribution(self, n_cores)

    def expected_minimum(self, n_cores: int) -> float:
        """Expected parallel runtime ``E[Z(n)]`` on ``n_cores`` cores.

        Base-class implementation integrates the survival function of the
        minimum; families with closed forms (shifted exponential, uniform)
        override this.
        """
        from repro.core.order_stats import expected_minimum

        return expected_minimum(self, n_cores)

    def speedup(self, n_cores: int) -> float:
        """Predicted multi-walk speed-up ``G_n = E[Y] / E[Z(n)]``."""
        expected = self.expected_minimum(n_cores)
        if expected <= 0.0:
            raise ZeroDivisionError(
                f"expected minimum runtime is {expected!r}; speed-up is undefined"
            )
        return self.mean() / expected

    def speedup_limit(self) -> float:
        """Limit of the speed-up as the number of cores tends to infinity.

        Generic result: ``E[Z(n)] -> essential infimum of Y`` as ``n`` grows,
        hence the limit is ``E[Y] / inf(support)`` (infinite when the support
        reaches zero).  Families override this when a cleaner closed form
        exists.
        """
        low, _ = self.support()
        if low <= 0.0:
            return math.inf
        return self.mean() / low

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def log_pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Natural logarithm of the density (numerical fallback)."""
        with np.errstate(divide="ignore"):
            return np.log(np.asarray(self.pdf(t), dtype=float))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(f"{k}={v:.6g}" for k, v in self.params().items())
        return f"{type(self).__name__}({args})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RuntimeDistribution):
            return NotImplemented
        if type(self) is not type(other):
            return False
        mine, theirs = self.params(), other.params()
        return mine.keys() == theirs.keys() and all(
            math.isclose(mine[k], theirs[k], rel_tol=1e-12, abs_tol=1e-12) for k in mine
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, tuple(sorted(self.params().items()))))
