"""Shifted exponential runtime distribution (paper, Section 3.3).

The shifted exponential with shift ``x0 >= 0`` and rate ``lambda > 0`` is the
workhorse of the paper: it fits the ALL-INTERVAL 700 iteration counts
(``x0 = 1217``, ``lambda ~= 9.16e-6``) and, with ``x0 = 0``, the COSTAS 21
counts (``lambda ~= 5.4e-9``).  All multi-walk quantities admit closed forms:

* ``E[Y] = x0 + 1/lambda``
* ``Z(n)`` is again shifted exponential with rate ``n * lambda``
* ``E[Z(n)] = x0 + 1/(n lambda)``
* ``G_n = (x0 + 1/lambda) / (x0 + 1/(n lambda))``
* ``lim_{n->inf} G_n = 1 + 1/(x0 lambda)`` (infinite when ``x0 = 0``,
  i.e. perfectly linear scaling)
* slope of the speed-up at the origin: ``x0 * lambda + 1``.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["ShiftedExponential"]


class ShiftedExponential(RuntimeDistribution):
    """Exponential distribution shifted to start at ``x0``.

    Parameters
    ----------
    x0:
        Shift (essential minimum runtime).  Must be non-negative.
    lam:
        Rate parameter ``lambda`` of the exponential tail.  Must be positive.
        The scale (mean excess over the shift) is ``1 / lam``.
    """

    name: ClassVar[str] = "shifted_exponential"

    def __init__(self, x0: float, lam: float) -> None:
        if lam <= 0.0 or not math.isfinite(lam):
            raise ValueError(f"rate lambda must be positive and finite, got {lam}")
        if x0 < 0.0 or not math.isfinite(x0):
            raise ValueError(f"shift x0 must be non-negative and finite, got {x0}")
        self.x0 = float(x0)
        self.lam = float(lam)

    # ------------------------------------------------------------------
    @classmethod
    def from_scale(cls, x0: float, scale: float) -> "ShiftedExponential":
        """Construct from a scale (mean excess) instead of a rate."""
        if scale <= 0.0:
            raise ValueError(f"scale must be positive, got {scale}")
        return cls(x0=x0, lam=1.0 / scale)

    def params(self) -> Mapping[str, float]:
        return {"x0": self.x0, "lam": self.lam}

    def support(self) -> tuple[float, float]:
        return (self.x0, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        out = np.where(shifted < 0.0, 0.0, self.lam * np.exp(-self.lam * np.clip(shifted, 0.0, None)))
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        out = np.where(shifted < 0.0, 0.0, -np.expm1(-self.lam * np.clip(shifted, 0.0, None)))
        return out if out.ndim else float(out)

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        out = np.where(shifted < 0.0, 1.0, np.exp(-self.lam * np.clip(shifted, 0.0, None)))
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.x0 + 1.0 / self.lam

    def variance(self) -> float:
        return 1.0 / (self.lam * self.lam)

    def median(self) -> float:
        return self.x0 + math.log(2.0) / self.lam

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 1.0:
            return math.inf
        return self.x0 - math.log1p(-q) / self.lam

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        draws = rng.exponential(scale=1.0 / self.lam, size=size)
        return draws + self.x0

    def log_pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        out = np.where(
            shifted < 0.0,
            -np.inf,
            math.log(self.lam) - self.lam * np.clip(shifted, 0.0, None),
        )
        return out if out.ndim else float(out)

    # ------------------------------------------------------------------
    # Closed-form multi-walk quantities
    # ------------------------------------------------------------------
    def min_of(self, n_cores: int):
        """The minimum of ``n`` shifted exponentials is shifted exponential.

        ``Z(n) ~ ShiftedExponential(x0, n * lambda)`` — returned as a
        :class:`MinDistribution` so callers get the uniform interface, but
        the closed form is used for its expectation.
        """
        return super().min_of(n_cores)

    def expected_minimum(self, n_cores: int) -> float:
        if n_cores < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        return self.x0 + 1.0 / (n_cores * self.lam)

    def speedup(self, n_cores: int) -> float:
        return (self.x0 + 1.0 / self.lam) / (self.x0 + 1.0 / (n_cores * self.lam))

    def speedup_limit(self) -> float:
        """``lim_{n -> inf} G_n = 1 + 1/(x0 * lambda)`` (paper, Section 3.3)."""
        if self.x0 == 0.0:
            return math.inf
        return 1.0 + 1.0 / (self.x0 * self.lam)

    def speedup_tangent_at_origin(self) -> float:
        """Slope of the speed-up curve for small core counts: ``x0*lambda + 1``."""
        return self.x0 * self.lam + 1.0
