"""Shifted lognormal runtime distribution (paper, Section 3.4).

``Y = x0 + exp(N(mu, sigma^2))``.  The paper uses this family for the
MAGIC-SQUARE 200 iteration counts (``mu = 12.0275``, ``sigma = 1.3398``,
shifted by the observed minimum ``x0 = 6210``).  There is no closed form for
``E[Z(n)]``; the paper (following Nadarajah 2008) evaluates the first moment
of the first order statistic with a single numerical integration, which is
what :meth:`LogNormalRuntime.expected_minimum` inherits from
:mod:`repro.core.order_stats`.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np
from scipy import special

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["LogNormalRuntime"]

_SQRT2 = math.sqrt(2.0)


class LogNormalRuntime(RuntimeDistribution):
    """Lognormal distribution shifted to start at ``x0``.

    Parameters
    ----------
    mu:
        Mean of the underlying gaussian (log-scale location).
    sigma:
        Standard deviation of the underlying gaussian.  Must be positive.
    x0:
        Shift (essential minimum runtime).  Defaults to 0 (plain lognormal).
    """

    name: ClassVar[str] = "shifted_lognormal"

    def __init__(self, mu: float, sigma: float, x0: float = 0.0) -> None:
        if sigma <= 0.0 or not math.isfinite(sigma):
            raise ValueError(f"sigma must be positive and finite, got {sigma}")
        if x0 < 0.0 or not math.isfinite(x0):
            raise ValueError(f"shift x0 must be non-negative and finite, got {x0}")
        if not math.isfinite(mu):
            raise ValueError(f"mu must be finite, got {mu}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.x0 = float(x0)

    def params(self) -> Mapping[str, float]:
        return {"mu": self.mu, "sigma": self.sigma, "x0": self.x0}

    def support(self) -> tuple[float, float]:
        return (self.x0, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        safe = np.where(shifted > 0.0, shifted, 1.0)
        log_safe = np.log(safe)
        dens = np.exp(-((log_safe - self.mu) ** 2) / (2.0 * self.sigma**2)) / (
            safe * self.sigma * math.sqrt(2.0 * math.pi)
        )
        out = np.where(shifted > 0.0, dens, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        safe = np.where(shifted > 0.0, shifted, 1.0)
        # F(t) = 1/2 erfc((mu - log(t - x0)) / (sqrt(2) sigma))   (paper, Sec. 3.4)
        vals = 0.5 * special.erfc((self.mu - np.log(safe)) / (_SQRT2 * self.sigma))
        out = np.where(shifted > 0.0, vals, 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return self.x0 + math.exp(self.mu + 0.5 * self.sigma**2)

    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def median(self) -> float:
        return self.x0 + math.exp(self.mu)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 0.0:
            return self.x0
        if q == 1.0:
            return math.inf
        z = special.ndtri(q)
        return self.x0 + math.exp(self.mu + self.sigma * z)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        return self.x0 + rng.lognormal(mean=self.mu, sigma=self.sigma, size=size)

    def log_pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        shifted = t - self.x0
        safe = np.where(shifted > 0.0, shifted, 1.0)
        log_safe = np.log(safe)
        vals = (
            -((log_safe - self.mu) ** 2) / (2.0 * self.sigma**2)
            - log_safe
            - math.log(self.sigma * math.sqrt(2.0 * math.pi))
        )
        out = np.where(shifted > 0.0, vals, -np.inf)
        return out if out.ndim else float(out)

    def speedup_limit(self) -> float:
        """Limit of the speed-up when the number of cores tends to infinity.

        ``E[Z(n)] -> x0``; the limit is ``E[Y] / x0`` for ``x0 > 0`` and
        infinite otherwise.
        """
        if self.x0 == 0.0:
            return math.inf
        return self.mean() / self.x0
