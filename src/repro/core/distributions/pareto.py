"""Pareto (heavy-tailed) runtime distribution.

Heavy-tailed runtime distributions are the classical explanation for the
effectiveness of restarts and portfolios in combinatorial search (Gomes &
Selman's algorithm-portfolio work cited by the paper).  A Pareto family lets
the library express — and the experiments ablate — the regime where the
multi-walk speed-up is strongly super-linear.

The Lomax parameterisation is used: support ``[x_m, inf)`` with tail index
``alpha``.  ``E[Y]`` is finite only for ``alpha > 1``; the minimum of ``n``
draws is again Pareto with index ``n * alpha``, so ``E[Z(n)]`` is finite for
every ``n >= 1`` as soon as ``n * alpha > 1``.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["ParetoRuntime"]


class ParetoRuntime(RuntimeDistribution):
    """Pareto distribution with minimum ``x_m > 0`` and tail index ``alpha > 0``."""

    name: ClassVar[str] = "pareto"

    def __init__(self, x_m: float, alpha: float) -> None:
        if x_m <= 0.0 or not math.isfinite(x_m):
            raise ValueError(f"x_m must be positive and finite, got {x_m}")
        if alpha <= 0.0 or not math.isfinite(alpha):
            raise ValueError(f"alpha must be positive and finite, got {alpha}")
        self.x_m = float(x_m)
        self.alpha = float(alpha)

    def params(self) -> Mapping[str, float]:
        return {"x_m": self.x_m, "alpha": self.alpha}

    def support(self) -> tuple[float, float]:
        return (self.x_m, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        safe = np.where(t >= self.x_m, t, self.x_m)
        dens = self.alpha * self.x_m**self.alpha / safe ** (self.alpha + 1.0)
        out = np.where(t < self.x_m, 0.0, dens)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        safe = np.where(t >= self.x_m, t, self.x_m)
        vals = 1.0 - (self.x_m / safe) ** self.alpha
        out = np.where(t < self.x_m, 0.0, vals)
        return out if out.ndim else float(out)

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        safe = np.where(t >= self.x_m, t, self.x_m)
        vals = (self.x_m / safe) ** self.alpha
        out = np.where(t < self.x_m, 1.0, vals)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        if self.alpha <= 1.0:
            return math.inf
        return self.alpha * self.x_m / (self.alpha - 1.0)

    def variance(self) -> float:
        if self.alpha <= 2.0:
            return math.inf
        return self.x_m**2 * self.alpha / ((self.alpha - 1.0) ** 2 * (self.alpha - 2.0))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 1.0:
            return math.inf
        return self.x_m / (1.0 - q) ** (1.0 / self.alpha)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        return self.x_m * (1.0 + rng.pareto(self.alpha, size=size))

    # ------------------------------------------------------------------
    # Closed forms: the minimum of n Pareto(x_m, alpha) is Pareto(x_m, n*alpha).
    # ------------------------------------------------------------------
    def expected_minimum(self, n_cores: int) -> float:
        if n_cores < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        n_alpha = n_cores * self.alpha
        if n_alpha <= 1.0:
            return math.inf
        return n_alpha * self.x_m / (n_alpha - 1.0)

    def speedup_limit(self) -> float:
        if not math.isfinite(self.mean()):
            return math.inf
        return self.mean() / self.x_m
