"""Shifted log-logistic (Fisk) runtime distribution.

A pragmatic middle ground between the lognormal and the Pareto: log-logistic
runtimes have a lognormal-like body but a power-law tail of index ``beta``,
which matches the "fat-tailed but not absurdly so" profiles often reported
for local-search and SAT solvers.  Every quantity needed by the prediction
pipeline has a closed form, including the quantile function, which makes the
family cheap to evaluate at very large core counts.

``cdf(t) = 1 / (1 + ((t - x0)/alpha)^(-beta))`` for ``t > x0``.
``E[Y] = x0 + alpha * (pi/beta) / sin(pi/beta)`` for ``beta > 1``.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["LogLogisticRuntime"]


class LogLogisticRuntime(RuntimeDistribution):
    """Log-logistic distribution with scale ``alpha``, shape ``beta``, shift ``x0``."""

    name: ClassVar[str] = "log_logistic"

    def __init__(self, alpha: float, beta: float, x0: float = 0.0) -> None:
        if alpha <= 0.0 or not math.isfinite(alpha):
            raise ValueError(f"scale alpha must be positive and finite, got {alpha}")
        if beta <= 0.0 or not math.isfinite(beta):
            raise ValueError(f"shape beta must be positive and finite, got {beta}")
        if x0 < 0.0 or not math.isfinite(x0):
            raise ValueError(f"shift x0 must be non-negative and finite, got {x0}")
        self.alpha = float(alpha)
        self.beta = float(beta)
        self.x0 = float(x0)

    def params(self) -> Mapping[str, float]:
        return {"alpha": self.alpha, "beta": self.beta, "x0": self.x0}

    def support(self) -> tuple[float, float]:
        return (self.x0, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = np.where(t > self.x0, (t - self.x0) / self.alpha, 1.0)
        dens = (self.beta / self.alpha) * z ** (self.beta - 1.0) / (1.0 + z**self.beta) ** 2
        out = np.where(t > self.x0, dens, 0.0)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = np.where(t > self.x0, (t - self.x0) / self.alpha, 1.0)
        vals = 1.0 / (1.0 + z ** (-self.beta))
        out = np.where(t > self.x0, vals, 0.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        if self.beta <= 1.0:
            return math.inf
        b = math.pi / self.beta
        return self.x0 + self.alpha * b / math.sin(b)

    def variance(self) -> float:
        if self.beta <= 2.0:
            return math.inf
        b = math.pi / self.beta
        second = self.alpha**2 * 2.0 * b / math.sin(2.0 * b)
        first = self.alpha * b / math.sin(b)
        return second - first * first

    def median(self) -> float:
        return self.x0 + self.alpha

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 0.0:
            return self.x0
        if q == 1.0:
            return math.inf
        return self.x0 + self.alpha * (q / (1.0 - q)) ** (1.0 / self.beta)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        u = rng.uniform(size=size)
        out = self.x0 + self.alpha * (u / (1.0 - u)) ** (1.0 / self.beta)
        return out if np.ndim(out) else float(out)

    def speedup_limit(self) -> float:
        if self.x0 == 0.0 or not math.isfinite(self.mean()):
            return math.inf
        return self.mean() / self.x0
