"""Nonparametric (empirical) runtime distribution.

The parametric route of the paper fits a named family to the observed
sequential runtimes before applying the minimum transform.  The empirical
distribution is the nonparametric alternative: it treats the observed sample
itself as the distribution, so the multi-walk expectation becomes the exact
expectation of the minimum of ``n`` draws *with replacement* from the sample
— computable in closed form from the order statistics of the sample without
any Monte-Carlo error (see :meth:`EmpiricalDistribution.expected_minimum`).

This is the backbone of the nonparametric predictor ablated in the
benchmarks and of the simulated multi-walk engine's consistency checks.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping, Sequence

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["EmpiricalDistribution"]


class EmpiricalDistribution(RuntimeDistribution):
    """Distribution placing mass ``1/m`` on each of ``m`` observed runtimes.

    Parameters
    ----------
    observations:
        One-dimensional array of observed runtimes (or iteration counts).
        Must be non-empty, finite and non-negative.
    """

    name: ClassVar[str] = "empirical"

    def __init__(self, observations: Sequence[float] | np.ndarray) -> None:
        data = np.asarray(observations, dtype=float).ravel()
        if data.size == 0:
            raise ValueError("empirical distribution needs at least one observation")
        if not np.all(np.isfinite(data)):
            raise ValueError("observations must be finite")
        if np.any(data < 0.0):
            raise ValueError("runtimes must be non-negative")
        self._sorted = np.sort(data)
        self._n = int(data.size)
        # Observations are immutable after construction, so the histogram
        # surrogate used by pdf() can be binned once and reused; it is
        # built on first use (not eagerly) so constructing a distribution
        # never pays for — or warns about — a histogram nobody asked for.
        self._pdf_edges: np.ndarray | None = None
        self._pdf_densities: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def observations(self) -> np.ndarray:
        """Sorted copy of the underlying observations."""
        return self._sorted.copy()

    @property
    def n_observations(self) -> int:
        return self._n

    def params(self) -> Mapping[str, float]:
        return {"n_observations": float(self._n)}

    def support(self) -> tuple[float, float]:
        return (float(self._sorted[0]), float(self._sorted[-1]))

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        """Density surrogate via a histogram estimate.

        The empirical measure is atomic, so a true density does not exist;
        for plotting and for the KS-style diagnostics a normalised histogram
        with Freedman–Diaconis binning is returned instead.  The edges and
        bin densities are computed once (the observations are immutable)
        and memoised, so repeated calls are a pair of vectorised lookups
        instead of a full re-binning of the sample.
        """
        t = np.asarray(t, dtype=float)
        if self._pdf_edges is None:
            self._pdf_edges = self._histogram_edges()
            self._pdf_densities, _ = np.histogram(
                self._sorted, bins=self._pdf_edges, density=True
            )
        edges = self._pdf_edges
        counts = self._pdf_densities
        idx = np.clip(np.searchsorted(edges, t, side="right") - 1, 0, len(counts) - 1)
        inside = (t >= edges[0]) & (t <= edges[-1])
        out = np.where(inside, counts[idx], 0.0)
        return out if out.ndim else float(out)

    def _histogram_edges(self) -> np.ndarray:
        lo, hi = self.support()
        if lo == hi:
            return np.array([lo - 0.5, hi + 0.5])
        iqr = float(np.subtract(*np.percentile(self._sorted, [75, 25])))
        if iqr > 0.0:
            width = 2.0 * iqr / self._n ** (1.0 / 3.0)
            bins = max(1, int(math.ceil((hi - lo) / width)))
        else:
            bins = max(1, int(math.ceil(math.sqrt(self._n))))
        bins = min(bins, 512)
        return np.linspace(lo, hi, bins + 1)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        ranks = np.searchsorted(self._sorted, t, side="right")
        out = ranks / self._n
        return out if out.ndim else float(out)

    def mean(self) -> float:
        return float(self._sorted.mean())

    def variance(self) -> float:
        return float(self._sorted.var())

    def median(self) -> float:
        return float(np.median(self._sorted))

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        return float(np.quantile(self._sorted, q))

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        out = rng.choice(self._sorted, size=size, replace=True)
        return out if np.ndim(out) else float(out)

    # ------------------------------------------------------------------
    # Exact multi-walk expectation under resampling.
    # ------------------------------------------------------------------
    def expected_minimum(self, n_cores: int) -> float:
        """Exact ``E[min of n draws with replacement]`` from the sample.

        With sorted observations ``x_(1) <= ... <= x_(m)``, the probability
        that the minimum of ``n`` uniform draws (with replacement) is at
        least ``x_(i)`` equals ``((m - i + 1)/m)^n``, hence

        ``E[Z(n)] = sum_i x_(i) * [((m-i+1)/m)^n - ((m-i)/m)^n]``.

        This avoids Monte-Carlo noise entirely and underlies the
        nonparametric speed-up predictor.
        """
        if n_cores < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        m = self._n
        upper = (np.arange(m, 0, -1, dtype=float) / m) ** n_cores
        lower = (np.arange(m - 1, -1, -1, dtype=float) / m) ** n_cores
        weights = upper - lower
        return float(np.dot(self._sorted, weights))

    def speedup_limit(self) -> float:
        low = float(self._sorted[0])
        if low <= 0.0:
            return math.inf
        return self.mean() / low
