"""Parametric and empirical runtime-distribution families.

The paper models the sequential runtime (or iteration count) of a Las Vegas
algorithm as a continuous random variable ``Y``.  Every family here exposes
the same :class:`~repro.core.distributions.base.RuntimeDistribution`
interface: density, cumulative distribution, survival function, mean,
quantile, sampling and the minimum-of-``n`` transform used to model an
independent multi-walk execution.

Families used directly by the paper:

* :class:`ShiftedExponential` — Section 3.3, fits ALL-INTERVAL and COSTAS.
* :class:`LogNormalRuntime` (shifted lognormal) — Section 3.4, fits
  MAGIC-SQUARE.
* :class:`TruncatedGaussian` — Figure 1's illustrative example (also one of
  the families the authors tested and rejected).

Additional families (gamma, Weibull, Pareto, uniform) are provided because
the paper's conclusion points at them as candidates with known order
statistics, and because the automatic family selector needs a non-trivial
candidate set.
"""

from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.empirical import EmpiricalDistribution
from repro.core.distributions.exponential import ShiftedExponential
from repro.core.distributions.gamma import GammaRuntime
from repro.core.distributions.gaussian import TruncatedGaussian
from repro.core.distributions.levy import LevyRuntime
from repro.core.distributions.loglogistic import LogLogisticRuntime
from repro.core.distributions.lognormal import LogNormalRuntime
from repro.core.distributions.pareto import ParetoRuntime
from repro.core.distributions.registry import distribution_registry, get_distribution_class
from repro.core.distributions.uniform import UniformRuntime
from repro.core.distributions.weibull import WeibullRuntime

__all__ = [
    "EmpiricalDistribution",
    "GammaRuntime",
    "LevyRuntime",
    "LogLogisticRuntime",
    "LogNormalRuntime",
    "ParetoRuntime",
    "RuntimeDistribution",
    "ShiftedExponential",
    "TruncatedGaussian",
    "UniformRuntime",
    "WeibullRuntime",
    "distribution_registry",
    "get_distribution_class",
]
