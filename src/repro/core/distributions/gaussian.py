"""Truncated (non-negative) gaussian runtime distribution.

Figure 1 of the paper illustrates the minimum-of-``n`` transform on a
gaussian "cut on R- and renormalised" — i.e. a normal distribution truncated
to the non-negative axis (more generally to ``[lower, inf)``).  The authors
also ran the Kolmogorov–Smirnov test against a gaussian for the benchmark
data (and rejected it); having the family available lets the reproduction
exercise that negative result too.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np
from scipy import special

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["TruncatedGaussian"]

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _std_norm_cdf(z: np.ndarray | float) -> np.ndarray | float:
    return 0.5 * special.erfc(-np.asarray(z, dtype=float) / _SQRT2)


def _std_norm_sf(z: np.ndarray | float) -> np.ndarray | float:
    """Survival function 1 - Phi(z), computed without cancellation."""
    return 0.5 * special.erfc(np.asarray(z, dtype=float) / _SQRT2)


def _std_norm_pdf(z: np.ndarray | float) -> np.ndarray | float:
    z = np.asarray(z, dtype=float)
    return np.exp(-0.5 * z * z) / _SQRT_2PI


class TruncatedGaussian(RuntimeDistribution):
    """Normal distribution truncated to ``[lower, +inf)`` and renormalised.

    Parameters
    ----------
    mu:
        Location of the untruncated normal.
    sigma:
        Scale of the untruncated normal.  Must be positive.
    lower:
        Truncation point; probability mass below it is removed and the
        remainder renormalised.  Defaults to 0 (runtimes are non-negative).
    """

    name: ClassVar[str] = "truncated_gaussian"

    def __init__(self, mu: float, sigma: float, lower: float = 0.0) -> None:
        if sigma <= 0.0 or not math.isfinite(sigma):
            raise ValueError(f"sigma must be positive and finite, got {sigma}")
        if not math.isfinite(mu):
            raise ValueError(f"mu must be finite, got {mu}")
        if not math.isfinite(lower):
            raise ValueError(f"lower truncation must be finite, got {lower}")
        self.mu = float(mu)
        self.sigma = float(sigma)
        self.lower = float(lower)
        alpha = (self.lower - self.mu) / self.sigma
        self._alpha = alpha
        self._tail_mass = float(_std_norm_sf(alpha))
        if self._tail_mass <= 0.0:
            raise ValueError(
                "truncation removes essentially all probability mass "
                f"(mu={mu}, sigma={sigma}, lower={lower})"
            )

    def params(self) -> Mapping[str, float]:
        return {"mu": self.mu, "sigma": self.sigma, "lower": self.lower}

    def support(self) -> tuple[float, float]:
        return (self.lower, math.inf)

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = (t - self.mu) / self.sigma
        dens = _std_norm_pdf(z) / (self.sigma * self._tail_mass)
        out = np.where(t < self.lower, 0.0, dens)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = (t - self.mu) / self.sigma
        # 1 - sf(z)/sf(alpha) avoids the catastrophic cancellation of
        # (Phi(z) - Phi(alpha)) / (1 - Phi(alpha)) under extreme truncation.
        vals = 1.0 - _std_norm_sf(z) / self._tail_mass
        out = np.clip(np.where(t < self.lower, 0.0, vals), 0.0, 1.0)
        return out if out.ndim else float(out)

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        z = (t - self.mu) / self.sigma
        vals = _std_norm_sf(z) / self._tail_mass
        out = np.clip(np.where(t < self.lower, 1.0, vals), 0.0, 1.0)
        return out if out.ndim else float(out)

    def mean(self) -> float:
        # Standard truncated-normal mean: mu + sigma * phi(alpha) / (1 - Phi(alpha)).
        hazard = float(_std_norm_pdf(self._alpha)) / self._tail_mass
        return self.mu + self.sigma * hazard

    def variance(self) -> float:
        hazard = float(_std_norm_pdf(self._alpha)) / self._tail_mass
        return self.sigma**2 * (1.0 + self._alpha * hazard - hazard * hazard)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 0.0:
            return self.lower
        if q == 1.0:
            return math.inf
        # Solve sf(t) = 1 - q, i.e. 0.5 * erfc(z / sqrt(2)) = (1 - q) * tail_mass;
        # erfcinv keeps full precision even under extreme truncation.
        target = (1.0 - q) * self._tail_mass
        z = _SQRT2 * float(special.erfcinv(2.0 * target))
        return self.mu + self.sigma * z

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        # Inverse-CDF sampling keeps the draw count deterministic, which
        # matters for reproducible experiment seeds (rejection sampling
        # would consume a data-dependent number of uniforms).
        u = rng.uniform(size=size)
        target = (1.0 - np.asarray(u)) * self._tail_mass
        z = _SQRT2 * special.erfcinv(2.0 * target)
        out = self.mu + self.sigma * z
        return out if np.ndim(out) else float(out)
