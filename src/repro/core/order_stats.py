"""Moments of order statistics for runtime distributions.

The paper's key quantity is the expectation of the *first* order statistic
(minimum) of ``n`` i.i.d. draws from the sequential runtime distribution
``Y``:

``E[Z(n)] = n * Integral t f_Y(t) (1 - F_Y(t))^(n-1) dt``

which, for a non-negative random variable, can equally be written as the
integral of the survival function of the minimum:

``E[Z(n)] = low + Integral_{low}^{inf} (1 - F_Y(t))^n dt``

(``low`` being the lower end of the support).  This module provides robust
numerical evaluation of both forms, the quantile-domain form used when the
tail decays too fast for direct quadrature, and — because the paper cites
Nadarajah's explicit order-statistic moments — general ``k``-th order
statistic moments.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from scipy import integrate, special

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.distributions.base import RuntimeDistribution

__all__ = [
    "expected_minimum",
    "expected_minimum_quantile_form",
    "expected_minimum_survival_form",
    "order_statistic_moment",
    "raw_moment",
]

#: Relative tolerance requested from the quadrature routines.
_QUAD_EPSREL = 1e-9
#: Survival probability below which the integrand is treated as negligible.
_TAIL_EPS = 1e-14


def _support_or_raise(dist: "RuntimeDistribution") -> tuple[float, float]:
    low, high = dist.support()
    if not math.isfinite(low):
        raise ValueError(f"distribution {dist!r} has an unbounded lower support")
    return low, high


def _upper_integration_bound(dist: "RuntimeDistribution", n_cores: int) -> float:
    """Point beyond which ``(1 - F_Y)^n`` is numerically negligible."""
    # (1 - F)^n <= eps  <=>  F >= 1 - eps^(1/n)
    prob = 1.0 - _TAIL_EPS ** (1.0 / n_cores)
    prob = min(max(prob, 1e-12), 1.0 - 1e-15)
    return dist.quantile(prob)


def expected_minimum_survival_form(dist: "RuntimeDistribution", n_cores: int) -> float:
    """``E[Z(n)]`` by integrating the survival function of the minimum.

    ``E[Z(n)] = low + Integral_{low}^{high} (1 - F_Y(t))^n dt`` — the
    integrand is monotone decreasing from 1 to 0, which quadrature handles
    well provided the upper bound is placed where the tail has died out.
    """
    if n_cores < 1:
        raise ValueError(f"number of cores must be >= 1, got {n_cores}")
    low, high = _support_or_raise(dist)
    upper = high if math.isfinite(high) else _upper_integration_bound(dist, n_cores)
    if upper <= low:
        return low

    def integrand(t: float) -> float:
        sf = float(dist.sf(t))
        if sf <= 0.0:
            return 0.0
        return sf**n_cores

    # Interior waypoints help quad find the knee of the integrand, which for
    # large n sits very close to the lower support bound.
    waypoints = []
    for prob in (0.5, 0.9, 0.99):
        q = dist.quantile(1.0 - (1.0 - prob) ** (1.0 / n_cores)) if n_cores > 1 else dist.quantile(prob)
        if low < q < upper:
            waypoints.append(q)
    value, _abserr = integrate.quad(
        integrand,
        low,
        upper,
        points=sorted(set(waypoints)) or None,
        limit=400,
        epsrel=_QUAD_EPSREL,
        epsabs=0.0,
    )
    return low + value


def expected_minimum_quantile_form(dist: "RuntimeDistribution", n_cores: int) -> float:
    """``E[Z(n)]`` via the quantile (inverse-CDF) representation.

    Writing ``Q_Y`` for the quantile function of ``Y``, the minimum of ``n``
    draws has quantile function ``Q_Z(p) = Q_Y(1 - (1 - p)^(1/n))``, so

    ``E[Z(n)] = Integral_0^1 Q_Y(1 - (1 - p)^(1/n)) dp``.

    This form is preferred when the survival integrand is too stiff (very
    heavy tails) but requires an accurate quantile function.
    """
    if n_cores < 1:
        raise ValueError(f"number of cores must be >= 1, got {n_cores}")

    def integrand(p: float) -> float:
        prob = -math.expm1(math.log1p(-p) / n_cores) if n_cores > 1 else p
        # Equivalent to 1 - (1 - p)^(1/n) but stable near p = 0 and p = 1.
        return dist.quantile(min(max(prob, 0.0), 1.0 - 1e-16))

    value, _abserr = integrate.quad(
        integrand, 0.0, 1.0, limit=400, epsrel=_QUAD_EPSREL, epsabs=0.0
    )
    return value


def expected_minimum(dist: "RuntimeDistribution", n_cores: int, *, method: str = "auto") -> float:
    """Expected value of the minimum of ``n_cores`` i.i.d. draws from ``dist``.

    Parameters
    ----------
    dist:
        The sequential runtime distribution ``Y``.
    n_cores:
        Number of independent walks (cores).
    method:
        ``"survival"`` forces the survival-function integral,
        ``"quantile"`` the inverse-CDF integral, ``"auto"`` (default) tries
        the survival form and falls back to the quantile form if the
        quadrature fails to converge.
    """
    if method not in {"auto", "survival", "quantile"}:
        raise ValueError(f"unknown method {method!r}")
    if method == "quantile":
        return expected_minimum_quantile_form(dist, n_cores)
    if method == "survival":
        return expected_minimum_survival_form(dist, n_cores)
    try:
        value = expected_minimum_survival_form(dist, n_cores)
    except Exception:  # pragma: no cover - defensive fallback
        return expected_minimum_quantile_form(dist, n_cores)
    if not math.isfinite(value):
        return expected_minimum_quantile_form(dist, n_cores)
    return value


def order_statistic_moment(
    dist: "RuntimeDistribution",
    n: int,
    k: int,
    moment: int = 1,
) -> float:
    """``E[X_(k:n)^moment]`` — the ``moment``-th raw moment of the ``k``-th order statistic.

    Implements the textbook integral (David & Nagaraja, eq. 2.2; the explicit
    formulas of Nadarajah 2008 reduce to the same one-dimensional quadrature
    for the families used here):

    ``E[X_(k:n)^m] = C(n, k) * k * Integral t^m f(t) F(t)^(k-1) (1 - F(t))^(n-k) dt``.

    ``k = 1`` recovers the minimum used throughout the paper.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 1 <= k <= n:
        raise ValueError(f"k must satisfy 1 <= k <= n, got k={k}, n={n}")
    if moment < 1:
        raise ValueError(f"moment must be >= 1, got {moment}")
    low, high = _support_or_raise(dist)
    upper = high if math.isfinite(high) else dist.quantile(1.0 - 1e-12)
    coeff = float(special.comb(n, k, exact=False)) * k

    def integrand(t: float) -> float:
        f = float(dist.pdf(t))
        if f <= 0.0:
            return 0.0
        cdf = float(dist.cdf(t))
        sf = 1.0 - cdf
        return (t**moment) * f * cdf ** (k - 1) * sf ** (n - k)

    waypoints = [dist.quantile(p) for p in (0.05, 0.25, 0.5, 0.75, 0.95)]
    waypoints = [w for w in waypoints if low < w < upper]
    value, _abserr = integrate.quad(
        integrand,
        low,
        upper,
        points=sorted(set(waypoints)) or None,
        limit=400,
        epsrel=1e-8,
        epsabs=0.0,
    )
    return coeff * value


def raw_moment(dist: "RuntimeDistribution", order: int = 1) -> float:
    """``E[Y^order]`` by quadrature (used for variance fallbacks)."""
    if order < 1:
        raise ValueError(f"order must be >= 1, got {order}")
    low, high = _support_or_raise(dist)
    upper = high if math.isfinite(high) else dist.quantile(1.0 - 1e-12)

    def integrand(t: float) -> float:
        return (t**order) * float(dist.pdf(t))

    waypoints = [dist.quantile(p) for p in (0.05, 0.25, 0.5, 0.75, 0.95)]
    waypoints = [w for w in waypoints if low < w < upper]
    value, _abserr = integrate.quad(
        integrand,
        low,
        upper,
        points=sorted(set(waypoints)) or None,
        limit=400,
        epsrel=1e-9,
        epsabs=0.0,
    )
    return value
