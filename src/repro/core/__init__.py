"""Core probabilistic model: distributions, order statistics, speed-up prediction.

The mathematical content of the paper lives here:

* :mod:`repro.core.distributions` — parametric runtime-distribution families
  (shifted exponential, shifted lognormal, truncated gaussian, gamma,
  Weibull, Pareto, uniform) plus a nonparametric empirical distribution.
* :mod:`repro.core.order_stats` — moments of order statistics, in particular
  the first order statistic (minimum of ``n`` i.i.d. draws).
* :mod:`repro.core.minimum` — the :class:`MinDistribution` wrapper realising
  ``F_Z(n) = 1 - (1 - F_Y)^n``.
* :mod:`repro.core.speedup` — :class:`SpeedupModel`, computing
  ``G_n = E[Y] / E[Z(n)]`` together with its asymptotic limit and the
  tangent at the origin.
* :mod:`repro.core.fitting` — parameter estimation, Kolmogorov–Smirnov
  goodness-of-fit testing and automatic family selection.
* :mod:`repro.core.prediction` — the high-level entry point turning raw
  observations into a predicted speed-up curve.

Extensions beyond the paper's core model (its future-work directions):

* :mod:`repro.core.censoring` — right-censored campaigns (Kaplan–Meier,
  censoring-aware MLE) and incomplete algorithms (per-run success < 1).
* :mod:`repro.core.restarts` — optimal restart cutoffs, the Luby sequence,
  and the restart-vs-multi-walk comparison.
* :mod:`repro.core.quorum` — waiting for the ``k``-th finisher instead of
  the first one.
"""

from repro.core import (
    censoring,
    distributions,
    fitting,
    minimum,
    order_stats,
    prediction,
    quorum,
    restarts,
    speedup,
)

__all__ = [
    "censoring",
    "distributions",
    "fitting",
    "minimum",
    "order_stats",
    "prediction",
    "quorum",
    "restarts",
    "speedup",
]
