"""Quorum (k-th finisher) generalisation of the multi-walk model.

The paper's multi-walk stops at the *first* finisher — the first order
statistic.  Several practical schemes instead wait for the ``k``-th
finisher:

* collecting ``k`` distinct solutions (e.g. enumerating Costas arrays, or
  gathering a solution pool for a portfolio's learning phase);
* robustness against stragglers or faulty workers (ignore the slowest
  ``n - k`` walks);
* statistical confidence (median-of-finishers estimators).

:class:`QuorumSpeedupModel` extends the speed-up machinery to
``Z_k(n) = k-th smallest of n i.i.d. runtimes`` using the order-statistic
moments of :mod:`repro.core.order_stats` (closed form for the exponential
family, quadrature otherwise).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable

from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.exponential import ShiftedExponential
from repro.core.order_stats import order_statistic_moment

__all__ = ["QuorumCurve", "QuorumSpeedupModel"]


@dataclasses.dataclass(frozen=True)
class QuorumCurve:
    """Speed-ups of a ``k``-quorum multi-walk across core counts."""

    quorum: int
    cores: tuple[int, ...]
    expected_runtimes: tuple[float, ...]
    speedups: tuple[float, ...]

    def as_dict(self) -> dict[int, float]:
        return dict(zip(self.cores, self.speedups))


class QuorumSpeedupModel:
    """Predict the runtime of waiting for the ``k``-th finisher out of ``n`` walks.

    Parameters
    ----------
    distribution:
        Sequential runtime distribution ``Y``.
    quorum:
        Number of walks that must finish (``k``); ``k = 1`` recovers the
        paper's model exactly.
    """

    def __init__(self, distribution: RuntimeDistribution, quorum: int = 1) -> None:
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {quorum}")
        self.distribution = distribution
        self.quorum = int(quorum)

    # ------------------------------------------------------------------
    def expected_kth_finisher(self, n_cores: int) -> float:
        """``E[Z_k(n)]`` — expected runtime until the ``k``-th walk finishes."""
        n = int(n_cores)
        if n < self.quorum:
            raise ValueError(
                f"need at least as many walks as the quorum ({self.quorum}), got {n}"
            )
        if self.quorum == 1:
            return self.distribution.expected_minimum(n)
        if isinstance(self.distribution, ShiftedExponential):
            # Rényi representation: E[X_(k:n)] = x0 + (1/lambda) * sum_{i=0}^{k-1} 1/(n-i).
            lam = self.distribution.lam
            total = sum(1.0 / (n - i) for i in range(self.quorum))
            return self.distribution.x0 + total / lam
        return order_statistic_moment(self.distribution, n=n, k=self.quorum)

    def speedup(self, n_cores: int) -> float:
        """Speed-up of the quorum multi-walk over collecting ``k`` solutions sequentially.

        The sequential baseline for a ``k``-quorum is ``k`` independent runs
        back to back, i.e. ``k * E[Y]``; the parallel cost is the ``k``-th
        order statistic of ``n`` walks.
        """
        expected = self.expected_kth_finisher(n_cores)
        if expected <= 0.0:
            return math.inf
        return self.quorum * self.distribution.mean() / expected

    def curve(self, cores: Iterable[int]) -> QuorumCurve:
        """Quorum speed-up curve over a collection of core counts."""
        core_list = [int(c) for c in cores]
        if not core_list:
            raise ValueError("at least one core count is required")
        expectations = tuple(self.expected_kth_finisher(c) for c in core_list)
        sequential = self.quorum * self.distribution.mean()
        speedups = tuple(sequential / e if e > 0 else math.inf for e in expectations)
        return QuorumCurve(
            quorum=self.quorum,
            cores=tuple(core_list),
            expected_runtimes=expectations,
            speedups=speedups,
        )

    def overhead_vs_first_finisher(self, n_cores: int) -> float:
        """How much longer waiting for the quorum takes than the first finisher.

        Ratio ``E[Z_k(n)] / E[Z_1(n)] >= 1``; useful for sizing how many
        extra cores are needed to hide the quorum requirement.
        """
        return self.expected_kth_finisher(n_cores) / self.distribution.expected_minimum(
            int(n_cores)
        )
