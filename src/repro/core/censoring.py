"""Censored runs and incomplete Las Vegas algorithms.

Two practical complications the basic pipeline glosses over:

1. **Right-censored observations.**  Production campaigns cap every run with
   an iteration budget; runs that hit the cap only tell us the runtime
   *exceeds* the budget.  Throwing them away (what the naive pipeline does)
   biases the fitted distribution toward optimism.  This module provides a
   censoring-aware exponential fit (the closed-form MLE), a Kaplan–Meier
   estimate of the survival function for the nonparametric route, and a
   censoring-aware mean estimate.

2. **Incomplete algorithms.**  Definition 1 of the paper deliberately covers
   algorithms that may never terminate (probability of success ``p < 1`` per
   run).  For those, the multi-walk not only shortens successful runs but
   also boosts the success probability to ``1 - (1 - p)^n``;
   :class:`IncompleteRunModel` quantifies both effects.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.core.distributions.exponential import ShiftedExponential
from repro.multiwalk.observations import RuntimeObservations

__all__ = [
    "IncompleteRunModel",
    "KaplanMeierEstimate",
    "censored_exponential_fit",
    "censored_mean",
    "kaplan_meier",
]


# ----------------------------------------------------------------------
# Censored parametric fitting
# ----------------------------------------------------------------------
def _split_censored(
    values: np.ndarray, censored: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values, dtype=float).ravel()
    censored = np.asarray(censored, dtype=bool).ravel()
    if values.size != censored.size:
        raise ValueError("values and censoring flags must have the same length")
    if values.size == 0:
        raise ValueError("need at least one observation")
    if np.any(values < 0) or not np.all(np.isfinite(values)):
        raise ValueError("observations must be finite and non-negative")
    return values, censored


def censored_exponential_fit(
    values: Sequence[float] | np.ndarray,
    censored: Sequence[bool] | np.ndarray,
    *,
    x0: float | None = None,
) -> ShiftedExponential:
    """Maximum-likelihood shifted-exponential fit with right-censored runs.

    For an exponential excess over the shift, the MLE has the classical
    closed form ``lambda_hat = (#uncensored) / sum(excess over all runs)``:
    censored runs contribute exposure time but no event.  The shift defaults
    to the smallest *uncensored* observation (the paper's rule applied to
    the runs that actually finished).

    Raises ``ValueError`` when every run is censored (the rate is then not
    identifiable).
    """
    values, flags = _split_censored(np.asarray(values, dtype=float), np.asarray(censored))
    events = values[~flags]
    if events.size == 0:
        raise ValueError("all runs are censored; the runtime distribution is not identifiable")
    shift = float(events.min()) if x0 is None else float(x0)
    exposure = float(np.clip(values - shift, 0.0, None).sum())
    # Degenerate samples (every run equal to the shift) have zero exposure;
    # clamp it so the fitted rate stays finite (a huge rate = "essentially
    # deterministic at the shift", which is the right limit).
    exposure = max(exposure, 1e-12)
    lam = events.size / exposure
    return ShiftedExponential(x0=shift, lam=lam)


def censored_mean(
    values: Sequence[float] | np.ndarray, censored: Sequence[bool] | np.ndarray
) -> float:
    """Mean runtime accounting for censored runs via the exponential MLE.

    Equivalent to ``x0 + 1/lambda_hat`` of :func:`censored_exponential_fit`;
    compared to the naive mean of the uncensored runs it corrects the
    downward bias introduced by dropping the longest (censored) runs.
    """
    fit = censored_exponential_fit(values, censored)
    return fit.mean()


# ----------------------------------------------------------------------
# Kaplan–Meier nonparametric survival estimate
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class KaplanMeierEstimate:
    """Product-limit estimate of the survival function ``P[Y > t]``."""

    times: np.ndarray
    survival: np.ndarray
    n_events: int
    n_censored: int

    def survival_at(self, t: np.ndarray | float) -> np.ndarray | float:
        """Step-function evaluation of the survival estimate."""
        t_arr = np.asarray(t, dtype=float)
        idx = np.searchsorted(self.times, t_arr, side="right") - 1
        values = np.where(idx >= 0, self.survival[np.clip(idx, 0, None)], 1.0)
        return values if values.ndim else float(values)

    def cdf_at(self, t: np.ndarray | float) -> np.ndarray | float:
        return 1.0 - np.asarray(self.survival_at(t))

    def restricted_mean(self) -> float:
        """Mean restricted to the observed horizon (area under the KM curve)."""
        grid = np.concatenate([[0.0], self.times])
        heights = np.concatenate([[1.0], self.survival])[:-1]
        return float(np.sum(np.diff(grid) * heights))


def kaplan_meier(
    values: Sequence[float] | np.ndarray, censored: Sequence[bool] | np.ndarray
) -> KaplanMeierEstimate:
    """Kaplan–Meier estimator of the runtime survival function.

    Standard product-limit construction: at each distinct event time ``t_i``
    with ``d_i`` events and ``r_i`` runs still "at risk",
    ``S(t) = prod_{t_i <= t} (1 - d_i / r_i)``.
    """
    values, flags = _split_censored(np.asarray(values, dtype=float), np.asarray(censored))
    order = np.argsort(values, kind="stable")
    values, flags = values[order], flags[order]
    n = values.size
    event_times: list[float] = []
    survival: list[float] = []
    current = 1.0
    i = 0
    while i < n:
        t = values[i]
        j = i
        d = 0
        while j < n and values[j] == t:
            if not flags[j]:
                d += 1
            j += 1
        at_risk = n - i
        if d > 0:
            current *= 1.0 - d / at_risk
            event_times.append(float(t))
            survival.append(current)
        i = j
    if not event_times:
        raise ValueError("all runs are censored; the survival function cannot drop")
    return KaplanMeierEstimate(
        times=np.asarray(event_times),
        survival=np.asarray(survival),
        n_events=int((~flags).sum()),
        n_censored=int(flags.sum()),
    )


# ----------------------------------------------------------------------
# Incomplete (may-not-terminate) Las Vegas algorithms
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class IncompleteRunModel:
    """Multi-walk behaviour of an algorithm with per-run success probability ``p``.

    Attributes
    ----------
    success_probability:
        Probability that a single budgeted run finds a solution.
    mean_success_cost:
        Mean cost of the *successful* runs (iterations or seconds).
    budget:
        Cost charged for an unsuccessful run (the censoring budget).
    """

    success_probability: float
    mean_success_cost: float
    budget: float

    def __post_init__(self) -> None:
        if not 0.0 < self.success_probability <= 1.0:
            raise ValueError(
                f"success probability must be in (0, 1], got {self.success_probability}"
            )
        if self.mean_success_cost < 0.0 or self.budget <= 0.0:
            raise ValueError("costs must be non-negative and the budget positive")

    @classmethod
    def from_observations(
        cls, observations: RuntimeObservations, budget: float, *, measure: str = "iterations"
    ) -> "IncompleteRunModel":
        """Estimate the model from a batch containing censored runs."""
        solved_values = observations.values(measure, solved_only=True)
        return cls(
            success_probability=observations.success_rate(),
            mean_success_cost=float(solved_values.mean()),
            budget=float(budget),
        )

    # ------------------------------------------------------------------
    def multiwalk_success_probability(self, n_cores: int) -> float:
        """``1 - (1 - p)^n`` — probability that at least one walk succeeds."""
        if n_cores < 1:
            raise ValueError(f"number of cores must be >= 1, got {n_cores}")
        if self.success_probability >= 1.0:
            return 1.0
        return float(-math.expm1(n_cores * math.log1p(-self.success_probability)))

    def cores_for_success_probability(self, target: float) -> int:
        """Smallest ``n`` with multi-walk success probability at least ``target``."""
        if not 0.0 < target < 1.0:
            raise ValueError(f"target probability must be in (0, 1), got {target}")
        if self.success_probability >= 1.0:
            return 1
        n = math.log1p(-target) / math.log1p(-self.success_probability)
        return max(1, int(math.ceil(n - 1e-12)))

    def expected_sequential_cost_with_restarts(self) -> float:
        """Expected cost of restart-until-success on a single core.

        Geometric number of attempts with success probability ``p``: the
        expected number of failed attempts is ``(1-p)/p``, each costing the
        full budget, plus one successful attempt.
        """
        p = self.success_probability
        return self.mean_success_cost + self.budget * (1.0 - p) / p

    def expected_multiwalk_rounds(self, n_cores: int) -> float:
        """Expected number of synchronous budgeted rounds before some walk succeeds."""
        return 1.0 / self.multiwalk_success_probability(n_cores)

    def effective_speedup(self, n_cores: int) -> float:
        """Speed-up of budgeted multi-walk rounds over sequential restart-until-success.

        Both sides charge the full budget per failed round; the parallel side
        needs ``1 / (1 - (1-p)^n)`` rounds in expectation.  This is the
        natural generalisation of ``G_n`` to incomplete algorithms and equals
        roughly ``min(n, ...)`` for small ``p``.
        """
        sequential = self.expected_sequential_cost_with_restarts()
        rounds = self.expected_multiwalk_rounds(n_cores)
        parallel = self.mean_success_cost + self.budget * (rounds - 1.0)
        return sequential / parallel
