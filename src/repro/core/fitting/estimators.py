"""Per-family parameter estimation from observed runtimes.

Each estimator takes the raw observations plus an already-estimated shift
``x0`` and returns a fully-constructed distribution object.  The estimators
follow the paper where the paper is explicit (exponential: ``lambda = 1 /
(mean - x0)``; lognormal: gaussian moments of ``log(obs - x0)``) and use
standard method-of-moments / maximum-likelihood estimators elsewhere.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.exponential import ShiftedExponential
from repro.core.distributions.gamma import GammaRuntime
from repro.core.distributions.gaussian import TruncatedGaussian
from repro.core.distributions.levy import LevyRuntime
from repro.core.distributions.loglogistic import LogLogisticRuntime
from repro.core.distributions.lognormal import LogNormalRuntime
from repro.core.distributions.pareto import ParetoRuntime
from repro.core.distributions.uniform import UniformRuntime
from repro.core.distributions.weibull import WeibullRuntime

__all__ = ["ESTIMATORS", "estimate_parameters"]

#: Smallest admissible positive excess over the shift; avoids log(0) and 1/0.
_EPS = 1e-12


def _validated(observations: np.ndarray) -> np.ndarray:
    data = np.asarray(observations, dtype=float).ravel()
    if data.size < 2:
        raise ValueError("parameter estimation needs at least two observations")
    if not np.all(np.isfinite(data)):
        raise ValueError("observations must be finite")
    if np.any(data < 0.0):
        raise ValueError("runtimes must be non-negative")
    return data


def _positive_excess(data: np.ndarray, x0: float) -> np.ndarray:
    """Observations minus the shift, restricted to strictly positive values.

    The paper shifts by the observed minimum, which maps the smallest
    observation(s) exactly onto zero; those points carry no information
    about the log-scale / tail parameters and would produce ``log(0)``, so
    they are dropped for the estimators that need strict positivity.
    """
    excess = data - x0
    positive = excess[excess > _EPS]
    if positive.size < 2:
        # Degenerate sample (e.g. all observations equal to the shift):
        # fall back to a tiny symmetric jitter so estimators stay defined.
        positive = np.maximum(excess, _EPS)
    return positive


def fit_shifted_exponential(observations: np.ndarray, x0: float) -> ShiftedExponential:
    """Paper's estimator: ``lambda = 1 / (mean(obs) - x0)``."""
    data = _validated(observations)
    mean_excess = float(data.mean()) - x0
    if mean_excess <= _EPS:
        mean_excess = _EPS
    return ShiftedExponential(x0=x0, lam=1.0 / mean_excess)


def fit_shifted_lognormal(observations: np.ndarray, x0: float) -> LogNormalRuntime:
    """Gaussian moments of ``log(obs - x0)`` (what Mathematica's estimator does)."""
    data = _validated(observations)
    logs = np.log(_positive_excess(data, x0))
    mu = float(logs.mean())
    sigma = float(logs.std(ddof=1)) if logs.size > 1 else 0.0
    if sigma <= _EPS:
        sigma = _EPS
    return LogNormalRuntime(mu=mu, sigma=sigma, x0=x0)


def fit_truncated_gaussian(observations: np.ndarray, x0: float) -> TruncatedGaussian:
    """Moment matching of the untruncated normal; truncation at the shift."""
    data = _validated(observations)
    sigma = float(data.std(ddof=1))
    if sigma <= _EPS:
        sigma = _EPS
    return TruncatedGaussian(mu=float(data.mean()), sigma=sigma, lower=max(x0, 0.0))


def fit_shifted_gamma(observations: np.ndarray, x0: float) -> GammaRuntime:
    """Method of moments on the excess over the shift."""
    data = _validated(observations)
    excess = _positive_excess(data, x0)
    mean = float(excess.mean())
    var = float(excess.var(ddof=1)) if excess.size > 1 else mean * mean
    if var <= _EPS:
        var = _EPS
    shape = mean * mean / var
    scale = var / mean
    return GammaRuntime(shape=max(shape, _EPS), scale=max(scale, _EPS), x0=x0)


def fit_shifted_weibull(observations: np.ndarray, x0: float) -> WeibullRuntime:
    """Moment-matching Weibull fit on the excess over the shift.

    Uses the coefficient-of-variation relation
    ``CV^2 = Gamma(1 + 2/k)/Gamma(1 + 1/k)^2 - 1`` solved for the shape ``k``
    by bisection, then matches the mean for the scale.  This avoids the
    flaky unbounded MLE optimisation for small samples.
    """
    data = _validated(observations)
    excess = _positive_excess(data, x0)
    mean = float(excess.mean())
    std = float(excess.std(ddof=1)) if excess.size > 1 else mean
    if std <= _EPS:
        return WeibullRuntime(shape=1.0, scale=max(mean, _EPS), x0=x0)
    target_cv2 = (std / mean) ** 2

    def cv2(shape: float) -> float:
        g1 = math.gamma(1.0 + 1.0 / shape)
        g2 = math.gamma(1.0 + 2.0 / shape)
        return g2 / (g1 * g1) - 1.0

    lo, hi = 0.05, 50.0
    # cv2 is decreasing in the shape; clamp targets outside the bracket.
    if target_cv2 >= cv2(lo):
        shape = lo
    elif target_cv2 <= cv2(hi):
        shape = hi
    else:
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if cv2(mid) > target_cv2:
                lo = mid
            else:
                hi = mid
        shape = 0.5 * (lo + hi)
    scale = mean / math.gamma(1.0 + 1.0 / shape)
    return WeibullRuntime(shape=shape, scale=max(scale, _EPS), x0=x0)


def fit_levy(observations: np.ndarray, x0: float) -> LevyRuntime:
    """Median-matching Lévy fit (the mean does not exist, so MoM is unusable).

    The Lévy median equals ``x0 + c / (2 * erfcinv(1/2)^2)``; solving for the
    scale from the sample median of the excess gives a robust estimator.
    """
    from scipy import special

    data = _validated(observations)
    excess = _positive_excess(data, x0)
    median = float(np.median(excess))
    if median <= _EPS:
        median = _EPS
    scale = median * 2.0 * float(special.erfcinv(0.5)) ** 2
    return LevyRuntime(scale=max(scale, _EPS), x0=x0)


def fit_log_logistic(observations: np.ndarray, x0: float) -> LogLogisticRuntime:
    """Quantile-matching log-logistic fit on the excess over the shift.

    The median of the excess gives the scale ``alpha`` directly; the
    inter-quartile ratio gives the shape via
    ``Q75 / Q25 = 9^(1/beta)  =>  beta = ln 9 / ln(Q75 / Q25)``.
    """
    data = _validated(observations)
    excess = _positive_excess(data, x0)
    q25, q50, q75 = np.quantile(excess, [0.25, 0.5, 0.75])
    alpha = max(float(q50), _EPS)
    ratio = float(q75) / max(float(q25), _EPS)
    if ratio <= 1.0 + 1e-9:
        beta = 1.0 / _EPS  # essentially deterministic excess
    else:
        beta = math.log(9.0) / math.log(ratio)
    return LogLogisticRuntime(alpha=alpha, beta=max(beta, _EPS), x0=x0)


def fit_pareto(observations: np.ndarray, x0: float) -> ParetoRuntime:
    """Maximum-likelihood Pareto fit; ``x0`` is ignored (x_m plays that role)."""
    data = _validated(observations)
    x_m = float(data.min())
    if x_m <= 0.0:
        x_m = _EPS
    ratios = np.log(np.maximum(data, x_m) / x_m)
    total = float(ratios.sum())
    alpha = data.size / total if total > _EPS else 1.0 / _EPS
    return ParetoRuntime(x_m=x_m, alpha=max(alpha, _EPS))


def fit_uniform(observations: np.ndarray, x0: float) -> UniformRuntime:
    """Range fit; the shift argument is ignored (the minimum is the lower bound)."""
    data = _validated(observations)
    low = float(data.min())
    high = float(data.max())
    if high <= low:
        high = low + max(abs(low), 1.0) * 1e-9 + _EPS
    return UniformRuntime(low=low, high=high)


#: Family name -> estimator callable.
ESTIMATORS: Dict[str, Callable[[np.ndarray, float], RuntimeDistribution]] = {
    ShiftedExponential.name: fit_shifted_exponential,
    LogNormalRuntime.name: fit_shifted_lognormal,
    TruncatedGaussian.name: fit_truncated_gaussian,
    GammaRuntime.name: fit_shifted_gamma,
    WeibullRuntime.name: fit_shifted_weibull,
    ParetoRuntime.name: fit_pareto,
    UniformRuntime.name: fit_uniform,
    LevyRuntime.name: fit_levy,
    LogLogisticRuntime.name: fit_log_logistic,
}


def estimate_parameters(
    observations: np.ndarray, family: str, x0: float
) -> RuntimeDistribution:
    """Estimate the parameters of ``family`` given the shift ``x0``."""
    try:
        estimator = ESTIMATORS[family]
    except KeyError:
        known = ", ".join(sorted(ESTIMATORS))
        raise KeyError(f"no estimator for family {family!r}; known families: {known}") from None
    return estimator(np.asarray(observations, dtype=float), float(x0))
