"""Shift (``x0``) estimation rules.

The shift of a runtime distribution is its essential infimum — the shortest
run the algorithm can possibly produce.  The paper estimates it with the
*observed minimum* (ALL-INTERVAL, MAGIC-SQUARE) and sets it to *zero* when
the observed minimum is negligible compared to the mean (COSTAS).  Section 7
of the paper explicitly discusses how decisive this choice is for the shape
of the predicted curve (finite limit versus linear speed-up), so the library
exposes several rules and the benchmarks ablate them.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "SHIFT_RULES",
    "estimate_shift",
    "shift_bias_corrected",
    "shift_min",
    "shift_quantile",
    "shift_zero_if_negligible",
]


def _validated(observations: np.ndarray) -> np.ndarray:
    data = np.asarray(observations, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("shift estimation needs at least one observation")
    if not np.all(np.isfinite(data)):
        raise ValueError("observations must be finite")
    if np.any(data < 0.0):
        raise ValueError("runtimes must be non-negative")
    return data


def shift_min(observations: np.ndarray) -> float:
    """The paper's rule: ``x0`` is the smallest observed runtime."""
    return float(_validated(observations).min())


def shift_zero_if_negligible(observations: np.ndarray, threshold: float = 0.01) -> float:
    """Observed minimum, snapped to zero when negligible w.r.t. the mean.

    This is the rule the paper applies to COSTAS 21: the observed minimum
    (3.2e5 iterations) is below 1% of the mean (1.8e8), so the shift is taken
    to be zero and the fit becomes a plain exponential with linear speed-up.
    """
    data = _validated(observations)
    minimum = float(data.min())
    mean = float(data.mean())
    if mean > 0.0 and minimum <= threshold * mean:
        return 0.0
    return minimum


def shift_quantile(observations: np.ndarray, q: float = 0.01) -> float:
    """A robust alternative: use a small quantile instead of the minimum.

    The sample minimum is noisy (it is an extreme value); a low quantile
    trades a small positive bias for much lower variance, which matters when
    only a handful of sequential runs are available.
    """
    if not 0.0 <= q < 1.0:
        raise ValueError(f"quantile must be in [0, 1), got {q}")
    return float(np.quantile(_validated(observations), q))


def shift_bias_corrected(observations: np.ndarray) -> float:
    """Bias-corrected minimum for exponential-like tails.

    For a shifted exponential the sample minimum over ``m`` observations
    exceeds the true shift by ``1/(m * lambda)`` in expectation, i.e. by
    ``(mean - x0)/m``.  Solving the first-order correction gives

    ``x0_hat = (m * min - mean) / (m - 1)``

    clipped at zero.  For a single observation the minimum itself is
    returned.
    """
    data = _validated(observations)
    m = data.size
    minimum = float(data.min())
    if m == 1:
        return minimum
    mean = float(data.mean())
    corrected = (m * minimum - mean) / (m - 1)
    return max(corrected, 0.0)


#: Named shift-estimation rules usable from configuration / CLI.
SHIFT_RULES: Dict[str, Callable[[np.ndarray], float]] = {
    "min": shift_min,
    "zero_if_negligible": shift_zero_if_negligible,
    "quantile": shift_quantile,
    "bias_corrected": shift_bias_corrected,
    "zero": lambda observations: 0.0,
}


def estimate_shift(observations: np.ndarray, rule: str = "zero_if_negligible") -> float:
    """Estimate ``x0`` with the named rule (default: the paper's combined rule)."""
    try:
        func = SHIFT_RULES[rule]
    except KeyError:
        known = ", ".join(sorted(SHIFT_RULES))
        raise KeyError(f"unknown shift rule {rule!r}; known rules: {known}") from None
    return float(func(np.asarray(observations, dtype=float)))
