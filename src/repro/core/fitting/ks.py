"""Kolmogorov–Smirnov goodness-of-fit test (Section 6).

The paper accepts a candidate family when the KS test of the observed
sequential runtimes against the fitted distribution yields a p-value above
0.05 (e.g. 0.774 for the shifted-exponential fit of ALL-INTERVAL 700 and
0.752 for the exponential fit of COSTAS 21).

This module implements the one-sample, two-sided KS statistic

``D_m = sup_t | F_emp(t) - F(t) |``

and the asymptotic Kolmogorov p-value

``P[sqrt(m) D_m > t] -> 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 t^2)``

from scratch (cross-checked against :func:`scipy.stats.kstest` in the test
suite).  As in the paper, parameters estimated from the same data are used
in the test; this makes the p-value optimistic (the classical Lilliefors
caveat) but reproduces the published methodology exactly.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Callable

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = [
    "KSTestResult",
    "kolmogorov_pvalue",
    "kolmogorov_smirnov_statistic",
    "ks_test",
]


@dataclasses.dataclass(frozen=True)
class KSTestResult:
    """Outcome of a one-sample Kolmogorov–Smirnov test."""

    statistic: float
    p_value: float
    n_observations: int

    def rejects(self, significance: float = 0.05) -> bool:
        """True when the null hypothesis (data follows the model) is rejected."""
        return self.p_value < significance


def kolmogorov_smirnov_statistic(
    observations: np.ndarray, cdf: Callable[[np.ndarray], np.ndarray]
) -> float:
    """Two-sided KS distance between the empirical CDF and ``cdf``.

    The empirical CDF is a right-continuous step function; the supremum of
    the absolute difference is attained at one of the jump points, comparing
    the model CDF against both the pre-jump (``(i-1)/m``) and post-jump
    (``i/m``) empirical values.
    """
    data = np.sort(np.asarray(observations, dtype=float).ravel())
    m = data.size
    if m == 0:
        raise ValueError("KS statistic needs at least one observation")
    model = np.clip(np.asarray(cdf(data), dtype=float), 0.0, 1.0)
    ranks = np.arange(1, m + 1, dtype=float)
    d_plus = np.max(ranks / m - model)
    d_minus = np.max(model - (ranks - 1.0) / m)
    return float(max(d_plus, d_minus, 0.0))


def kolmogorov_pvalue(statistic: float, n_observations: int, terms: int = 100) -> float:
    """Asymptotic two-sided p-value of the KS statistic.

    Uses the Kolmogorov limiting distribution with the small-sample
    continuity correction of Stephens: the effective argument is
    ``(sqrt(m) + 0.12 + 0.11/sqrt(m)) * D``.
    """
    if n_observations < 1:
        raise ValueError(f"n_observations must be >= 1, got {n_observations}")
    if statistic < 0.0 or statistic > 1.0:
        raise ValueError(f"KS statistic must be in [0, 1], got {statistic}")
    if statistic == 0.0:
        return 1.0
    sqrt_m = math.sqrt(n_observations)
    t = (sqrt_m + 0.12 + 0.11 / sqrt_m) * statistic
    if t < 1e-8:
        return 1.0
    total = 0.0
    for k in range(1, terms + 1):
        term = math.exp(-2.0 * (k * t) ** 2)
        total += term if k % 2 == 1 else -term
        if term < 1e-16:
            break
    return float(min(max(2.0 * total, 0.0), 1.0))


def ks_test(
    observations: np.ndarray,
    distribution: RuntimeDistribution | Callable[[np.ndarray], np.ndarray],
) -> KSTestResult:
    """Run the one-sample KS test of ``observations`` against ``distribution``.

    ``distribution`` may be a :class:`RuntimeDistribution` or any callable
    evaluating a CDF on an array.
    """
    data = np.asarray(observations, dtype=float).ravel()
    if data.size == 0:
        raise ValueError("KS test needs at least one observation")
    cdf = distribution.cdf if isinstance(distribution, RuntimeDistribution) else distribution
    statistic = kolmogorov_smirnov_statistic(data, cdf)
    p_value = kolmogorov_pvalue(statistic, data.size)
    return KSTestResult(statistic=statistic, p_value=p_value, n_observations=int(data.size))
