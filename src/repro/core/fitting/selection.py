"""Fitting a single family and selecting the best among candidates.

The paper fits two families (shifted exponential, shifted lognormal) and
reports the one the Kolmogorov–Smirnov test accepts; gaussian and Lévy were
tried and rejected.  :func:`fit_distribution` reproduces a single fit,
:func:`select_best_fit` automates the family choice over a candidate set —
the default candidates are the families the paper discusses, ordered so that
ties favour the simpler model.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Mapping, Sequence

import numpy as np

from repro.core.distributions.base import RuntimeDistribution
from repro.core.fitting.estimators import ESTIMATORS, estimate_parameters
from repro.core.fitting.ks import KSTestResult, ks_test
from repro.core.fitting.shift import estimate_shift

__all__ = ["FitResult", "DEFAULT_CANDIDATES", "fit_distribution", "select_best_fit"]

#: Families tried by default, in tie-breaking order of preference.
DEFAULT_CANDIDATES: tuple[str, ...] = (
    "shifted_exponential",
    "shifted_lognormal",
    "shifted_gamma",
    "shifted_weibull",
    "truncated_gaussian",
)


@dataclasses.dataclass(frozen=True)
class FitResult:
    """A fitted runtime distribution together with its goodness-of-fit evidence."""

    family: str
    distribution: RuntimeDistribution
    shift_rule: str
    ks: KSTestResult
    log_likelihood: float
    n_observations: int

    @property
    def p_value(self) -> float:
        """Kolmogorov–Smirnov p-value of the fit."""
        return self.ks.p_value

    @property
    def statistic(self) -> float:
        """Kolmogorov–Smirnov distance of the fit."""
        return self.ks.statistic

    @property
    def aic(self) -> float:
        """Akaike information criterion ``2k - 2 log L`` (lower is better)."""
        n_params = len(self.distribution.params())
        return 2.0 * n_params - 2.0 * self.log_likelihood

    def accepted(self, significance: float = 0.05) -> bool:
        """True when the KS test does not reject the family at ``significance``."""
        return not self.ks.rejects(significance)

    def params(self) -> Mapping[str, float]:
        """Parameters of the fitted distribution."""
        return self.distribution.params()

    def summary(self) -> str:
        """One-line human-readable description of the fit."""
        params = ", ".join(f"{k}={v:.6g}" for k, v in self.distribution.params().items())
        return (
            f"{self.family}({params})  KS D={self.statistic:.4f}  "
            f"p={self.p_value:.4f}  n={self.n_observations}"
        )


def _log_likelihood(distribution: RuntimeDistribution, data: np.ndarray) -> float:
    """Total log-likelihood, treating zero-density points as a large penalty.

    Shift-to-the-minimum fits put the smallest observation exactly on the
    support boundary where some families have zero density; penalising
    rather than returning ``-inf`` keeps AIC comparisons meaningful.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        log_pdf = np.asarray(distribution.log_pdf(data), dtype=float)
    finite = np.isfinite(log_pdf)
    if not finite.any():
        return -math.inf
    penalty = float(log_pdf[finite].min()) - math.log(data.size + 1.0)
    return float(np.where(finite, log_pdf, penalty).sum())


def fit_distribution(
    observations: Sequence[float] | np.ndarray,
    family: str = "shifted_exponential",
    *,
    shift_rule: str = "zero_if_negligible",
    shift: float | None = None,
) -> FitResult:
    """Fit one parametric family to observed runtimes and KS-test the fit.

    Parameters
    ----------
    observations:
        Sequential runtimes or iteration counts (at least two values).
    family:
        Name of the family to fit (see :data:`repro.core.fitting.estimators.ESTIMATORS`).
    shift_rule:
        How to estimate the shift ``x0``; defaults to the paper's combined
        rule (observed minimum, snapped to zero when negligible).
    shift:
        Explicit shift overriding the rule (used by the ablation benchmarks).
    """
    data = np.asarray(observations, dtype=float).ravel()
    if data.size < 2:
        raise ValueError("fitting requires at least two observations")
    x0 = float(shift) if shift is not None else estimate_shift(data, shift_rule)
    distribution = estimate_parameters(data, family, x0)
    ks = ks_test(data, distribution)
    return FitResult(
        family=family,
        distribution=distribution,
        shift_rule="explicit" if shift is not None else shift_rule,
        ks=ks,
        log_likelihood=_log_likelihood(distribution, data),
        n_observations=int(data.size),
    )


def select_best_fit(
    observations: Sequence[float] | np.ndarray,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    *,
    shift_rule: str = "zero_if_negligible",
    significance: float = 0.05,
) -> FitResult:
    """Fit every candidate family and return the best one.

    Selection mirrors the paper: the fit with the highest KS p-value wins;
    when no candidate clears the significance threshold the highest p-value
    is still returned (callers can check :meth:`FitResult.accepted`).
    Candidates that fail to fit (degenerate data for that family) are
    skipped.
    """
    names = list(candidates)
    if not names:
        raise ValueError("at least one candidate family is required")
    unknown = [name for name in names if name not in ESTIMATORS]
    if unknown:
        raise KeyError(f"unknown candidate families: {unknown}")
    results: list[FitResult] = []
    for name in names:
        try:
            results.append(fit_distribution(observations, name, shift_rule=shift_rule))
        except (ValueError, ZeroDivisionError, OverflowError):
            continue
    if not results:
        raise ValueError("no candidate family could be fitted to the observations")
    results.sort(key=lambda r: (-r.p_value, names.index(r.family)))
    return results[0]
