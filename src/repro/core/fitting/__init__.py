"""Fitting runtime distributions to observed sequential runs (Section 6).

The paper's pipeline is: collect ~650 sequential runs, estimate the shift
``x0`` from the observed minimum, estimate the remaining parameters of a
candidate family, and accept the family if a Kolmogorov–Smirnov test does
not reject it (p-value above 0.05).  This subpackage implements that
pipeline plus the pieces needed to go beyond it:

* :mod:`repro.core.fitting.shift` — shift (``x0``) estimation rules,
  including the paper's "observed minimum" rule and the Costas-style
  "treat the shift as zero when it is negligible compared to the mean".
* :mod:`repro.core.fitting.estimators` — per-family parameter estimation.
* :mod:`repro.core.fitting.ks` — our own Kolmogorov–Smirnov implementation
  (statistic and asymptotic p-value), cross-checked against scipy in tests.
* :mod:`repro.core.fitting.selection` — fit one family or select the best
  among a candidate set.
"""

from repro.core.fitting.estimators import estimate_parameters
from repro.core.fitting.ks import kolmogorov_pvalue, kolmogorov_smirnov_statistic, ks_test
from repro.core.fitting.selection import FitResult, fit_distribution, select_best_fit
from repro.core.fitting.shift import (
    SHIFT_RULES,
    estimate_shift,
    shift_bias_corrected,
    shift_min,
    shift_quantile,
    shift_zero_if_negligible,
)

__all__ = [
    "FitResult",
    "SHIFT_RULES",
    "estimate_parameters",
    "estimate_shift",
    "fit_distribution",
    "kolmogorov_pvalue",
    "kolmogorov_smirnov_statistic",
    "ks_test",
    "select_best_fit",
    "shift_bias_corrected",
    "shift_min",
    "shift_quantile",
    "shift_zero_if_negligible",
]
