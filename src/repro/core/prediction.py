"""High-level speed-up prediction API (the paper's end-to-end pipeline).

:func:`predict_speedup_curve` performs the full Section 6 workflow in one
call: estimate the shift, fit (or auto-select) a parametric family, verify
the fit with the Kolmogorov–Smirnov test, and evaluate the predicted
multi-walk speed-up for the requested core counts.  A nonparametric variant
based on the empirical distribution of the observations is available for
comparison (and used by the ablation benchmarks).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

import numpy as np

from repro.core.distributions.base import RuntimeDistribution
from repro.core.distributions.empirical import EmpiricalDistribution
from repro.core.fitting.selection import DEFAULT_CANDIDATES, FitResult, fit_distribution, select_best_fit
from repro.core.speedup import SpeedupCurve, SpeedupModel

__all__ = [
    "PredictionResult",
    "predict_speedup_curve",
    "predict_speedup_empirical",
    "predict_speedup_from_distribution",
]

#: Core counts reported throughout the paper's evaluation tables.
PAPER_CORE_COUNTS: tuple[int, ...] = (16, 32, 64, 128, 256)


@dataclasses.dataclass(frozen=True)
class PredictionResult:
    """Outcome of a speed-up prediction.

    Attributes
    ----------
    curve:
        Predicted speed-ups per requested core count.
    distribution:
        The runtime distribution used for the prediction (fitted parametric
        family or empirical distribution).
    family:
        Name of the distribution family (``"empirical"`` for the
        nonparametric predictor).
    fit:
        The :class:`FitResult` backing a parametric prediction, or ``None``
        for nonparametric / direct-distribution predictions.
    limit:
        Asymptotic speed-up as the number of cores tends to infinity.
    """

    curve: SpeedupCurve
    distribution: RuntimeDistribution
    family: str
    fit: FitResult | None
    limit: float

    @property
    def speedups(self) -> Mapping[int, float]:
        """Core count -> predicted speed-up."""
        return self.curve.as_dict()

    def speedup(self, n_cores: int) -> float:
        """Predicted speed-up for one of the requested core counts."""
        try:
            return self.curve.as_dict()[int(n_cores)]
        except KeyError:
            # Not one of the pre-computed points: evaluate on demand.
            return SpeedupModel(self.distribution).speedup(int(n_cores))

    def summary(self) -> str:
        """Multi-line human-readable report of the prediction."""
        lines = [f"family: {self.family}"]
        if self.fit is not None:
            lines.append(f"fit:    {self.fit.summary()}")
        lines.append(f"limit:  {self.limit:.4g}")
        lines.append("cores   predicted speed-up")
        for cores, speedup in self.curve:
            lines.append(f"{cores:>5d}   {speedup:10.2f}")
        return "\n".join(lines)


def predict_speedup_from_distribution(
    distribution: RuntimeDistribution,
    cores: Sequence[int] = PAPER_CORE_COUNTS,
) -> PredictionResult:
    """Predict speed-ups directly from a known runtime distribution."""
    model = SpeedupModel(distribution)
    curve = model.curve(cores)
    return PredictionResult(
        curve=curve,
        distribution=distribution,
        family=type(distribution).name,
        fit=None,
        limit=model.limit(),
    )


def predict_speedup_curve(
    observations: Sequence[float] | np.ndarray,
    cores: Sequence[int] = PAPER_CORE_COUNTS,
    *,
    family: str | None = None,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    shift_rule: str = "zero_if_negligible",
    shift: float | None = None,
) -> PredictionResult:
    """Fit observed sequential runtimes and predict multi-walk speed-ups.

    Parameters
    ----------
    observations:
        Sequential runtimes or iteration counts.
    cores:
        Core counts to evaluate (defaults to the paper's 16…256).
    family:
        Force a specific family; when ``None`` the best candidate according
        to the Kolmogorov–Smirnov p-value is selected automatically.
    candidates:
        Candidate families for automatic selection.
    shift_rule, shift:
        Shift estimation rule or explicit shift (see
        :mod:`repro.core.fitting.shift`).
    """
    if family is not None:
        fit = fit_distribution(observations, family, shift_rule=shift_rule, shift=shift)
    else:
        fit = select_best_fit(observations, candidates, shift_rule=shift_rule)
    model = SpeedupModel(fit.distribution)
    curve = model.curve(cores)
    return PredictionResult(
        curve=curve,
        distribution=fit.distribution,
        family=fit.family,
        fit=fit,
        limit=model.limit(),
    )


def predict_speedup_empirical(
    observations: Sequence[float] | np.ndarray,
    cores: Sequence[int] = PAPER_CORE_COUNTS,
) -> PredictionResult:
    """Nonparametric prediction from the empirical distribution of the sample.

    No family assumption: the expected multi-walk runtime is the exact
    expectation of the minimum of ``n`` draws with replacement from the
    observed sample (see
    :meth:`repro.core.distributions.empirical.EmpiricalDistribution.expected_minimum`).
    """
    distribution = EmpiricalDistribution(observations)
    model = SpeedupModel(distribution)
    curve = model.curve(cores)
    return PredictionResult(
        curve=curve,
        distribution=distribution,
        family=EmpiricalDistribution.name,
        fit=None,
        limit=model.limit(),
    )
