"""Distribution of the minimum of ``n`` i.i.d. runtimes (Section 3.1).

:class:`MinDistribution` wraps any :class:`RuntimeDistribution` ``Y`` and a
core count ``n`` and exposes the runtime distribution ``Z(n)`` of the
independent multi-walk execution:

``F_Z(t) = 1 - (1 - F_Y(t))^n``
``f_Z(t) = n f_Y(t) (1 - F_Y(t))^(n-1)``

Because :class:`MinDistribution` is itself a :class:`RuntimeDistribution`,
the transform composes: ``dist.min_of(4).min_of(8)`` equals
``dist.min_of(32)`` in distribution, a property exercised by the test suite.
"""

from __future__ import annotations

import math
from typing import ClassVar, Mapping

import numpy as np

from repro.core.distributions.base import RuntimeDistribution

__all__ = ["MinDistribution"]


class MinDistribution(RuntimeDistribution):
    """Runtime distribution of an ``n``-core independent multi-walk.

    Parameters
    ----------
    base:
        Sequential runtime distribution ``Y``.
    n_cores:
        Number of independent walks; must be a positive integer.
    """

    name: ClassVar[str] = "minimum"

    def __init__(self, base: RuntimeDistribution, n_cores: int) -> None:
        if not isinstance(n_cores, (int, np.integer)):
            raise TypeError(f"n_cores must be an integer, got {type(n_cores).__name__}")
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        self.base = base
        self.n_cores = int(n_cores)

    def params(self) -> Mapping[str, float]:
        params = {f"base_{k}": v for k, v in self.base.params().items()}
        params["n_cores"] = float(self.n_cores)
        return params

    def support(self) -> tuple[float, float]:
        return self.base.support()

    # ------------------------------------------------------------------
    def pdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        f = np.asarray(self.base.pdf(t), dtype=float)
        sf = np.asarray(self.base.sf(t), dtype=float)
        out = self.n_cores * f * np.clip(sf, 0.0, 1.0) ** (self.n_cores - 1)
        return out if out.ndim else float(out)

    def cdf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        sf = np.clip(np.asarray(self.base.sf(t), dtype=float), 0.0, 1.0)
        out = 1.0 - sf**self.n_cores
        return out if out.ndim else float(out)

    def sf(self, t: np.ndarray | float) -> np.ndarray | float:
        t = np.asarray(t, dtype=float)
        sf = np.clip(np.asarray(self.base.sf(t), dtype=float), 0.0, 1.0)
        out = sf**self.n_cores
        return out if out.ndim else float(out)

    def mean(self) -> float:
        """``E[Z(n)]`` — delegates to the base family's (possibly closed-form) formula."""
        return self.base.expected_minimum(self.n_cores)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile probability must be in [0, 1], got {q}")
        if q == 0.0:
            return self.support()[0]
        if q == 1.0:
            return self.support()[1]
        # F_Z(t) = q  <=>  F_Y(t) = 1 - (1 - q)^(1/n)
        base_q = -math.expm1(math.log1p(-q) / self.n_cores)
        return self.base.quantile(base_q)

    def sample(self, rng: np.random.Generator, size: int | None = None) -> np.ndarray | float:
        """Draw the minimum of ``n_cores`` base samples, ``size`` times."""
        if size is None:
            draws = self.base.sample(rng, self.n_cores)
            return float(np.min(draws))
        draws = self.base.sample(rng, (int(size), self.n_cores))
        return np.min(np.asarray(draws, dtype=float), axis=1)

    # ------------------------------------------------------------------
    def min_of(self, n_cores: int) -> "MinDistribution":
        """Composition: the minimum of minima is the minimum over the product."""
        return MinDistribution(self.base, self.n_cores * int(n_cores))

    def expected_minimum(self, n_cores: int) -> float:
        return self.base.expected_minimum(self.n_cores * int(n_cores))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MinDistribution(base={self.base!r}, n_cores={self.n_cores})"
