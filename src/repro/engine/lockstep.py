"""In-process lockstep backend: whole seed-blocks as single kernel calls.

The serial/thread/process backends all treat a batch as independent
single-run tasks; parallelism, where any, comes from running *tasks*
concurrently.  :class:`LockstepBackend` exploits a different axis: when
every task in a block runs the *same* algorithm instance and that
algorithm can advance many walks per step (``run_lockstep`` +
``lockstep_supported``, see :func:`repro.evaluation.supports_lockstep`),
the whole block is serviced by one vectorised kernel call
(:mod:`repro.sat.vectorized`) instead of N scalar loops — SIMD batching in
one process rather than task parallelism across processes.

Determinism is inherited, not re-proved: the kernel is bit-identical per
seed to the scalar loop, and blocks are formed from the same pre-derived
seed list every backend consumes, so ``collect_batch``/``run_race`` keep
the engine's hard invariant — a given ``base_seed`` yields identical
observations (iterations/solved/seed order) on every backend.  Algorithms
that are not lockstep-capable (no entry points, or a configuration the
kernel does not vectorise, e.g. WalkSAT's Novelty policies and every
non-SAT solver) fall back to the plain serial path inside the same batch,
so mixed campaigns need no routing by the caller.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Sequence

from repro.engine.backends import BatchExecutor
from repro.engine.tasks import RunTask, execute_run
from repro.evaluation import supports_lockstep

__all__ = ["LockstepBackend"]


class LockstepBackend(BatchExecutor):
    """Service run batches through the vectorised lockstep kernel.

    Parameters
    ----------
    width:
        Maximum walks per kernel call (the batch axis ``K``).  ``None``
        (default) services each same-algorithm block of the batch as one
        kernel call.  Wider is generally faster until the state matrices
        fall out of cache; see ``benchmarks/test_bench_lockstep.py`` for
        the measured sweep.

    The backend runs entirely in the calling process (no pool, no
    pickling); results are yielded in submission order.  ``chunksize`` is
    accepted for interface compatibility and ignored — batching *is* the
    point, and racing callers still get first-finisher semantics because
    walks retire from the kernel individually (their ``runtime_seconds``
    reflects retirement, not block completion).
    """

    name = "lockstep"

    def __init__(self, width: int | None = None) -> None:
        if width is not None:
            width = int(width)
            if width < 1:
                raise ValueError(f"lockstep width must be >= 1, got {width}")
        self.width = width

    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> Iterator[Any]:
        payloads = list(payloads)
        if fn is not execute_run or not all(
            isinstance(payload, RunTask) for payload in payloads
        ):
            # Not a run batch (arbitrary payloads): behave like the serial
            # backend rather than guessing at a batch structure.
            for payload in payloads:
                yield fn(payload)
            return
        index = 0
        while index < len(payloads):
            # Contiguous tasks sharing one algorithm object form a block —
            # collect_batch/run_race build batches exactly this way.
            algorithm = payloads[index].algorithm
            block = [payloads[index]]
            index += 1
            while index < len(payloads) and payloads[index].algorithm is algorithm:
                block.append(payloads[index])
                index += 1
            if supports_lockstep(algorithm):
                width = self.width or len(block)
                for start in range(0, len(block), width):
                    chunk = block[start : start + width]
                    results = algorithm.run_lockstep([task.seed for task in chunk])
                    for task, result in zip(chunk, results):
                        yield task.index, result
            else:
                for task in block:
                    yield fn(task)

    def describe(self) -> str:
        width = "auto" if self.width is None else self.width
        return f"{self.name}[width={width}]"
