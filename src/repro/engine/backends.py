"""Execution backends: where a batch of independent runs actually runs.

A :class:`BatchExecutor` turns a sequence of picklable payloads into results,
yielding them as they complete.  Three implementations are provided:

* :class:`SerialBackend` — the current process, one run at a time.  The
  reference implementation; zero overhead, fully deterministic ordering.
* :class:`ThreadBackend` — a thread pool.  Useful when the workload releases
  the GIL (NumPy kernels) or is I/O bound; shares memory with the caller.
* :class:`ProcessBackend` — a spawn-context :mod:`multiprocessing` pool with
  chunked ``imap_unordered``.  The throughput backend for CPU-bound solver
  campaigns on multi-core hosts.

All three yield results *as completed* (unordered); consumers that need
stable ordering reassemble by the index carried in each payload (see
:func:`repro.engine.core.collect_batch`).  Closing the returned iterator
early cancels outstanding work — that is the first-finisher-wins
cancellation primitive used by :func:`repro.engine.core.run_race`: threads
have their pending futures cancelled, worker processes are terminated.
"""

from __future__ import annotations

import abc
import multiprocessing as mp
import os
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "BatchExecutor",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "default_worker_count",
    "pick_default_backend",
]


def pick_default_backend() -> str:
    """Backend name for "use the hardware": process on multi-core hosts,
    serial where spawn overhead could never pay for itself."""
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def default_worker_count(workers: int | None = None) -> int:
    """Resolve a worker count: explicit value, or one per available CPU."""
    if workers is None:
        return os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


class BatchExecutor(abc.ABC):
    """Strategy interface for executing a batch of independent tasks."""

    #: Registry name, also used in CLI flags and progress displays.
    name: str = "abstract"

    @abc.abstractmethod
    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> Iterator[Any]:
        """Apply ``fn`` to every payload, yielding results as they complete.

        Closing the iterator before exhaustion cancels work that has not
        completed yet (best effort; runs already executing may finish).
        ``chunksize`` is a scheduling hint honoured by the process backend:
        ``None`` lets the backend choose, ``1`` minimises latency for racing.
        """

    def describe(self) -> str:
        """Human-readable identity used in logs and benchmark labels."""
        return self.name


class SerialBackend(BatchExecutor):
    """Run everything inline in the calling process.

    The reference backend: completion order equals submission order, there
    is no pool overhead, and early iterator close simply stops the loop.
    """

    name = "serial"

    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> Iterator[Any]:
        for payload in payloads:
            yield fn(payload)


class ThreadBackend(BatchExecutor):
    """Run tasks on a thread pool sharing the caller's memory.

    Python threads only help when the work releases the GIL (NumPy, I/O),
    but the backend is also valuable as a cheap concurrency-correctness
    check: it exercises out-of-order completion without pickling.
    """

    name = "thread"

    def __init__(self, workers: int | None = None) -> None:
        self.workers = default_worker_count(workers)

    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> Iterator[Any]:
        pool = ThreadPoolExecutor(max_workers=self.workers)
        exhausted = False
        try:
            pending = {pool.submit(fn, payload) for payload in payloads}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()
            exhausted = True
        finally:
            # On early close, drop queued tasks and return immediately
            # instead of blocking until in-flight tasks drain (threads
            # cannot be killed, so already-running walks finish on their
            # own budget in the background).
            pool.shutdown(wait=exhausted, cancel_futures=not exhausted)

    def describe(self) -> str:
        return f"{self.name}[workers={self.workers}]"


class ProcessBackend(BatchExecutor):
    """Run tasks on a spawn-context process pool (chunked ``imap_unordered``).

    The spawn start method is used on every platform: it is the only start
    method that is both fork-safe and portable, and it forces payloads
    through pickle, guaranteeing workers see exactly the state a cold
    process would.  Chunking amortises IPC for large batches; racing callers
    pass ``chunksize=1`` so no walk is held hostage behind a queued chunk.
    """

    name = "process"

    def __init__(self, workers: int | None = None, *, start_method: str = "spawn") -> None:
        self.workers = default_worker_count(workers)
        self.start_method = start_method

    def _chunksize(self, n_tasks: int) -> int:
        # Aim for ~4 chunks per worker: large enough to amortise pickling,
        # small enough that a slow chunk cannot stall the tail of the batch.
        return max(1, n_tasks // (self.workers * 4))

    def imap_unordered(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        *,
        chunksize: int | None = None,
    ) -> Iterator[Any]:
        payloads = list(payloads)
        if not payloads:
            return
        context = mp.get_context(self.start_method)
        effective_chunksize = self._chunksize(len(payloads)) if chunksize is None else chunksize
        pool = context.Pool(processes=min(self.workers, len(payloads)))
        exhausted = False
        try:
            yield from pool.imap_unordered(fn, payloads, chunksize=effective_chunksize)
            exhausted = True
        finally:
            if exhausted:
                pool.close()
            else:
                # terminate() is the cancellation primitive: when the
                # consumer closes the iterator early (first finisher wins),
                # any walk still executing is killed rather than drained.
                pool.terminate()
            pool.join()

    def describe(self) -> str:
        return f"{self.name}[workers={self.workers}]"
